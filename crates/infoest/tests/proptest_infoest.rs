//! Property-based tests for the weighted information estimators.

use infoest::{auto_entropy, cross_entropy, information_content, DistanceMatrix, EstimatorConfig};
use proptest::prelude::*;

fn cfg() -> EstimatorConfig {
    EstimatorConfig::default()
}

/// Strategy: positive distances.
fn distances(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01..100.0f64, n..=n)
}

/// Strategy: positive weights.
fn weights(n: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01..10.0f64, n..=n)
}

/// Strategy: a symmetric distance matrix with zero diagonal.
fn sym_matrix(n: usize) -> impl Strategy<Value = DistanceMatrix> {
    prop::collection::vec(0.01..100.0f64, n * (n - 1) / 2).prop_map(move |upper| {
        let mut it = upper.into_iter();
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = it.next().expect("sized exactly");
                data[i * n + j] = d;
                data[j * n + i] = d;
            }
        }
        DistanceMatrix::from_vec(n, n, data)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// All three estimators produce finite values on positive distances.
    #[test]
    fn estimators_finite(
        m in sym_matrix(6),
        w in weights(6),
    ) {
        prop_assert!(auto_entropy(&m, &w, &cfg()).is_finite());
        let cross = m.block(0..3, 3..6);
        prop_assert!(cross_entropy(&cross, &w[..3], &w[3..], &cfg()).is_finite());
        prop_assert!(information_content(m.row(0), &w, &cfg()).is_finite());
    }

    /// Weight-scale invariance: the estimators normalize internally.
    #[test]
    fn weight_scale_invariance(
        d in distances(5),
        w in weights(5),
        scale in 0.1..100.0f64,
    ) {
        let scaled: Vec<f64> = w.iter().map(|x| x * scale).collect();
        let a = information_content(&d, &w, &cfg());
        let b = information_content(&d, &scaled, &cfg());
        prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
    }

    /// Information content is monotone: uniformly larger distances give a
    /// larger value.
    #[test]
    fn information_monotone_in_distances(
        d in distances(5),
        w in weights(5),
        factor in 1.1..10.0f64,
    ) {
        let larger: Vec<f64> = d.iter().map(|x| x * factor).collect();
        let a = information_content(&d, &w, &cfg());
        let b = information_content(&larger, &w, &cfg());
        // log(factor * d) = log factor + log d, so b - a = log factor.
        prop_assert!((b - a - factor.ln()).abs() < 1e-9);
    }

    /// Cross-entropy equals the transpose with swapped weight vectors.
    #[test]
    fn cross_entropy_transpose_identity(
        m in sym_matrix(6),
        w in weights(6),
    ) {
        let ab = m.block(0..2, 2..6);
        let ba = m.block(2..6, 0..2);
        let h1 = cross_entropy(&ab, &w[..2], &w[2..], &cfg());
        let h2 = cross_entropy(&ba, &w[2..], &w[..2], &cfg());
        prop_assert!((h1 - h2).abs() < 1e-9 * (1.0 + h1.abs()));
    }

    /// Auto-entropy is permutation invariant (relabeling the items).
    #[test]
    fn auto_entropy_permutation_invariant(
        m in sym_matrix(5),
        w in weights(5),
    ) {
        let n = 5;
        // Reverse permutation.
        let perm: Vec<usize> = (0..n).rev().collect();
        let pm = DistanceMatrix::from_fn(n, n, |i, j| m.get(perm[i], perm[j]));
        let pw: Vec<f64> = perm.iter().map(|&i| w[i]).collect();
        let a = auto_entropy(&m, &w, &cfg());
        let b = auto_entropy(&pm, &pw, &cfg());
        prop_assert!((a - b).abs() < 1e-9 * (1.0 + a.abs()));
    }

    /// The offset constant shifts every estimator by exactly c, and the
    /// scale multiplies the data term — the structure that makes them
    /// cancel in the paper's score differences.
    #[test]
    fn offset_and_scale_structure(
        d in distances(4),
        w in weights(4),
        c in -10.0..10.0f64,
        s in 0.1..10.0f64,
    ) {
        let base = information_content(&d, &w, &cfg());
        let shifted = information_content(
            &d,
            &w,
            &EstimatorConfig { offset: c, scale: s, dist_floor: 1e-12 },
        );
        prop_assert!((shifted - (c + s * base)).abs() < 1e-9 * (1.0 + shifted.abs()));
    }
}
