//! Rectangular distance matrix between two indexed collections.

/// Distances between an `n`-element collection (rows) and an `m`-element
/// collection (columns). For a single collection use `n == m` with a
/// symmetric fill; the estimators never read the diagonal in that case.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Build from row-major data.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols` or any distance is negative
    /// or NaN.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "DistanceMatrix: shape mismatch");
        assert!(
            data.iter().all(|&d| d.is_finite() && d >= 0.0),
            "DistanceMatrix: distances must be finite and >= 0"
        );
        DistanceMatrix { rows, cols, data }
    }

    /// Build by evaluating a distance function on index pairs.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        DistanceMatrix::from_vec(rows, cols, data)
    }

    /// Build a symmetric matrix from a distance function evaluated only
    /// on `i < j` (diagonal is zero).
    pub fn symmetric_from_fn(n: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = f(i, j);
                assert!(
                    d.is_finite() && d >= 0.0,
                    "DistanceMatrix: invalid distance"
                );
                data[i * n + j] = d;
                data[j * n + i] = d;
            }
        }
        DistanceMatrix {
            rows: n,
            cols: n,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Distance at `(i, j)`.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.rows && j < self.cols);
        self.data[i * self.cols + j]
    }

    /// Borrow row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Consume the matrix, returning its row-major storage — the
    /// recycling half of a buffer-reuse cycle with [`Self::from_vec`]
    /// (callers on a hot path rebuild the next matrix into the same
    /// allocation instead of a fresh one).
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// View of a rectangular sub-block (for windowed estimators over one
    /// global matrix).
    pub fn block(
        &self,
        rows: std::ops::Range<usize>,
        cols: std::ops::Range<usize>,
    ) -> DistanceMatrix {
        assert!(
            rows.end <= self.rows && cols.end <= self.cols,
            "block out of range"
        );
        let mut data = Vec::with_capacity(rows.len() * cols.len());
        for i in rows.clone() {
            data.extend_from_slice(
                &self.data[i * self.cols + cols.start..i * self.cols + cols.end],
            );
        }
        DistanceMatrix {
            rows: rows.len(),
            cols: cols.len(),
            data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_fn_and_get() {
        let m = DistanceMatrix::from_fn(2, 3, |i, j| (i + j) as f64);
        assert_eq!(m.get(1, 2), 3.0);
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn symmetric_builder() {
        let m = DistanceMatrix::symmetric_from_fn(3, |i, j| (j - i) as f64);
        assert_eq!(m.get(0, 2), 2.0);
        assert_eq!(m.get(2, 0), 2.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn block_extraction() {
        let m = DistanceMatrix::from_fn(4, 4, |i, j| (i * 10 + j) as f64);
        let b = m.block(1..3, 2..4);
        assert_eq!(b.rows(), 2);
        assert_eq!(b.cols(), 2);
        assert_eq!(b.get(0, 0), 12.0);
        assert_eq!(b.get(1, 1), 23.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_negative_distance() {
        DistanceMatrix::from_vec(1, 1, vec![-1.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn rejects_shape_mismatch() {
        DistanceMatrix::from_vec(2, 2, vec![0.0; 3]);
    }
}
