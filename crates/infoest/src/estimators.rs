//! The three weighted information estimators.
//!
//! Each matrix estimator exists in two forms sharing one body: the plain
//! form over a whole [`DistanceMatrix`], and a `_block` form evaluating
//! a rectangular sub-block of a larger matrix *in place* — no block
//! extraction, no allocation — which is what lets the change-point
//! scores in `bagcpd` evaluate thousands of bootstrap replicates against
//! one cached window matrix without touching the heap.

use crate::matrix::DistanceMatrix;
use std::ops::Range;

/// Configuration shared by the estimators.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimatorConfig {
    /// Additive constant `c` of the estimators. Cancels in change-point
    /// scores; default 0.
    pub offset: f64,
    /// Multiplicative constant `d` (effective embedding dimension).
    /// Cancels in change-point scores; default 1.
    pub scale: f64,
    /// Distances are clamped below at this floor before taking logs, so
    /// coincident signatures (distance 0) contribute a large-but-finite
    /// negative term instead of `-inf`.
    pub dist_floor: f64,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            offset: 0.0,
            scale: 1.0,
            dist_floor: 1e-12,
        }
    }
}

impl EstimatorConfig {
    #[inline]
    fn log_dist(&self, d: f64) -> f64 {
        d.max(self.dist_floor).ln()
    }
}

/// Validate a weight vector and return its sum.
fn check_weights(weights: &[f64], what: &str) -> f64 {
    assert!(!weights.is_empty(), "{what}: empty weights");
    let sum: f64 = weights.iter().sum();
    assert!(
        weights.iter().all(|&w| w.is_finite() && w >= 0.0) && sum > 0.0,
        "{what}: weights must be finite, >= 0, with positive sum"
    );
    sum
}

/// Information content `I(S; S') = c + d Σ_j ψ'_j log dist(S'_j, S)`.
///
/// `dists` are the distances from each element of `S'` to the signature
/// `S`; `weights` are the ψ'_j (normalized internally).
///
/// # Panics
/// Panics on empty or invalid weights, or a length mismatch.
pub fn information_content(dists: &[f64], weights: &[f64], cfg: &EstimatorConfig) -> f64 {
    assert_eq!(
        dists.len(),
        weights.len(),
        "information_content: dists/weights length mismatch"
    );
    let sum = check_weights(weights, "information_content");
    let acc: f64 = dists
        .iter()
        .zip(weights)
        .map(|(&d, &w)| (w / sum) * cfg.log_dist(d))
        .sum();
    cfg.offset + cfg.scale * acc
}

/// k-NN-truncated information content: [`information_content`]
/// restricted to the `k` elements of `S'` nearest to `S`, with their
/// weights renormalized.
///
/// Equivalent to [`information_content_knn_with`] with a fresh order
/// buffer.
///
/// # Panics
/// As [`information_content_knn_with`].
pub fn information_content_knn(
    dists: &[f64],
    weights: &[f64],
    k: usize,
    cfg: &EstimatorConfig,
) -> f64 {
    information_content_knn_with(dists, weights, k, cfg, &mut Vec::new())
}

/// As [`information_content_knn`], reusing a caller-kept index buffer —
/// allocation-free once `order`'s capacity covers the slice length.
///
/// Selection is deterministic: the `k` smallest by `(distance, index)`.
/// With `k >= dists.len()` this reproduces [`information_content`] bit
/// for bit (the accumulation runs in index order either way). The
/// truncated form pairs with the tiered solver's pruned k-NN search in
/// `bagcpd`, which produces exactly this neighbor set without solving
/// every pair.
///
/// # Panics
/// Panics on `k == 0`, empty or invalid weights, a length mismatch, or
/// when the selected neighbors carry zero total weight.
pub fn information_content_knn_with(
    dists: &[f64],
    weights: &[f64],
    k: usize,
    cfg: &EstimatorConfig,
    order: &mut Vec<usize>,
) -> f64 {
    assert_eq!(
        dists.len(),
        weights.len(),
        "information_content_knn: dists/weights length mismatch"
    );
    assert!(k >= 1, "information_content_knn: k must be >= 1");
    check_weights(weights, "information_content_knn");
    let k = k.min(dists.len());
    order.clear();
    order.extend(0..dists.len());
    // Full sort by (distance, index): selection must be deterministic
    // under distance ties (select_nth_unstable would not order ties
    // across the pivot deterministically).
    order.sort_unstable_by(|&i, &j| dists[i].total_cmp(&dists[j]).then(i.cmp(&j)));
    order.truncate(k);
    // Accumulate in index order so `k = n` reproduces
    // `information_content` bit for bit.
    order.sort_unstable();
    let sum: f64 = order.iter().map(|&i| weights[i]).sum();
    assert!(
        sum > 0.0,
        "information_content_knn: selected neighbors carry zero weight"
    );
    let acc: f64 = order
        .iter()
        .map(|&i| (weights[i] / sum) * cfg.log_dist(dists[i]))
        .sum();
    cfg.offset + cfg.scale * acc
}

/// Auto-entropy
/// `H(S) = c + d Σ_i Σ_{j≠i} ψ_i ψ_j / (1 - ψ_i) log dist(S_i, S_j)`.
///
/// `dist` must be a square matrix over the elements of `S`; the diagonal
/// is ignored. The `1/(1 - ψ_i)` factor renormalizes the remaining
/// weights after leaving item `i` out.
///
/// # Panics
/// Panics if the matrix is not square, the weights length does not match,
/// or weights are invalid. A single-element set has no leave-one-out
/// structure; its auto-entropy is defined as `c` (the log term vanishes).
pub fn auto_entropy(dist: &DistanceMatrix, weights: &[f64], cfg: &EstimatorConfig) -> f64 {
    assert_eq!(
        dist.rows(),
        dist.cols(),
        "auto_entropy: matrix must be square"
    );
    auto_entropy_block(dist, 0..dist.rows(), weights, cfg)
}

/// [`auto_entropy`] of the square diagonal sub-block `at x at` of a
/// larger matrix, evaluated in place (no block is extracted).
/// Bit-identical to extracting the block first.
///
/// # Panics
/// As [`auto_entropy`], or if `at` exceeds the matrix.
pub fn auto_entropy_block(
    dist: &DistanceMatrix,
    at: Range<usize>,
    weights: &[f64],
    cfg: &EstimatorConfig,
) -> f64 {
    assert!(
        at.end <= dist.rows() && at.end <= dist.cols(),
        "auto_entropy: block out of range"
    );
    assert_eq!(
        at.len(),
        weights.len(),
        "auto_entropy: weights length mismatch"
    );
    let sum = check_weights(weights, "auto_entropy");
    let n = weights.len();
    if n == 1 {
        return cfg.offset;
    }
    let mut acc = 0.0;
    for i in 0..n {
        let wi = weights[i] / sum;
        if wi >= 1.0 {
            // Degenerate: all mass on one item; leave-one-out undefined,
            // and every other term has ψ_j = 0. Contributes nothing.
            continue;
        }
        let row = &dist.row(at.start + i)[at.start..at.end];
        let mut inner = 0.0;
        for j in 0..n {
            if j == i {
                continue;
            }
            let wj = weights[j] / sum;
            if wj == 0.0 {
                continue;
            }
            inner += wj * cfg.log_dist(row[j]);
        }
        acc += wi * inner / (1.0 - wi);
    }
    cfg.offset + cfg.scale * acc
}

/// Cross-entropy `H(S, S') = c + d Σ_i Σ_j ψ_i ψ'_j log dist(S_i, S'_j)`.
///
/// `dist` is rectangular: rows index `S`, columns index `S'`.
///
/// # Panics
/// Panics on dimension mismatches or invalid weights.
pub fn cross_entropy(
    dist: &DistanceMatrix,
    weights_s: &[f64],
    weights_t: &[f64],
    cfg: &EstimatorConfig,
) -> f64 {
    cross_entropy_block(
        dist,
        0..dist.rows(),
        0..dist.cols(),
        weights_s,
        weights_t,
        cfg,
    )
}

/// [`cross_entropy`] of the rectangular sub-block `rows x cols` of a
/// larger matrix, evaluated in place (no block is extracted).
/// Bit-identical to extracting the block first.
///
/// # Panics
/// As [`cross_entropy`], or if the ranges exceed the matrix.
pub fn cross_entropy_block(
    dist: &DistanceMatrix,
    rows: Range<usize>,
    cols: Range<usize>,
    weights_s: &[f64],
    weights_t: &[f64],
    cfg: &EstimatorConfig,
) -> f64 {
    assert!(
        rows.end <= dist.rows() && cols.end <= dist.cols(),
        "cross_entropy: block out of range"
    );
    assert_eq!(
        rows.len(),
        weights_s.len(),
        "cross_entropy: row weights length mismatch"
    );
    assert_eq!(
        cols.len(),
        weights_t.len(),
        "cross_entropy: col weights length mismatch"
    );
    let sum_s = check_weights(weights_s, "cross_entropy");
    let sum_t = check_weights(weights_t, "cross_entropy");
    let mut acc = 0.0;
    for (i, &wi) in weights_s.iter().enumerate() {
        if wi == 0.0 {
            continue;
        }
        let row = &dist.row(rows.start + i)[cols.start..cols.end];
        let mut inner = 0.0;
        for (j, &wj) in weights_t.iter().enumerate() {
            if wj == 0.0 {
                continue;
            }
            inner += (wj / sum_t) * cfg.log_dist(row[j]);
        }
        acc += (wi / sum_s) * inner;
    }
    cfg.offset + cfg.scale * acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> EstimatorConfig {
        EstimatorConfig::default()
    }

    #[test]
    fn information_content_equal_weights() {
        // I = mean of log distances when weights are equal.
        let dists = [
            1.0,
            std::f64::consts::E,
            std::f64::consts::E * std::f64::consts::E,
        ];
        let i = information_content(&dists, &[1.0, 1.0, 1.0], &cfg());
        assert!((i - 1.0).abs() < 1e-12, "{i}"); // (0 + 1 + 2)/3
    }

    #[test]
    fn information_content_weighting() {
        // All mass on the second element -> log of its distance.
        let i = information_content(&[1.0, std::f64::consts::E], &[0.0, 5.0], &cfg());
        assert!((i - 1.0).abs() < 1e-12);
    }

    #[test]
    fn information_content_offset_scale() {
        let c = EstimatorConfig {
            offset: 10.0,
            scale: 2.0,
            dist_floor: 1e-12,
        };
        let i = information_content(&[std::f64::consts::E], &[1.0], &c);
        assert!((i - 12.0).abs() < 1e-12);
    }

    #[test]
    fn zero_distance_clamped_not_infinite() {
        let i = information_content(&[0.0], &[1.0], &cfg());
        assert!(i.is_finite());
        assert!(i < -20.0, "floor of 1e-12 gives ln ~ -27.6, got {i}");
    }

    #[test]
    fn knn_with_full_k_matches_information_content_bitwise() {
        let dists = [3.0, 0.5, 2.0, 0.9];
        let weights = [0.4, 1.1, 0.2, 0.8];
        let full = information_content(&dists, &weights, &cfg());
        for k in [4, 10] {
            let knn = information_content_knn(&dists, &weights, k, &cfg());
            assert_eq!(full.to_bits(), knn.to_bits(), "k = {k}");
        }
    }

    #[test]
    fn knn_truncates_to_nearest() {
        // k = 2 keeps the two smallest distances (0.5 at index 1,
        // 0.9 at index 3) with weights renormalized.
        let dists = [3.0, 0.5, 2.0, 0.9];
        let weights = [0.4, 1.0, 0.2, 1.0];
        let knn = information_content_knn(&dists, &weights, 2, &cfg());
        let expected = information_content(&[0.5, 0.9], &[1.0, 1.0], &cfg());
        assert!((knn - expected).abs() < 1e-12, "{knn} vs {expected}");
    }

    #[test]
    fn knn_ties_break_by_index() {
        // Equal distances: indices 0 and 1 are kept, not 2.
        let dists = [1.0, 1.0, 1.0];
        let weights = [1.0, 1.0, 100.0];
        let knn = information_content_knn(&dists, &weights, 2, &cfg());
        let expected = information_content(&[1.0, 1.0], &[1.0, 1.0], &cfg());
        assert!((knn - expected).abs() < 1e-12);
    }

    #[test]
    fn knn_warm_buffer_matches_fresh() {
        let dists = [3.0, 0.5, 2.0, 0.9];
        let weights = [0.4, 1.1, 0.2, 0.8];
        let mut order = Vec::new();
        // Dirty the buffer with a different-length call first.
        information_content_knn_with(&[1.0, 2.0], &[1.0, 1.0], 1, &cfg(), &mut order);
        let warm = information_content_knn_with(&dists, &weights, 3, &cfg(), &mut order);
        let fresh = information_content_knn(&dists, &weights, 3, &cfg());
        assert_eq!(warm.to_bits(), fresh.to_bits());
    }

    #[test]
    #[should_panic(expected = "zero weight")]
    fn knn_zero_weight_selection_panics() {
        // The nearest neighbor carries no weight and k = 1 keeps only it.
        information_content_knn(&[0.5, 2.0], &[0.0, 1.0], 1, &cfg());
    }

    #[test]
    fn auto_entropy_two_points() {
        // Two items, equal weights 1/2: H = sum_i (1/2)(1/2)/(1/2) log d
        // = 2 * (1/2) log d = log d.
        let d = DistanceMatrix::symmetric_from_fn(2, |_, _| std::f64::consts::E);
        let h = auto_entropy(&d, &[1.0, 1.0], &cfg());
        assert!((h - 1.0).abs() < 1e-12, "{h}");
    }

    #[test]
    fn auto_entropy_ignores_diagonal() {
        let mut data = vec![0.0; 9];
        for i in 0..3 {
            for j in 0..3 {
                data[i * 3 + j] = if i == j { 0.0 } else { std::f64::consts::E };
            }
        }
        let d = DistanceMatrix::from_vec(3, 3, data);
        let h = auto_entropy(&d, &[1.0, 1.0, 1.0], &cfg());
        // all off-diagonal log distances = 1 -> weighted sum = 1.
        assert!((h - 1.0).abs() < 1e-12, "{h}");
    }

    #[test]
    fn auto_entropy_singleton_is_offset() {
        let d = DistanceMatrix::from_vec(1, 1, vec![0.0]);
        let c = EstimatorConfig {
            offset: 3.0,
            ..cfg()
        };
        assert_eq!(auto_entropy(&d, &[1.0], &c), 3.0);
    }

    #[test]
    fn auto_entropy_leave_one_out_renormalization() {
        // Three items with weights (1/2, 1/4, 1/4), distances all e.
        // H = sum_i psi_i * [sum_{j!=i} psi_j log e] / (1 - psi_i)
        //   = sum_i psi_i * (1 - psi_i)/(1 - psi_i) = sum_i psi_i = 1.
        let d = DistanceMatrix::symmetric_from_fn(3, |_, _| std::f64::consts::E);
        let h = auto_entropy(&d, &[2.0, 1.0, 1.0], &cfg());
        assert!((h - 1.0).abs() < 1e-12, "{h}");
    }

    #[test]
    fn cross_entropy_uniform() {
        let d = DistanceMatrix::from_fn(2, 3, |_, _| std::f64::consts::E);
        let h = cross_entropy(&d, &[1.0, 1.0], &[1.0, 1.0, 1.0], &cfg());
        assert!((h - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_respects_both_weightings() {
        // Mass concentrated on (row 0, col 1) -> log of that distance.
        let d = DistanceMatrix::from_fn(2, 2, |i, j| {
            if i == 0 && j == 1 {
                (2.0f64).exp()
            } else {
                1.0
            }
        });
        let h = cross_entropy(&d, &[1.0, 0.0], &[0.0, 1.0], &cfg());
        assert!((h - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cross_entropy_symmetric_under_transpose() {
        let d = DistanceMatrix::from_fn(2, 3, |i, j| 1.0 + (i + 2 * j) as f64);
        let dt = DistanceMatrix::from_fn(3, 2, |j, i| 1.0 + (i + 2 * j) as f64);
        let ws = [0.3, 0.7];
        let wt = [0.2, 0.5, 0.3];
        let h1 = cross_entropy(&d, &ws, &wt, &cfg());
        let h2 = cross_entropy(&dt, &wt, &ws, &cfg());
        assert!((h1 - h2).abs() < 1e-12);
    }

    #[test]
    fn unnormalized_weights_equal_normalized() {
        let d = DistanceMatrix::from_fn(2, 2, |i, j| 1.0 + (i * 2 + j) as f64);
        let h1 = cross_entropy(&d, &[1.0, 3.0], &[2.0, 2.0], &cfg());
        let h2 = cross_entropy(&d, &[0.25, 0.75], &[0.5, 0.5], &cfg());
        assert!((h1 - h2).abs() < 1e-12);
    }

    #[test]
    fn block_forms_match_extracted_blocks_bit_for_bit() {
        // The in-place block estimators must equal extracting the block
        // first, to the last bit — the change-point scores rely on it.
        let parent = DistanceMatrix::from_fn(6, 6, |i, j| {
            if i == j {
                0.0
            } else {
                1.0 + ((i * 5 + j * 3) % 7) as f64 * 0.37
            }
        });
        let ws = [0.4, 1.1, 0.0];
        let wt = [2.0, 0.5, 1.3];
        let c = cfg();

        let cross = parent.block(0..3, 3..6);
        assert_eq!(
            cross_entropy(&cross, &ws, &wt, &c).to_bits(),
            cross_entropy_block(&parent, 0..3, 3..6, &ws, &wt, &c).to_bits()
        );

        let diag = parent.block(3..6, 3..6);
        assert_eq!(
            auto_entropy(&diag, &wt, &c).to_bits(),
            auto_entropy_block(&parent, 3..6, &wt, &c).to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn auto_entropy_block_out_of_range_panics() {
        let d = DistanceMatrix::from_fn(3, 3, |_, _| 1.0);
        auto_entropy_block(&d, 1..4, &[1.0, 1.0, 1.0], &cfg());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn information_content_length_mismatch_panics() {
        information_content(&[1.0], &[1.0, 1.0], &cfg());
    }

    #[test]
    #[should_panic(expected = "positive sum")]
    fn zero_weights_panic() {
        information_content(&[1.0], &[0.0], &cfg());
    }

    #[test]
    #[should_panic(expected = "square")]
    fn auto_entropy_rect_panics() {
        let d = DistanceMatrix::from_fn(2, 3, |_, _| 1.0);
        auto_entropy(&d, &[1.0, 1.0], &cfg());
    }
}
