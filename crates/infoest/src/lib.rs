//! Distance-based information estimators for weighted observations
//! (Hino & Murata, *Neural Networks* 2013), as used in §3.3 of the
//! paper.
//!
//! Given weighted sets `S = {(S_i, ψ_i)}` and `S' = {(S'_j, ψ'_j)}`
//! embedded in a metric space with pairwise distances available, the
//! three estimators are
//!
//! - information content `I(S; S') = c + d Σ_j ψ'_j log dist(S'_j, S)`,
//! - auto-entropy `H(S) = c + d Σ_i Σ_{j≠i} ψ_i ψ_j / (1 - ψ_i) · log dist(S_i, S_j)`,
//! - cross-entropy `H(S, S') = c + d Σ_i Σ_j ψ_i ψ'_j log dist(S_i, S'_j)`.
//!
//! The constants `c` and `d` (the effective embedding dimension) cancel
//! in the change-point scores of Eqs. (16)–(17), which are differences of
//! these quantities; the defaults are therefore `c = 0`, `d = 1`. They
//! remain configurable for uses where absolute entropy estimates matter.
//!
//! This crate is deliberately metric-agnostic: it consumes plain distance
//! slices/matrices, so the caller decides whether distances are EMDs
//! between signatures (as in the paper) or anything else.

pub mod estimators;
pub mod matrix;

pub use estimators::{
    auto_entropy, auto_entropy_block, cross_entropy, cross_entropy_block, information_content,
    information_content_knn, information_content_knn_with, EstimatorConfig,
};
pub use matrix::DistanceMatrix;
