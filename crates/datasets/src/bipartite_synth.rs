//! The four synthetic bipartite-graph datasets of §5.3 (Fig. 10).
//!
//! Common setup: at each time step the numbers of source and destination
//! nodes are `Poisson(200)`; sources and destinations each form two
//! clusters (fractions ρ, δ); community `(k, l)` has Poisson edge-weight
//! rate `λ_{k,l}`. The initial state is
//! `λ = [[10, 3], [1, 5]], ρ = δ = 0.5`. Every 20 steps from t = 40
//! (0-indexed) the parameters change per dataset, with the change
//! magnitude growing over time:
//!
//! 1. **TrafficLevel** — all `λ_{k,l}` jump to `a + 1` inside interval
//!    `a` and back to 1 outside (uniform traffic, level changes);
//! 2. **Repartition** — ρ = δ jump to `0.5 ± 0.1a`, λ fixed;
//! 3. **RepartitionFixedTraffic** — like 2 but the total edge weight is
//!    pinned to 100 000 (pure structure change, no volume change);
//! 4. **RateShuffle** — ρ, δ fixed; the four λ values are permuted in a
//!    different way each interval (240 steps).

use crate::LabeledGraphs;
use bipartite::{generate_community_graph, CommunitySpec};
use rand::Rng;
use stats::Poisson;

/// Identifier of the four §5.3 datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BipartiteDataset {
    /// Dataset 1: total traffic level changes.
    TrafficLevel,
    /// Dataset 2: cluster partition changes (traffic follows).
    Repartition,
    /// Dataset 3: partition changes with fixed total traffic.
    RepartitionFixedTraffic,
    /// Dataset 4: community rates permuted.
    RateShuffle,
}

impl BipartiteDataset {
    /// All four, in paper order.
    pub const ALL: [BipartiteDataset; 4] = [
        BipartiteDataset::TrafficLevel,
        BipartiteDataset::Repartition,
        BipartiteDataset::RepartitionFixedTraffic,
        BipartiteDataset::RateShuffle,
    ];

    /// Paper's dataset number (1–4).
    pub fn number(&self) -> usize {
        match self {
            BipartiteDataset::TrafficLevel => 1,
            BipartiteDataset::Repartition => 2,
            BipartiteDataset::RepartitionFixedTraffic => 3,
            BipartiteDataset::RateShuffle => 4,
        }
    }

    /// Sequence length (Fig. 10: 200 steps, 240 for Dataset 4).
    pub fn steps(&self) -> usize {
        match self {
            BipartiteDataset::RateShuffle => 240,
            _ => 200,
        }
    }
}

/// Mean node count per side (paper: Poisson(200)).
pub const MEAN_NODES: f64 = 200.0;

/// Initial community rates.
pub const LAMBDA0: [[f64; 2]; 2] = [[10.0, 3.0], [1.0, 5.0]];

/// Parameter regime at one time step. Exposed for tests and for the
/// experiment harness to print the schedule.
pub fn spec_at(which: BipartiteDataset, t: usize, eta: &[bool]) -> CommunitySpec {
    // Interval index a = 1..=5 (paper: t in [20(a+1), 20(a+1)+20) with
    // 1-indexed time; 0-indexed this is [20a+20, 20a+40)).
    let interval = |t: usize| -> Option<usize> {
        if t >= 40 {
            let a = (t - 40) / 20 + 1;
            (a <= 5).then_some(a)
        } else {
            None
        }
    };
    let mut spec = CommunitySpec {
        num_sources: 0, // filled by the caller
        num_dests: 0,
        rho: 0.5,
        delta: 0.5,
        lambda: LAMBDA0,
        fixed_total_weight: None,
    };
    match which {
        BipartiteDataset::TrafficLevel => {
            let level = interval(t).map_or(1.0, |a| (a + 1) as f64);
            spec.lambda = [[level; 2]; 2];
        }
        BipartiteDataset::Repartition => {
            if let Some(a) = interval(t) {
                let sign = if eta[a - 1] { 1.0 } else { -1.0 };
                let p = (0.5 + 0.1 * a as f64 * sign).clamp(0.05, 0.95);
                spec.rho = p;
                spec.delta = p;
            }
        }
        BipartiteDataset::RepartitionFixedTraffic => {
            if let Some(a) = interval(t) {
                let sign = if eta[a - 1] { 1.0 } else { -1.0 };
                let p = (0.5 + 0.1 * a as f64 * sign).clamp(0.05, 0.95);
                spec.rho = p;
                spec.delta = p;
            }
            spec.fixed_total_weight = Some(100_000);
        }
        BipartiteDataset::RateShuffle => {
            // Interchange the λ values each interval. The arrangements
            // are chosen so that *both* the row-sum and the column-sum
            // multisets change between consecutive intervals — otherwise
            // the per-node strength distributions (features 5/6) would be
            // unchanged and the interchange would be undetectable, which
            // is not what Fig. 10(d) shows. All six matrices use the same
            // value multiset {10, 5, 3, 1}.
            let a = if t >= 40 { (t - 40) / 20 + 1 } else { 0 };
            const MATS: [[[f64; 2]; 2]; 6] = [
                [[10.0, 3.0], [1.0, 5.0]], // rows (13,6), cols (11,8)
                [[10.0, 1.0], [5.0, 3.0]], // rows (11,8), cols (15,4)
                [[10.0, 5.0], [3.0, 1.0]], // rows (15,4), cols (13,6)
                [[10.0, 3.0], [5.0, 1.0]], // rows (13,6), cols (15,4)
                [[10.0, 1.0], [3.0, 5.0]], // rows (11,8), cols (13,6)
                [[10.0, 5.0], [1.0, 3.0]], // rows (15,4), cols (11,8)
            ];
            // Sequence 0, 1, 2, 3, 4, 5, 3, 4, 5, …: every consecutive
            // pair differs in both row- and column-sum multisets.
            let idx = if a == 0 {
                0
            } else if a <= 5 {
                a
            } else {
                3 + (a - 6) % 3
            };
            spec.lambda = MATS[idx];
        }
    }
    spec
}

/// Ground-truth change points (0-indexed steps at which the parameters
/// change).
pub fn change_points(which: BipartiteDataset) -> Vec<usize> {
    let last = which.steps();
    // Entering each interval a = 1..=5 and leaving interval 5; Dataset 4
    // keeps permuting through the longer tail.
    let mut cps: Vec<usize> = (1..=6).map(|a| 20 * a + 20).collect();
    if which == BipartiteDataset::RateShuffle {
        let mut t = 160;
        while t < last {
            cps.push(t);
            t += 20;
        }
        cps.sort_unstable();
        cps.dedup();
    }
    cps.retain(|&c| c < last);
    cps
}

/// Generate a full dataset.
pub fn generate(which: BipartiteDataset, rng: &mut impl Rng) -> LabeledGraphs {
    let nodes = Poisson::new(MEAN_NODES);
    // Draw the interval signs η once (shared across the sequence, as in
    // the paper where each interval has one random direction).
    let eta: Vec<bool> = (0..12).map(|_| rng.gen()).collect();
    let mut graphs = Vec::with_capacity(which.steps());
    for t in 0..which.steps() {
        let mut spec = spec_at(which, t, &eta);
        spec.num_sources = nodes.sample(rng).max(4) as usize;
        spec.num_dests = nodes.sample(rng).max(4) as usize;
        graphs.push(generate_community_graph(&spec, rng));
    }
    LabeledGraphs {
        graphs,
        change_points: change_points(which),
        name: format!("bipartite-dataset{}", which.number()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats::seeded_rng;

    #[test]
    fn schedule_matches_paper_intervals() {
        let eta = vec![true; 12];
        // Dataset 1: lambda uniform 1 before t=40, a+1 inside interval a.
        let s39 = spec_at(BipartiteDataset::TrafficLevel, 39, &eta);
        assert_eq!(s39.lambda, [[1.0; 2]; 2]);
        let s40 = spec_at(BipartiteDataset::TrafficLevel, 40, &eta);
        assert_eq!(s40.lambda, [[2.0; 2]; 2]);
        let s120 = spec_at(BipartiteDataset::TrafficLevel, 120, &eta);
        assert_eq!(s120.lambda, [[6.0; 2]; 2]);
        let s140 = spec_at(BipartiteDataset::TrafficLevel, 140, &eta);
        assert_eq!(s140.lambda, [[1.0; 2]; 2]);
    }

    #[test]
    fn repartition_moves_rho() {
        let eta = vec![true; 12];
        let s = spec_at(BipartiteDataset::Repartition, 45, &eta);
        assert!((s.rho - 0.6).abs() < 1e-12);
        assert_eq!(s.lambda, LAMBDA0);
        let s5 = spec_at(BipartiteDataset::Repartition, 125, &eta);
        assert!((s5.rho - 0.95).abs() < 1e-9, "clamped at 0.95: {}", s5.rho);
        // Negative sign direction.
        let eta_neg = vec![false; 12];
        let sn = spec_at(BipartiteDataset::Repartition, 45, &eta_neg);
        assert!((sn.rho - 0.4).abs() < 1e-12);
    }

    #[test]
    fn dataset3_pins_total_weight() {
        let eta = vec![true; 12];
        let s = spec_at(BipartiteDataset::RepartitionFixedTraffic, 10, &eta);
        assert_eq!(s.fixed_total_weight, Some(100_000));
    }

    #[test]
    fn rate_shuffle_permutes_multiset() {
        let eta = vec![true; 12];
        for t in [0, 45, 65, 125, 200, 239] {
            let s = spec_at(BipartiteDataset::RateShuffle, t, &eta);
            let mut flat = vec![
                s.lambda[0][0],
                s.lambda[0][1],
                s.lambda[1][0],
                s.lambda[1][1],
            ];
            flat.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(flat, vec![1.0, 3.0, 5.0, 10.0], "t={t}");
        }
        // Consecutive intervals differ.
        let a = spec_at(BipartiteDataset::RateShuffle, 45, &eta);
        let b = spec_at(BipartiteDataset::RateShuffle, 65, &eta);
        assert_ne!(a.lambda, b.lambda);
    }

    #[test]
    fn change_point_lists() {
        assert_eq!(
            change_points(BipartiteDataset::TrafficLevel),
            vec![40, 60, 80, 100, 120, 140]
        );
        let ds4 = change_points(BipartiteDataset::RateShuffle);
        assert!(ds4.contains(&40));
        assert!(ds4.contains(&220));
        assert!(ds4.iter().all(|&c| c < 240));
    }

    #[test]
    fn generated_sequence_shape() {
        // Scale down via direct spec use is not possible here, so verify
        // on the real scale but only a short prefix by truncating after
        // generation (graph generation at Poisson(200) nodes is fast).
        let data = generate(BipartiteDataset::TrafficLevel, &mut seeded_rng(41));
        assert_eq!(data.graphs.len(), 200);
        let mean_sources: f64 = data
            .graphs
            .iter()
            .map(|g| g.num_sources() as f64)
            .sum::<f64>()
            / 200.0;
        assert!(
            (mean_sources - 200.0).abs() < 5.0,
            "mean sources {mean_sources}"
        );
    }

    #[test]
    fn traffic_level_changes_total_weight() {
        let data = generate(BipartiteDataset::TrafficLevel, &mut seeded_rng(42));
        let avg_w = |r: std::ops::Range<usize>| {
            data.graphs[r.clone()]
                .iter()
                .map(|g| g.total_weight())
                .sum::<f64>()
                / r.len() as f64
        };
        let before = avg_w(20..40); // lambda = 1
        let interval5 = avg_w(120..140); // lambda = 6
        assert!(
            interval5 > 4.0 * before,
            "traffic should jump: {before} -> {interval5}"
        );
    }

    #[test]
    fn fixed_traffic_dataset_holds_weight_constant() {
        let data = generate(
            BipartiteDataset::RepartitionFixedTraffic,
            &mut seeded_rng(43),
        );
        for g in data.graphs.iter().step_by(25) {
            assert!((g.total_weight() - 100_000.0).abs() < 1e-6);
        }
    }
}
