//! Workload generators for every experiment in the paper.
//!
//! | Module | Paper exhibit | Contents |
//! |--------|---------------|----------|
//! | [`fig1`] | Fig. 1 | 1-D Gaussian-mixture bags, changes at t = 50, 100 |
//! | [`synthetic5`] | Fig. 6 | the five 2-D synthetic datasets of §5.1 |
//! | [`pamap`] | Table 1 + Fig. 7 | synthetic stand-in for the PAMAP2 activity dataset |
//! | [`bipartite_synth`] | Fig. 10 | the four §5.3 bipartite-graph datasets |
//! | [`enron`] | Fig. 11 | event-driven e-mail network simulator (Enron stand-in) |
//!
//! The PAMAP2 and Enron corpora are not redistributable/available
//! offline; the [`pamap`] and [`enron`] modules generate synthetic
//! equivalents that preserve the structural properties the method
//! exercises (bags of varying size whose underlying distribution shifts
//! at known ground-truth points; weekly bipartite graphs with varying
//! node sets and scripted events). See DESIGN.md §3 for the substitution
//! rationale.
//!
//! Every generator is deterministic given its seed and returns ground
//! truth alongside the data, so experiments can score precision/recall
//! of raised alerts.

pub mod bipartite_synth;
pub mod darknet;
pub mod enron;
pub mod fig1;
pub mod pamap;
pub mod questionnaire;
pub mod synthetic5;

use bagcpd::Bag;
use bipartite::{extract_feature, BipartiteGraph, Feature};

/// A bag sequence with ground-truth change points (bag indices at which
/// the new regime starts).
#[derive(Debug, Clone)]
pub struct LabeledBags {
    /// The observations.
    pub bags: Vec<Bag>,
    /// Indices where a new regime begins.
    pub change_points: Vec<usize>,
    /// Human-readable workload name.
    pub name: String,
}

/// A bipartite-graph sequence with ground-truth change points.
#[derive(Debug, Clone)]
pub struct LabeledGraphs {
    /// One graph per time window.
    pub graphs: Vec<BipartiteGraph>,
    /// Indices where a new regime begins.
    pub change_points: Vec<usize>,
    /// Human-readable workload name.
    pub name: String,
}

impl LabeledGraphs {
    /// Convert the sequence into bags of one scalar feature (§5.3).
    ///
    /// Graphs for which the feature yields no values (an edgeless window
    /// under [`Feature::EdgeWeight`]) contribute a single zero — the
    /// detector requires non-empty bags, and "no traffic" is itself a
    /// distributional statement.
    pub fn feature_bags(&self, feature: Feature) -> LabeledBags {
        let bags = self
            .graphs
            .iter()
            .map(|g| {
                let mut values = extract_feature(g, feature);
                if values.is_empty() {
                    values.push(0.0);
                }
                Bag::from_scalars(values)
            })
            .collect();
        LabeledBags {
            bags,
            change_points: self.change_points.clone(),
            name: format!("{} / feature {}", self.name, feature.number()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feature_bags_preserve_labels() {
        let graphs = vec![
            BipartiteGraph::new(2, 2, vec![(0, 0, 1.0)]),
            BipartiteGraph::new(3, 2, vec![(0, 1, 2.0), (2, 0, 1.0)]),
        ];
        let lg = LabeledGraphs {
            graphs,
            change_points: vec![1],
            name: "toy".into(),
        };
        let lb = lg.feature_bags(Feature::SourceDegree);
        assert_eq!(lb.bags.len(), 2);
        assert_eq!(lb.bags[0].len(), 2);
        assert_eq!(lb.bags[1].len(), 3);
        assert_eq!(lb.change_points, vec![1]);
        assert!(lb.name.contains("feature 1"));
    }

    #[test]
    fn edgeless_graph_yields_zero_bag() {
        let lg = LabeledGraphs {
            graphs: vec![BipartiteGraph::new(2, 2, vec![])],
            change_points: vec![],
            name: "empty".into(),
        };
        let lb = lg.feature_bags(Feature::EdgeWeight);
        assert_eq!(lb.bags[0].len(), 1);
        assert_eq!(lb.bags[0].points()[0], vec![0.0]);
    }
}
