//! The Fig. 1 motivating workload.
//!
//! 150 time steps; each bag holds ~300 one-dimensional observations.
//! From t = 0..50 the generating distribution is a single Gaussian, from
//! t = 50..100 a mixture of two Gaussians, from t = 100..150 a mixture of
//! three. The components are placed symmetrically so the *sample mean
//! stays at zero throughout* — which is the point: any method fed only
//! the per-step sample mean (Fig. 1(b)) cannot see these changes.

use crate::LabeledBags;
use bagcpd::Bag;
use rand::Rng;
use stats::{GaussianMixture1d, Poisson};

/// Configuration of the Fig. 1 workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig1Config {
    /// Number of time steps (paper: 150).
    pub steps: usize,
    /// Mean bag size (paper: "about 300 instances at each step").
    pub mean_bag_size: f64,
    /// Separation of the mixture modes.
    pub mode_separation: f64,
}

impl Default for Fig1Config {
    fn default() -> Self {
        Fig1Config {
            steps: 150,
            mean_bag_size: 300.0,
            mode_separation: 5.0,
        }
    }
}

/// Generate the workload.
///
/// Regimes (thirds of the sequence):
/// 1. `N(0, 1.5^2)` — single component;
/// 2. equal mixture of `N(±s, 1)` — two components, mean still 0;
/// 3. equal mixture of `N(-s, 1), N(0, 1), N(+s, 1)` — three components.
pub fn generate(cfg: &Fig1Config, rng: &mut impl Rng) -> LabeledBags {
    let s = cfg.mode_separation;
    let third = cfg.steps / 3;
    let regimes = [
        GaussianMixture1d::equal_weight(&[(0.0, 1.5)]),
        GaussianMixture1d::equal_weight(&[(-s, 1.0), (s, 1.0)]),
        GaussianMixture1d::equal_weight(&[(-s, 1.0), (0.0, 1.0), (s, 1.0)]),
    ];
    let sizes = Poisson::new(cfg.mean_bag_size);

    let mut bags = Vec::with_capacity(cfg.steps);
    for t in 0..cfg.steps {
        let regime = &regimes[(t / third.max(1)).min(2)];
        let n = sizes.sample(rng).max(2) as usize;
        bags.push(Bag::from_scalars(regime.sample_n(n, rng)));
    }
    LabeledBags {
        bags,
        change_points: vec![third, 2 * third],
        name: "fig1".into(),
    }
}

/// The per-step sample means (the information-destroying summarization
/// of Fig. 1(b)) as a scalar series for the baselines.
pub fn sample_mean_series(data: &LabeledBags) -> Vec<f64> {
    data.bags.iter().map(|b| b.mean()[0]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats::seeded_rng;

    #[test]
    fn structure_matches_paper() {
        let data = generate(&Fig1Config::default(), &mut seeded_rng(1));
        assert_eq!(data.bags.len(), 150);
        assert_eq!(data.change_points, vec![50, 100]);
        let mean_size: f64 =
            data.bags.iter().map(|b| b.len() as f64).sum::<f64>() / data.bags.len() as f64;
        assert!(
            (mean_size - 300.0).abs() < 15.0,
            "mean bag size {mean_size}"
        );
    }

    #[test]
    fn sample_means_stay_near_zero_in_all_regimes() {
        // The crux of Fig. 1: the mean sequence carries no signal.
        let data = generate(&Fig1Config::default(), &mut seeded_rng(2));
        let means = sample_mean_series(&data);
        for (t, m) in means.iter().enumerate() {
            assert!(m.abs() < 1.5, "mean at t={t} is {m}");
        }
        // Regime averages are all ~0 (no level shift for baselines).
        let avg = |r: std::ops::Range<usize>| means[r.clone()].iter().sum::<f64>() / r.len() as f64;
        assert!(avg(0..50).abs() < 0.3);
        assert!(avg(50..100).abs() < 0.3);
        assert!(avg(100..150).abs() < 0.3);
    }

    #[test]
    fn regime_shapes_differ() {
        // Fraction of mass near zero distinguishes the three regimes.
        let data = generate(&Fig1Config::default(), &mut seeded_rng(3));
        let near_zero = |bag: &Bag| {
            bag.points().iter().filter(|p| p[0].abs() < 2.0).count() as f64 / bag.len() as f64
        };
        let r1: f64 = data.bags[..50].iter().map(near_zero).sum::<f64>() / 50.0;
        let r2: f64 = data.bags[50..100].iter().map(near_zero).sum::<f64>() / 50.0;
        let r3: f64 = data.bags[100..].iter().map(near_zero).sum::<f64>() / 50.0;
        assert!(r1 > 0.8, "single Gaussian concentrated: {r1}");
        assert!(r2 < 0.1, "two-mode regime hollow at zero: {r2}");
        assert!(r3 > 0.2 && r3 < 0.5, "three-mode regime partial: {r3}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&Fig1Config::default(), &mut seeded_rng(4));
        let b = generate(&Fig1Config::default(), &mut seeded_rng(4));
        assert_eq!(a.bags, b.bags);
    }
}
