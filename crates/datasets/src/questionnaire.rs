//! Periodic questionnaire surveys — the paper's *first* motivating
//! scenario (§1): "conduct a questionnaire survey periodically, and
//! monitor for any changes in the overall characteristic of the group."
//!
//! Each survey wave polls a different, varying-size sample of
//! respondents; each respondent answers `q` Likert-scale questions
//! (1–7), so a wave is a bag of `q`-dimensional vectors. The population
//! is a mixture of latent opinion segments; scripted shifts move
//! segment proportions or segment opinions at known waves. Because
//! respondents differ per wave and sample sizes fluctuate, this is
//! irreducibly a bags-of-data problem.

use crate::LabeledBags;
use bagcpd::Bag;
use rand::Rng;
use stats::{Categorical, Normal, Poisson};

/// A latent opinion segment: mean answer per question (on the 1–7
/// scale) and a response noise level.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Mean answer per question.
    pub means: Vec<f64>,
    /// Response noise (standard deviation).
    pub sd: f64,
}

/// A scripted population shift starting at a given wave.
#[derive(Debug, Clone, PartialEq)]
pub struct Shift {
    /// Wave index at which the new regime starts.
    pub wave: usize,
    /// New segment mixture weights (same length as the segment list).
    pub mix: Vec<f64>,
}

/// Configuration of the survey simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct QuestionnaireConfig {
    /// Number of survey waves.
    pub waves: usize,
    /// Mean respondents per wave (Poisson).
    pub mean_respondents: f64,
    /// The latent segments.
    pub segments: Vec<Segment>,
    /// Initial segment mixture weights.
    pub initial_mix: Vec<f64>,
    /// Scripted shifts (sorted by wave).
    pub shifts: Vec<Shift>,
}

impl Default for QuestionnaireConfig {
    fn default() -> Self {
        // Three segments over 4 questions: satisfied, neutral, and a
        // small dissatisfied segment that grows after wave 20 and
        // polarizes after wave 40 — mean answers barely move, the
        // *composition* does.
        QuestionnaireConfig {
            waves: 60,
            mean_respondents: 120.0,
            segments: vec![
                Segment {
                    means: vec![6.0, 5.5, 6.0, 5.0],
                    sd: 0.7,
                },
                Segment {
                    means: vec![4.0, 4.0, 4.0, 4.0],
                    sd: 0.8,
                },
                Segment {
                    means: vec![2.0, 2.5, 2.0, 3.0],
                    sd: 0.7,
                },
            ],
            initial_mix: vec![0.45, 0.45, 0.10],
            shifts: vec![
                Shift {
                    wave: 20,
                    mix: vec![0.35, 0.35, 0.30],
                },
                Shift {
                    wave: 40,
                    mix: vec![0.45, 0.10, 0.45],
                },
            ],
        }
    }
}

impl QuestionnaireConfig {
    /// Check parameters.
    ///
    /// # Errors
    /// Returns a description of the problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.waves == 0 || self.segments.is_empty() {
            return Err("waves and segments must be non-empty".into());
        }
        let q = self.segments[0].means.len();
        if q == 0 || self.segments.iter().any(|s| s.means.len() != q) {
            return Err("segments must share a non-zero question count".into());
        }
        if self.initial_mix.len() != self.segments.len()
            || self
                .shifts
                .iter()
                .any(|s| s.mix.len() != self.segments.len())
        {
            return Err("mixture weights must match the segment count".into());
        }
        Ok(())
    }
}

/// Generate the survey waves.
///
/// # Panics
/// Panics on an invalid configuration.
pub fn generate(cfg: &QuestionnaireConfig, rng: &mut impl Rng) -> LabeledBags {
    cfg.validate().expect("invalid QuestionnaireConfig");
    let sizes = Poisson::new(cfg.mean_respondents);
    let noise = Normal::new(0.0, 1.0);
    let mut bags = Vec::with_capacity(cfg.waves);
    for wave in 0..cfg.waves {
        let mix = cfg
            .shifts
            .iter()
            .rev()
            .find(|s| wave >= s.wave)
            .map_or(&cfg.initial_mix, |s| &s.mix);
        let choose = Categorical::new(mix);
        let n = sizes.sample(rng).max(5) as usize;
        let points: Vec<Vec<f64>> = (0..n)
            .map(|_| {
                let seg = &cfg.segments[choose.sample(rng)];
                seg.means
                    .iter()
                    .map(|&m| (m + seg.sd * noise.sample(rng)).clamp(1.0, 7.0))
                    .collect()
            })
            .collect();
        bags.push(Bag::new(points));
    }
    LabeledBags {
        bags,
        change_points: cfg.shifts.iter().map(|s| s.wave).collect(),
        name: "questionnaire-synthetic".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats::seeded_rng;

    #[test]
    fn structure_and_labels() {
        let data = generate(&QuestionnaireConfig::default(), &mut seeded_rng(71));
        assert_eq!(data.bags.len(), 60);
        assert_eq!(data.change_points, vec![20, 40]);
        assert!(data.bags.iter().all(|b| b.dim() == 4));
        let sizes: Vec<usize> = data.bags.iter().map(Bag::len).collect();
        assert!(sizes.iter().max() != sizes.iter().min(), "sizes must vary");
    }

    #[test]
    fn answers_stay_on_likert_scale() {
        let data = generate(&QuestionnaireConfig::default(), &mut seeded_rng(72));
        for b in &data.bags {
            for p in b.points() {
                assert!(p.iter().all(|&x| (1.0..=7.0).contains(&x)));
            }
        }
    }

    #[test]
    fn composition_shift_changes_segment_fractions() {
        let data = generate(&QuestionnaireConfig::default(), &mut seeded_rng(73));
        // Fraction of clearly dissatisfied respondents (q1 <= 3).
        let dissat = |r: std::ops::Range<usize>| {
            let mut low = 0usize;
            let mut total = 0usize;
            for b in &data.bags[r] {
                for p in b.points() {
                    total += 1;
                    if p[0] <= 3.0 {
                        low += 1;
                    }
                }
            }
            low as f64 / total as f64
        };
        let early = dissat(0..20);
        let mid = dissat(20..40);
        let late = dissat(40..60);
        assert!(mid > early + 0.1, "shift 1 visible: {early} -> {mid}");
        assert!(late > mid + 0.05, "shift 2 visible: {mid} -> {late}");
    }

    #[test]
    fn second_shift_keeps_mean_but_polarizes() {
        // Regime 2 -> 3: the neutral segment splits to the extremes. The
        // wave mean moves much less than the spread does.
        let data = generate(&QuestionnaireConfig::default(), &mut seeded_rng(74));
        let stats_of = |r: std::ops::Range<usize>| {
            let vals: Vec<f64> = data.bags[r]
                .iter()
                .flat_map(|b| b.points().iter().map(|p| p[0]))
                .collect();
            let m = vals.iter().sum::<f64>() / vals.len() as f64;
            let v = vals.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / vals.len() as f64;
            (m, v)
        };
        let (m2, v2) = stats_of(20..40);
        let (m3, v3) = stats_of(40..60);
        assert!((m3 - m2).abs() < 0.5, "mean barely moves: {m2} vs {m3}");
        assert!(v3 > v2 + 0.5, "variance jumps: {v2} vs {v3}");
    }

    #[test]
    fn validation_rejects_mismatched_mix() {
        let mut cfg = QuestionnaireConfig::default();
        cfg.initial_mix.pop();
        assert!(cfg.validate().is_err());
    }
}
