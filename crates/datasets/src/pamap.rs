//! Synthetic stand-in for the PAMAP2 physical-activity dataset
//! (Table 1 + Fig. 7).
//!
//! The real PAMAP2 corpus (Reiss & Stricker 2012, UCI repository) is not
//! available offline, so this module simulates its structure:
//!
//! - a subject performs the twelve protocol activities of Table 1 in
//!   sequence, each for a random duration;
//! - four sensors (three inertial measurement units + heart rate) emit
//!   records at irregular rates — sampling-frequency jitter, connection
//!   loss and crashes make the per-second record count vary, which is
//!   the paper's motivation for using bags;
//! - records are 4-D vectors (hand/chest/ankle acceleration magnitude +
//!   normalized heart rate) drawn from an activity-specific Gaussian
//!   regime with activity-specific oscillation (dynamic activities sweep
//!   their mean periodically);
//! - the stream is cut into 10-second bags. The paper reports ≈251.8
//!   bags per subject with ≈947.8 records per bag; the defaults below
//!   reproduce those magnitudes.
//!
//! Ground truth is the set of bag indices where the activity changes.

use crate::LabeledBags;
use bagcpd::Bag;
use rand::Rng;
use stats::{Normal, Poisson};

/// The 12 protocol activities of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activity {
    /// 1: lying
    Lying,
    /// 2: sitting
    Sitting,
    /// 3: standing
    Standing,
    /// 4: ironing
    Ironing,
    /// 5: vacuum cleaning
    VacuumCleaning,
    /// 6: ascending stairs
    AscendingStairs,
    /// 7: descending stairs
    DescendingStairs,
    /// 8: walking
    Walking,
    /// 9: Nordic walking
    NordicWalking,
    /// 10: cycling
    Cycling,
    /// 11: running
    Running,
    /// 12: rope jumping
    RopeJumping,
}

impl Activity {
    /// Table 1 activity ID.
    pub fn id(&self) -> usize {
        match self {
            Activity::Lying => 1,
            Activity::Sitting => 2,
            Activity::Standing => 3,
            Activity::Ironing => 4,
            Activity::VacuumCleaning => 5,
            Activity::AscendingStairs => 6,
            Activity::DescendingStairs => 7,
            Activity::Walking => 8,
            Activity::NordicWalking => 9,
            Activity::Cycling => 10,
            Activity::Running => 11,
            Activity::RopeJumping => 12,
        }
    }

    /// Baseline sensor regime: (hand, chest, ankle acceleration
    /// magnitude in g, heart rate normalized to [0, 1]) means plus an
    /// isotropic jitter and an oscillation amplitude/frequency for the
    /// dynamic activities.
    fn regime(&self) -> Regime {
        // (hand, chest, ankle, hr), sd, osc amplitude, osc period (s)
        match self {
            Activity::Lying => Regime::new([1.0, 1.0, 1.0, 0.15], 0.05, 0.0, 1.0),
            Activity::Sitting => Regime::new([1.0, 1.0, 1.0, 0.20], 0.06, 0.0, 1.0),
            Activity::Standing => Regime::new([1.05, 1.0, 1.0, 0.25], 0.07, 0.0, 1.0),
            Activity::Ironing => Regime::new([1.4, 1.05, 1.0, 0.30], 0.15, 0.3, 2.0),
            Activity::VacuumCleaning => Regime::new([1.5, 1.2, 1.1, 0.40], 0.20, 0.4, 1.5),
            Activity::AscendingStairs => Regime::new([1.3, 1.4, 1.8, 0.60], 0.25, 0.6, 1.2),
            Activity::DescendingStairs => Regime::new([1.3, 1.5, 2.0, 0.55], 0.30, 0.7, 1.0),
            Activity::Walking => Regime::new([1.2, 1.3, 1.6, 0.45], 0.20, 0.5, 1.1),
            Activity::NordicWalking => Regime::new([1.6, 1.35, 1.7, 0.50], 0.22, 0.6, 1.1),
            Activity::Cycling => Regime::new([1.1, 1.15, 1.9, 0.55], 0.18, 0.4, 0.9),
            Activity::Running => Regime::new([2.0, 2.2, 2.8, 0.80], 0.35, 1.0, 0.7),
            Activity::RopeJumping => Regime::new([2.5, 2.6, 3.2, 0.90], 0.40, 1.4, 0.5),
        }
    }
}

/// Per-activity generative regime.
#[derive(Debug, Clone, Copy)]
struct Regime {
    mean: [f64; 4],
    sd: f64,
    osc_amp: f64,
    osc_period: f64,
}

impl Regime {
    fn new(mean: [f64; 4], sd: f64, osc_amp: f64, osc_period: f64) -> Self {
        Regime {
            mean,
            sd,
            osc_amp,
            osc_period,
        }
    }
}

/// Configuration of the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct PamapConfig {
    /// Protocol: activity sequence performed by the subject. The default
    /// follows Table 1's protocol order with the stairs pair repeated, as
    /// in Fig. 7 (IDs 1 2 3 4 5 6 7 6 7 8 9 10 11 12).
    pub protocol: Vec<Activity>,
    /// Mean activity duration in seconds (paper subjects average ≈180 s
    /// per activity segment).
    pub mean_duration_s: f64,
    /// Bag window in seconds (paper: 10).
    pub window_s: f64,
    /// Mean records per second across the four sensors (paper: ≈94.8,
    /// giving ≈947.8 records per 10-s bag).
    pub mean_rate_hz: f64,
    /// Probability per bag of a sensor dropout window (halves the rate),
    /// modeling the connection losses the paper mentions.
    pub dropout_prob: f64,
}

impl Default for PamapConfig {
    fn default() -> Self {
        PamapConfig {
            protocol: vec![
                Activity::Lying,
                Activity::Sitting,
                Activity::Standing,
                Activity::Ironing,
                Activity::VacuumCleaning,
                Activity::AscendingStairs,
                Activity::DescendingStairs,
                Activity::AscendingStairs,
                Activity::DescendingStairs,
                Activity::Walking,
                Activity::NordicWalking,
                Activity::Cycling,
                Activity::Running,
                Activity::RopeJumping,
            ],
            mean_duration_s: 180.0,
            window_s: 10.0,
            mean_rate_hz: 94.8,
            dropout_prob: 0.05,
        }
    }
}

/// Output of the simulator: labeled bags plus the activity ID of each
/// bag (for axis labeling à la Fig. 7).
#[derive(Debug, Clone)]
pub struct PamapSubject {
    /// Bags with ground-truth change points.
    pub data: LabeledBags,
    /// Activity ID per bag.
    pub activity_ids: Vec<usize>,
}

/// Simulate one subject.
///
/// # Panics
/// Panics on an empty protocol or non-positive rates/durations.
pub fn generate_subject(cfg: &PamapConfig, rng: &mut impl Rng) -> PamapSubject {
    assert!(!cfg.protocol.is_empty(), "pamap: empty protocol");
    assert!(
        cfg.mean_duration_s > 0.0 && cfg.window_s > 0.0 && cfg.mean_rate_hz > 0.0,
        "pamap: durations and rates must be > 0"
    );

    let mut bags = Vec::new();
    let mut activity_ids = Vec::new();
    let mut change_points = Vec::new();
    let per_bag = Poisson::new(cfg.mean_rate_hz * cfg.window_s);
    let jitter = Normal::new(0.0, 1.0);

    for (seg, activity) in cfg.protocol.iter().enumerate() {
        // Duration: uniform in [0.5, 1.5] × mean, quantized to windows.
        let dur_s = cfg.mean_duration_s * rng.gen_range(0.5..1.5);
        let num_bags = (dur_s / cfg.window_s).round().max(2.0) as usize;
        if seg > 0 {
            change_points.push(bags.len());
        }
        let regime = activity.regime();
        for b in 0..num_bags {
            let mut n = per_bag.sample(rng).max(8) as usize;
            if rng.gen::<f64>() < cfg.dropout_prob {
                n /= 2; // dropout window: half the records lost
            }
            let mut points = Vec::with_capacity(n);
            for i in 0..n {
                // Position of this record inside the bag window, for the
                // oscillatory component of dynamic activities.
                let t_in = (b as f64 * cfg.window_s) + cfg.window_s * (i as f64 / n as f64);
                let phase = 2.0 * std::f64::consts::PI * t_in / regime.osc_period;
                let osc = regime.osc_amp * phase.sin();
                let p: Vec<f64> = (0..4)
                    .map(|c| {
                        let osc_c = if c < 3 { osc } else { 0.02 * osc };
                        regime.mean[c] + osc_c + regime.sd * jitter.sample(rng)
                    })
                    .collect();
                points.push(p);
            }
            bags.push(Bag::new(points));
            activity_ids.push(activity.id());
        }
    }

    PamapSubject {
        data: LabeledBags {
            bags,
            change_points,
            name: "pamap-synthetic".into(),
        },
        activity_ids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats::seeded_rng;

    #[test]
    fn magnitudes_match_paper_statistics() {
        let s = generate_subject(&PamapConfig::default(), &mut seeded_rng(31));
        let n_bags = s.data.bags.len();
        // Paper: 251.8 bags on average (protocol durations vary); accept
        // a generous band.
        assert!(
            (150..=400).contains(&n_bags),
            "bag count {n_bags} out of plausible range"
        );
        let mean_records: f64 =
            s.data.bags.iter().map(|b| b.len() as f64).sum::<f64>() / n_bags as f64;
        assert!(
            (mean_records - 947.8).abs() < 100.0,
            "mean records per bag {mean_records}"
        );
        // Record counts vary (sd ~ sqrt(948) plus dropout).
        let sd: f64 = {
            let v = s
                .data
                .bags
                .iter()
                .map(|b| (b.len() as f64 - mean_records).powi(2))
                .sum::<f64>()
                / n_bags as f64;
            v.sqrt()
        };
        assert!(sd > 10.0, "record-count sd {sd} too small to need bags");
    }

    #[test]
    fn change_points_align_with_activity_ids() {
        let s = generate_subject(&PamapConfig::default(), &mut seeded_rng(32));
        assert_eq!(s.data.bags.len(), s.activity_ids.len());
        assert_eq!(
            s.data.change_points.len(),
            PamapConfig::default().protocol.len() - 1
        );
        for &cp in &s.data.change_points {
            assert_ne!(
                s.activity_ids[cp - 1],
                s.activity_ids[cp],
                "activity must change at cp={cp}"
            );
        }
    }

    #[test]
    fn regimes_are_distinguishable() {
        // Mean sensor vector should differ clearly between lying and
        // running segments.
        let s = generate_subject(&PamapConfig::default(), &mut seeded_rng(33));
        let mean_of = |id: usize| -> Vec<f64> {
            let sel: Vec<&Bag> = s
                .data
                .bags
                .iter()
                .zip(&s.activity_ids)
                .filter(|&(_, &a)| a == id)
                .map(|(b, _)| b)
                .collect();
            let mut m = [0.0; 4];
            for b in &sel {
                for (mi, v) in m.iter_mut().zip(b.mean()) {
                    *mi += v;
                }
            }
            m.iter().map(|v| v / sel.len() as f64).collect()
        };
        let lying = mean_of(1);
        let running = mean_of(11);
        let dist: f64 = lying
            .iter()
            .zip(&running)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        assert!(dist > 1.0, "lying/running regime distance {dist}");
    }

    #[test]
    fn bags_are_four_dimensional() {
        let s = generate_subject(&PamapConfig::default(), &mut seeded_rng(34));
        assert!(s.data.bags.iter().all(|b| b.dim() == 4));
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate_subject(&PamapConfig::default(), &mut seeded_rng(35));
        let b = generate_subject(&PamapConfig::default(), &mut seeded_rng(35));
        assert_eq!(a.data.bags, b.data.bags);
        assert_eq!(a.activity_ids, b.activity_ids);
    }

    #[test]
    fn all_twelve_activities_have_ids() {
        let acts = [
            Activity::Lying,
            Activity::Sitting,
            Activity::Standing,
            Activity::Ironing,
            Activity::VacuumCleaning,
            Activity::AscendingStairs,
            Activity::DescendingStairs,
            Activity::Walking,
            Activity::NordicWalking,
            Activity::Cycling,
            Activity::Running,
            Activity::RopeJumping,
        ];
        let mut ids: Vec<usize> = acts.iter().map(|a| a.id()).collect();
        ids.sort_unstable();
        assert_eq!(ids, (1..=12).collect::<Vec<_>>());
    }
}
