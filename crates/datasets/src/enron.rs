//! Event-driven e-mail network simulator — the Enron stand-in (§5.4,
//! Fig. 11).
//!
//! The real Enron corpus is not available offline; this module simulates
//! a company e-mail network with the same structure the experiment
//! needs: weekly sender × receiver bipartite graphs whose node sets vary
//! week to week, with scripted corporate events perturbing traffic
//! volume, cross-department structure, and the workforce itself at known
//! weeks. The event list mirrors the critical Enron events of Fig. 11
//! (CEO changes, stock collapse, SEC inquiry, bankruptcy + layoffs,
//! criminal investigation, …) mapped onto a 100-week timeline starting
//! 2000-07-03.

use crate::LabeledGraphs;
use bipartite::BipartiteGraph;
use rand::Rng;
use stats::Poisson;

/// How an event perturbs the network during its active weeks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventEffect {
    /// Company-wide e-mail volume multiplies by this factor (panic,
    /// announcements).
    TrafficSurge(f64),
    /// This fraction of cross-department pairs gain elevated traffic
    /// (investigations, reorganizations dissolve the community
    /// structure).
    CrossDepartment(f64),
    /// This fraction of employees leave permanently (layoffs,
    /// resignations at scale).
    MassDeparture(f64),
    /// Leadership change: broadcast-style traffic from a small set of
    /// senders to everyone, multiplying their out-rate by the factor.
    Broadcast(f64),
}

/// A scripted corporate event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Week index (0 = first simulated week).
    pub week: usize,
    /// Duration in weeks.
    pub duration: usize,
    /// Label shown in reports (mirrors the Fig. 11 table).
    pub label: &'static str,
    /// The perturbation.
    pub effect: EventEffect,
}

/// The default event script: the Fig. 11 critical-event table mapped to
/// week offsets from 2000-07-03.
pub fn default_events() -> Vec<Event> {
    // Effect sizes are calibrated so the detector's qualitative behaviour
    // matches Fig. 11 (most events detected by at least one feature):
    // the real events were existential for the company, so multi-fold
    // traffic changes are faithful.
    vec![
        Event {
            week: 31,
            duration: 3,
            label: "new CEO takes over",
            effect: EventEffect::Broadcast(15.0),
        },
        Event {
            week: 46,
            duration: 2,
            label: "energy plan legislation",
            effect: EventEffect::TrafficSurge(2.2),
        },
        Event {
            week: 48,
            duration: 3,
            label: "stock dives",
            effect: EventEffect::TrafficSurge(3.5),
        },
        Event {
            week: 58,
            duration: 3,
            label: "CEO resigns, founder returns",
            effect: EventEffect::Broadcast(18.0),
        },
        Event {
            week: 62,
            duration: 2,
            label: "September 11",
            effect: EventEffect::TrafficSurge(0.3),
        },
        Event {
            week: 67,
            duration: 2,
            label: "Q3 loss reported",
            effect: EventEffect::TrafficSurge(3.0),
        },
        Event {
            week: 68,
            duration: 4,
            label: "SEC inquiry",
            effect: EventEffect::CrossDepartment(0.6),
        },
        Event {
            week: 72,
            duration: 2,
            label: "earnings restated",
            effect: EventEffect::TrafficSurge(3.2),
        },
        Event {
            week: 73,
            duration: 2,
            label: "merger collapses",
            effect: EventEffect::TrafficSurge(4.5),
        },
        Event {
            week: 74,
            duration: 3,
            label: "bankruptcy + layoffs",
            effect: EventEffect::MassDeparture(0.35),
        },
        Event {
            week: 79,
            duration: 3,
            label: "criminal investigation",
            effect: EventEffect::CrossDepartment(0.7),
        },
        Event {
            week: 81,
            duration: 2,
            label: "chairman resigns",
            effect: EventEffect::Broadcast(12.0),
        },
        Event {
            week: 82,
            duration: 2,
            label: "new CEO named",
            effect: EventEffect::Broadcast(12.0),
        },
        Event {
            week: 83,
            duration: 2,
            label: "founder quits board",
            effect: EventEffect::TrafficSurge(2.5),
        },
        Event {
            week: 92,
            duration: 2,
            label: "auditor pleads guilty",
            effect: EventEffect::TrafficSurge(2.8),
        },
        Event {
            week: 95,
            duration: 2,
            label: "reform bill passes",
            effect: EventEffect::TrafficSurge(2.0),
        },
    ]
}

/// Configuration of the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct EnronConfig {
    /// Number of simulated weeks (paper window: ~100 weeks).
    pub weeks: usize,
    /// Workforce size at t = 0.
    pub employees: usize,
    /// Number of departments.
    pub departments: usize,
    /// Mean e-mails per active employee per week.
    pub mean_emails: f64,
    /// Probability an employee participates (sends anything) in a week.
    pub participation: f64,
    /// Probability a given e-mail crosses departments at baseline.
    pub cross_dept_prob: f64,
    /// The event script.
    pub events: Vec<Event>,
}

impl Default for EnronConfig {
    fn default() -> Self {
        EnronConfig {
            weeks: 100,
            employees: 180,
            departments: 6,
            mean_emails: 14.0,
            participation: 0.72,
            cross_dept_prob: 0.15,
            events: default_events(),
        }
    }
}

/// Output of the simulator.
#[derive(Debug, Clone)]
pub struct EnronCorpus {
    /// Weekly graphs with event weeks as ground truth.
    pub data: LabeledGraphs,
    /// The events that occurred inside the simulated window.
    pub events: Vec<Event>,
    /// Weekly adjacency over the *fixed* employee universe (sender ×
    /// receiver presence), for comparators like GraphScope that require
    /// a constant node set. Same length as `data.graphs`.
    pub raw_adjacency: Vec<bipartite::DenseAdjacency>,
}

/// Simulate the corpus.
///
/// # Panics
/// Panics on degenerate configuration (no employees / departments /
/// weeks).
pub fn generate(cfg: &EnronConfig, rng: &mut impl Rng) -> EnronCorpus {
    assert!(
        cfg.weeks > 0 && cfg.employees > 1 && cfg.departments > 0,
        "enron: degenerate config"
    );
    let mut employed: Vec<bool> = vec![true; cfg.employees];
    let dept: Vec<usize> = (0..cfg.employees).map(|e| e % cfg.departments).collect();
    // A fixed small leadership set used by Broadcast events.
    let leaders: Vec<usize> = (0..cfg.employees.min(5)).collect();

    let mut graphs = Vec::with_capacity(cfg.weeks);
    let mut raw_adjacency = Vec::with_capacity(cfg.weeks);
    for week in 0..cfg.weeks {
        // Active effects this week.
        let mut surge = 1.0f64;
        let mut cross_boost = 0.0f64;
        let mut broadcast = 1.0f64;
        for ev in &cfg.events {
            if week >= ev.week && week < ev.week + ev.duration {
                match ev.effect {
                    EventEffect::TrafficSurge(f) => surge *= f,
                    EventEffect::CrossDepartment(f) => cross_boost = cross_boost.max(f),
                    EventEffect::Broadcast(f) => broadcast = broadcast.max(f),
                    EventEffect::MassDeparture(frac) => {
                        // Apply departures exactly once, on the first
                        // active week.
                        if week == ev.week {
                            let mut to_cut =
                                (frac * employed.iter().filter(|&&e| e).count() as f64) as usize;
                            let mut idx = 0;
                            while to_cut > 0 && idx < cfg.employees {
                                let e = rng.gen_range(0..cfg.employees);
                                if employed[e] && !leaders.contains(&e) {
                                    employed[e] = false;
                                    to_cut -= 1;
                                }
                                idx += 1;
                            }
                        }
                    }
                }
            }
        }

        // Generate this week's e-mails.
        let mut weights: std::collections::HashMap<(usize, usize), u64> =
            std::collections::HashMap::new();
        let cross_p = (cfg.cross_dept_prob + cross_boost).min(0.95);
        for sender in 0..cfg.employees {
            if !employed[sender] || rng.gen::<f64>() > cfg.participation {
                continue;
            }
            let mut rate = cfg.mean_emails * surge;
            if broadcast > 1.0 && leaders.contains(&sender) {
                rate *= broadcast;
            }
            let n_mails = Poisson::new(rate).sample(rng);
            for _ in 0..n_mails {
                let receiver = pick_receiver(sender, &dept, &employed, cross_p, cfg, rng);
                if let Some(r) = receiver {
                    *weights.entry((sender, r)).or_insert(0) += 1;
                }
            }
        }

        let mut adj = bipartite::DenseAdjacency::new(cfg.employees, cfg.employees);
        for &(s, r) in weights.keys() {
            adj.set(s, r);
        }
        raw_adjacency.push(adj);
        graphs.push(compact_graph(&weights, cfg.employees));
    }

    let events: Vec<Event> = cfg
        .events
        .iter()
        .filter(|e| e.week < cfg.weeks)
        .cloned()
        .collect();
    let change_points = events.iter().map(|e| e.week).collect();
    EnronCorpus {
        data: LabeledGraphs {
            graphs,
            change_points,
            name: "enron-synthetic".into(),
        },
        events,
        raw_adjacency,
    }
}

/// Choose a receiver for one e-mail: within-department by default,
/// anywhere with probability `cross_p`. Returns `None` if no candidate
/// exists.
fn pick_receiver(
    sender: usize,
    dept: &[usize],
    employed: &[bool],
    cross_p: f64,
    cfg: &EnronConfig,
    rng: &mut impl Rng,
) -> Option<usize> {
    for _attempt in 0..16 {
        let r = rng.gen_range(0..cfg.employees);
        if r == sender || !employed[r] {
            continue;
        }
        let same = dept[r] == dept[sender];
        let want_cross = rng.gen::<f64>() < cross_p;
        if same != want_cross {
            return Some(r);
        }
    }
    None
}

/// Compact the week's sender/receiver sets into a bipartite graph whose
/// node indices cover only the employees active this week — different
/// weeks therefore have different node sets and counts, as in the real
/// corpus.
fn compact_graph(
    weights: &std::collections::HashMap<(usize, usize), u64>,
    employees: usize,
) -> BipartiteGraph {
    let mut src_map = vec![u32::MAX; employees];
    let mut dst_map = vec![u32::MAX; employees];
    let mut n_src = 0u32;
    let mut n_dst = 0u32;
    // Deterministic ordering of the map contents.
    let mut entries: Vec<(&(usize, usize), &u64)> = weights.iter().collect();
    entries.sort_by_key(|&(&(s, r), _)| (s, r));
    let mut edges = Vec::with_capacity(entries.len());
    for (&(s, r), &w) in entries {
        if src_map[s] == u32::MAX {
            src_map[s] = n_src;
            n_src += 1;
        }
        if dst_map[r] == u32::MAX {
            dst_map[r] = n_dst;
            n_dst += 1;
        }
        edges.push((src_map[s], dst_map[r], w as f64));
    }
    BipartiteGraph::new(n_src.max(1) as usize, n_dst.max(1) as usize, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats::seeded_rng;

    fn small_cfg() -> EnronConfig {
        EnronConfig {
            weeks: 80,
            employees: 60,
            mean_emails: 8.0,
            ..Default::default()
        }
    }

    #[test]
    fn weekly_graphs_have_varying_node_sets() {
        let corpus = generate(&small_cfg(), &mut seeded_rng(51));
        assert_eq!(corpus.data.graphs.len(), 80);
        let counts: Vec<usize> = corpus.data.graphs.iter().map(|g| g.num_sources()).collect();
        let distinct: std::collections::HashSet<usize> = counts.iter().copied().collect();
        assert!(
            distinct.len() > 5,
            "sender counts should vary week to week: {distinct:?}"
        );
    }

    #[test]
    fn traffic_surge_raises_total_weight() {
        let mut cfg = small_cfg();
        cfg.events = vec![Event {
            week: 40,
            duration: 3,
            label: "test surge",
            effect: EventEffect::TrafficSurge(3.0),
        }];
        let corpus = generate(&cfg, &mut seeded_rng(52));
        let avg = |r: std::ops::Range<usize>| {
            corpus.data.graphs[r.clone()]
                .iter()
                .map(|g| g.total_weight())
                .sum::<f64>()
                / r.len() as f64
        };
        let before = avg(30..40);
        let during = avg(40..43);
        assert!(
            during > 2.0 * before,
            "surge weeks {during} vs baseline {before}"
        );
    }

    #[test]
    fn mass_departure_shrinks_workforce_permanently() {
        let mut cfg = small_cfg();
        cfg.events = vec![Event {
            week: 30,
            duration: 1,
            label: "test layoffs",
            effect: EventEffect::MassDeparture(0.4),
        }];
        let corpus = generate(&cfg, &mut seeded_rng(53));
        let avg_senders = |r: std::ops::Range<usize>| {
            corpus.data.graphs[r.clone()]
                .iter()
                .map(|g| g.num_sources() as f64)
                .sum::<f64>()
                / r.len() as f64
        };
        let before = avg_senders(15..30);
        let after = avg_senders(35..60);
        assert!(
            after < 0.75 * before,
            "workforce should shrink: {before} -> {after}"
        );
    }

    #[test]
    fn cross_department_event_changes_structure() {
        let mut cfg = small_cfg();
        cfg.events = vec![Event {
            week: 40,
            duration: 4,
            label: "test investigation",
            effect: EventEffect::CrossDepartment(0.6),
        }];
        let corpus = generate(&cfg, &mut seeded_rng(54));
        // More cross-department mixing -> receivers have more distinct
        // senders on average (their in-degree rises).
        let avg_deg = |r: std::ops::Range<usize>| {
            corpus.data.graphs[r.clone()]
                .iter()
                .map(|g| {
                    (0..g.num_dests())
                        .map(|d| g.dest_degree(d) as f64)
                        .sum::<f64>()
                        / g.num_dests() as f64
                })
                .sum::<f64>()
                / r.len() as f64
        };
        let before = avg_deg(30..40);
        let during = avg_deg(40..44);
        assert!(
            during > before,
            "cross-dept event should raise in-degree: {before} -> {during}"
        );
    }

    #[test]
    fn ground_truth_lists_only_in_window_events() {
        let corpus = generate(&EnronConfig::default(), &mut seeded_rng(55));
        assert!(!corpus.events.is_empty());
        assert!(corpus.events.iter().all(|e| e.week < 100));
        assert_eq!(
            corpus.data.change_points,
            corpus.events.iter().map(|e| e.week).collect::<Vec<_>>()
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&small_cfg(), &mut seeded_rng(56));
        let b = generate(&small_cfg(), &mut seeded_rng(56));
        assert_eq!(a.data.graphs, b.data.graphs);
    }
}
