//! The five synthetic datasets of §5.1 (Fig. 6), verbatim.
//!
//! Twenty bags of 2-D Gaussians, bag sizes `n_t ~ Poisson(50)`,
//! `τ = τ' = 5`:
//!
//! 1. large-variance noise, no change (`μ = 0, Σ = 15 I`);
//! 2. 80% standard normal + 20% wide-noise contamination, no change;
//! 3. mean moving slowly on a circle (gradual drift, no *significant*
//!    change);
//! 4. mean jumps from (3, 0) to (-3, 0) at t = 10 (0-indexed) — the one
//!    true change point;
//! 5. the mean's angular speed increases at t = 10 (a subtle change the
//!    paper's method does *not* alert on — by design).

use crate::LabeledBags;
use bagcpd::Bag;
use linalg::Matrix;
use rand::Rng;
use stats::{MultivariateNormal, Poisson};

/// Identifier of the five §5.1 datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Synth5 {
    /// Dataset 1: stationary, large variance.
    LargeVariance,
    /// Dataset 2: stationary with 20% contamination noise.
    Contaminated,
    /// Dataset 3: slowly rotating mean (gradual drift).
    CircularDrift,
    /// Dataset 4: mean jump at t = 10.
    MeanJump,
    /// Dataset 5: angular speed-up at t = 10.
    SpeedChange,
}

impl Synth5 {
    /// All five, in paper order.
    pub const ALL: [Synth5; 5] = [
        Synth5::LargeVariance,
        Synth5::Contaminated,
        Synth5::CircularDrift,
        Synth5::MeanJump,
        Synth5::SpeedChange,
    ];

    /// Paper's dataset number (1–5).
    pub fn number(&self) -> usize {
        match self {
            Synth5::LargeVariance => 1,
            Synth5::Contaminated => 2,
            Synth5::CircularDrift => 3,
            Synth5::MeanJump => 4,
            Synth5::SpeedChange => 5,
        }
    }

    /// Ground-truth significant change points (0-indexed bag numbers).
    /// Only Dataset 4 has one; the paper treats Dataset 5's speed-up as a
    /// change its method legitimately misses, and 1–3 as changeless.
    pub fn change_points(&self) -> Vec<usize> {
        match self {
            Synth5::MeanJump | Synth5::SpeedChange => vec![10],
            _ => vec![],
        }
    }
}

/// Number of bags per dataset (paper: 20).
pub const NUM_BAGS: usize = 20;

/// Mean bag size (paper: Poisson with λ = 50).
pub const MEAN_BAG_SIZE: f64 = 50.0;

/// Generate one of the five datasets.
pub fn generate(which: Synth5, rng: &mut impl Rng) -> LabeledBags {
    let sizes = Poisson::new(MEAN_BAG_SIZE);
    let mut bags = Vec::with_capacity(NUM_BAGS);
    for t in 0..NUM_BAGS {
        let n = sizes.sample(rng).max(2) as usize;
        let bag = match which {
            Synth5::LargeVariance => {
                let d = MultivariateNormal::isotropic(vec![0.0, 0.0], 15.0);
                Bag::new(d.sample_n(n, rng))
            }
            Synth5::Contaminated => {
                // ~80% standard normal; remaining 20% drawn around a
                // noise center itself drawn from N(0, 20 I), Σ = 5 I.
                let clean = MultivariateNormal::isotropic(vec![0.0, 0.0], 1.0);
                let n_clean = (0.8 * n as f64).floor() as usize;
                let mut pts = clean.sample_n(n_clean, rng);
                let center_dist = MultivariateNormal::isotropic(vec![0.0, 0.0], 20.0);
                for _ in n_clean..n {
                    let center = center_dist.sample(rng);
                    let noise = MultivariateNormal::new(center, &Matrix::identity(2).scaled(5.0));
                    pts.push(noise.sample(rng));
                }
                Bag::new(pts)
            }
            Synth5::CircularDrift => {
                let mu = circle_mean(t, 3.0f64.sqrt());
                let d = MultivariateNormal::isotropic(mu, 1.0);
                Bag::new(d.sample_n(n, rng))
            }
            Synth5::MeanJump => {
                let mu = if t < 10 {
                    vec![3.0, 0.0]
                } else {
                    vec![-3.0, 0.0]
                };
                let d = MultivariateNormal::isotropic(mu, 1.0);
                Bag::new(d.sample_n(n, rng))
            }
            Synth5::SpeedChange => {
                // Radius sqrt(3) while slow (t < 10), 3 while fast —
                // Eq. in §5.1 scales the whole mean vector by β.
                let beta = if t < 10 { 3.0f64.sqrt() } else { 3.0 };
                let mu = circle_mean(t, beta);
                let d = MultivariateNormal::isotropic(mu, 1.0);
                Bag::new(d.sample_n(n, rng))
            }
        };
        bags.push(bag);
    }
    LabeledBags {
        bags,
        change_points: which.change_points(),
        name: format!("synthetic5-dataset{}", which.number()),
    }
}

/// The circular mean path of Datasets 3 and 5:
/// `β (cos(π(t-0.5)/5), sin(π(t-0.5)/5))` with 1-indexed t.
fn circle_mean(t0: usize, beta: f64) -> Vec<f64> {
    let t = (t0 + 1) as f64; // paper's t runs 1..=20
    let phase = std::f64::consts::PI * (t - 0.5) / 5.0;
    vec![beta * phase.cos(), beta * phase.sin()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats::seeded_rng;

    #[test]
    fn all_datasets_have_twenty_bags_of_2d() {
        for which in Synth5::ALL {
            let data = generate(which, &mut seeded_rng(10 + which.number() as u64));
            assert_eq!(data.bags.len(), 20, "{:?}", which);
            assert!(data.bags.iter().all(|b| b.dim() == 2));
            let mean_n: f64 = data.bags.iter().map(|b| b.len() as f64).sum::<f64>() / 20.0;
            assert!(
                (mean_n - 50.0).abs() < 12.0,
                "{:?} mean size {mean_n}",
                which
            );
        }
    }

    #[test]
    fn dataset4_jump_is_visible_in_means() {
        let data = generate(Synth5::MeanJump, &mut seeded_rng(20));
        let m_before: f64 = data.bags[..10].iter().map(|b| b.mean()[0]).sum::<f64>() / 10.0;
        let m_after: f64 = data.bags[10..].iter().map(|b| b.mean()[0]).sum::<f64>() / 10.0;
        assert!(m_before > 2.5, "pre-jump mean {m_before}");
        assert!(m_after < -2.5, "post-jump mean {m_after}");
        assert_eq!(data.change_points, vec![10]);
    }

    #[test]
    fn dataset1_is_wide_and_centered() {
        let data = generate(Synth5::LargeVariance, &mut seeded_rng(21));
        let all: Vec<f64> = data
            .bags
            .iter()
            .flat_map(|b| b.points().iter().map(|p| p[0]))
            .collect();
        let m = all.iter().sum::<f64>() / all.len() as f64;
        let v = all.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / all.len() as f64;
        assert!(m.abs() < 0.5);
        assert!((v - 15.0).abs() < 2.0, "variance {v}");
        assert!(data.change_points.is_empty());
    }

    #[test]
    fn dataset2_contamination_fraction() {
        let data = generate(Synth5::Contaminated, &mut seeded_rng(22));
        // Points beyond 4 sigma of the clean component are contamination.
        let all: usize = data.bags.iter().map(|b| b.len()).sum();
        let far: usize = data
            .bags
            .iter()
            .flat_map(|b| b.points())
            .filter(|p| (p[0] * p[0] + p[1] * p[1]).sqrt() > 4.0)
            .count();
        let frac = far as f64 / all as f64;
        assert!(frac > 0.05 && frac < 0.25, "outlier fraction {frac}");
    }

    #[test]
    fn dataset3_drifts_continuously() {
        let data = generate(Synth5::CircularDrift, &mut seeded_rng(23));
        // Consecutive bag means move by a bounded step; distant bags can
        // be far apart. Radius stays near sqrt(3).
        for b in &data.bags {
            let m = b.mean();
            let r = (m[0] * m[0] + m[1] * m[1]).sqrt();
            assert!((r - 3.0f64.sqrt()).abs() < 0.8, "radius {r}");
        }
    }

    #[test]
    fn dataset5_speed_and_radius_change() {
        let data = generate(Synth5::SpeedChange, &mut seeded_rng(24));
        let r = |b: &Bag| {
            let m = b.mean();
            (m[0] * m[0] + m[1] * m[1]).sqrt()
        };
        let r_before: f64 = data.bags[..10].iter().map(r).sum::<f64>() / 10.0;
        let r_after: f64 = data.bags[10..].iter().map(r).sum::<f64>() / 10.0;
        assert!((r_before - 3.0f64.sqrt()).abs() < 0.5);
        assert!((r_after - 3.0).abs() < 0.5);
    }
}
