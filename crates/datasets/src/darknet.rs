//! Darknet traffic simulator.
//!
//! §6 of the paper notes: "we have used this method to detect cyber
//! attacks in a darknet, and it has performed very well." No darknet
//! trace ships with the paper, so this module simulates one: a network
//! telescope records unsolicited packets; each hour's packets form a
//! bag of per-packet feature vectors `(log2 destination port,
//! normalized packet size)`. Attack campaigns perturb the joint
//! distribution at known hours:
//!
//! - **PortScan** — a scanner sweeps the port space: port mass spreads
//!   to the uniform background and sizes collapse to minimal SYN-probe
//!   packets;
//! - **WormOutbreak** — one service port abruptly dominates;
//! - **DdosBackscatter** — response packets from a victim: a single
//!   source port reflected as concentrated high-port traffic with
//!   characteristic sizes.
//!
//! The traffic *volume* is kept roughly constant across regimes, so a
//! packets-per-hour counter sees nothing: the change is in the shape of
//! the distribution, exactly the regime where bags-of-data wins.

use crate::LabeledBags;
use bagcpd::Bag;
use rand::Rng;
use stats::{Categorical, Normal, Poisson};

/// Kind of simulated attack campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attack {
    /// Sequential/uniform port sweep with tiny probe packets.
    PortScan,
    /// Exploit traffic concentrating on one service port.
    WormOutbreak,
    /// Backscatter from a spoofed-source flood at a victim.
    DdosBackscatter,
}

/// One scripted campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Campaign {
    /// First hour of the campaign.
    pub start: usize,
    /// Duration in hours.
    pub duration: usize,
    /// Attack kind.
    pub kind: Attack,
}

/// Configuration of the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct DarknetConfig {
    /// Number of simulated hours.
    pub hours: usize,
    /// Mean packets per hour (volume is regime-independent by design).
    pub mean_packets: f64,
    /// Scripted campaigns.
    pub campaigns: Vec<Campaign>,
}

impl Default for DarknetConfig {
    fn default() -> Self {
        DarknetConfig {
            hours: 96,
            mean_packets: 400.0,
            campaigns: vec![
                Campaign {
                    start: 24,
                    duration: 6,
                    kind: Attack::PortScan,
                },
                Campaign {
                    start: 48,
                    duration: 8,
                    kind: Attack::WormOutbreak,
                },
                Campaign {
                    start: 72,
                    duration: 6,
                    kind: Attack::DdosBackscatter,
                },
            ],
        }
    }
}

/// Generate the labeled hourly bags.
///
/// # Panics
/// Panics on a degenerate configuration.
pub fn generate(cfg: &DarknetConfig, rng: &mut impl Rng) -> LabeledBags {
    assert!(
        cfg.hours > 0 && cfg.mean_packets > 0.0,
        "darknet: degenerate config"
    );
    let volume = Poisson::new(cfg.mean_packets);
    let mut bags = Vec::with_capacity(cfg.hours);
    for hour in 0..cfg.hours {
        let attack = cfg
            .campaigns
            .iter()
            .find(|c| hour >= c.start && hour < c.start + c.duration)
            .map(|c| c.kind);
        let n = volume.sample(rng).max(20) as usize;
        let points: Vec<Vec<f64>> = (0..n).map(|_| sample_packet(attack, rng)).collect();
        bags.push(Bag::new(points));
    }
    let mut change_points: Vec<usize> = cfg
        .campaigns
        .iter()
        .flat_map(|c| [c.start, c.start + c.duration])
        .filter(|&t| t < cfg.hours)
        .collect();
    change_points.sort_unstable();
    change_points.dedup();
    LabeledBags {
        bags,
        change_points,
        name: "darknet-synthetic".into(),
    }
}

/// One packet's feature vector under the active regime.
fn sample_packet(attack: Option<Attack>, rng: &mut impl Rng) -> Vec<f64> {
    // Background: mixture of scanning noise toward common service ports
    // plus uniform junk; sizes bimodal (small probes / MTU-ish).
    const SERVICE_PORTS: [f64; 6] = [22.0, 23.0, 80.0, 443.0, 445.0, 3389.0];
    match attack {
        None => {
            let pick = Categorical::new(&[0.6, 0.4]).sample(rng);
            let port = if pick == 0 {
                SERVICE_PORTS[rng.gen_range(0..SERVICE_PORTS.len())]
            } else {
                rng.gen_range(1.0..65535.0)
            };
            let size = if rng.gen::<f64>() < 0.7 {
                Normal::new(60.0, 8.0).sample(rng)
            } else {
                Normal::new(1200.0, 150.0).sample(rng)
            };
            packet(port, size)
        }
        Some(Attack::PortScan) => {
            // Uniform sweep, minimal probes.
            let port = rng.gen_range(1.0..65535.0);
            let size = Normal::new(44.0, 2.0).sample(rng);
            packet(port, size)
        }
        Some(Attack::WormOutbreak) => {
            // 85% of packets hit the exploited service.
            let port = if rng.gen::<f64>() < 0.85 {
                445.0
            } else {
                rng.gen_range(1.0..65535.0)
            };
            let size = Normal::new(380.0, 30.0).sample(rng);
            packet(port, size)
        }
        Some(Attack::DdosBackscatter) => {
            // Reflected responses: ephemeral high ports, SYN-ACK sizes.
            let port = rng.gen_range(32768.0..61000.0);
            let size = Normal::new(58.0, 4.0).sample(rng);
            packet(port, size)
        }
    }
}

fn packet(port: f64, size: f64) -> Vec<f64> {
    vec![port.max(1.0).log2(), (size.clamp(40.0, 1500.0)) / 1500.0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use stats::seeded_rng;

    #[test]
    fn structure_and_labels() {
        let data = generate(&DarknetConfig::default(), &mut seeded_rng(61));
        assert_eq!(data.bags.len(), 96);
        assert_eq!(data.change_points, vec![24, 30, 48, 56, 72, 78]);
        assert!(data.bags.iter().all(|b| b.dim() == 2));
    }

    #[test]
    fn volume_is_regime_independent() {
        // The attacks must not be detectable from packet counts alone.
        let data = generate(&DarknetConfig::default(), &mut seeded_rng(62));
        let mean_of = |r: std::ops::Range<usize>| {
            data.bags[r.clone()]
                .iter()
                .map(|b| b.len() as f64)
                .sum::<f64>()
                / r.len() as f64
        };
        let normal = mean_of(0..24);
        let scan = mean_of(24..30);
        assert!(
            (normal - scan).abs() < 0.15 * normal,
            "volume shift {normal} -> {scan} would leak the attack"
        );
    }

    #[test]
    fn port_scan_flattens_port_distribution() {
        let data = generate(&DarknetConfig::default(), &mut seeded_rng(63));
        // Fraction of packets at the six service ports: high in
        // background, low during the scan.
        let service_frac = |r: std::ops::Range<usize>| {
            let mut hits = 0usize;
            let mut total = 0usize;
            for b in &data.bags[r] {
                for p in b.points() {
                    total += 1;
                    let port = 2f64.powf(p[0]);
                    if [22.0, 23.0, 80.0, 443.0, 445.0, 3389.0]
                        .iter()
                        .any(|&s| (port - s).abs() < 0.5)
                    {
                        hits += 1;
                    }
                }
            }
            hits as f64 / total as f64
        };
        assert!(service_frac(0..24) > 0.4);
        assert!(service_frac(24..30) < 0.05);
    }

    #[test]
    fn worm_concentrates_on_port_445() {
        let data = generate(&DarknetConfig::default(), &mut seeded_rng(64));
        let frac_445 = |r: std::ops::Range<usize>| {
            let mut hits = 0usize;
            let mut total = 0usize;
            for b in &data.bags[r] {
                for p in b.points() {
                    total += 1;
                    if (2f64.powf(p[0]) - 445.0).abs() < 0.5 {
                        hits += 1;
                    }
                }
            }
            hits as f64 / total as f64
        };
        assert!(frac_445(48..56) > 0.7, "worm hours {}", frac_445(48..56));
        assert!(frac_445(10..20) < 0.2);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = generate(&DarknetConfig::default(), &mut seeded_rng(65));
        let b = generate(&DarknetConfig::default(), &mut seeded_rng(65));
        assert_eq!(a.bags, b.bags);
    }
}
