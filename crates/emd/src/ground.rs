//! Ground distances `d_kl` for the transportation problem.
//!
//! The paper leaves the ground distance "arbitrarily given"; Euclidean is
//! the conventional choice (and what makes EMD the Wasserstein-1/Mallows
//! distance per Levina & Bickel). Manhattan and Chebyshev are provided as
//! alternatives; anything implementing [`GroundDistance`] works.

/// Dissimilarity between two cluster representatives.
pub trait GroundDistance {
    /// Distance between points `a` and `b` (same dimension).
    fn distance(&self, a: &[f64], b: &[f64]) -> f64;
}

/// Euclidean (L2) ground distance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Euclidean;

impl GroundDistance for Euclidean {
    #[inline]
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }
}

/// Manhattan (L1) ground distance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Manhattan;

impl GroundDistance for Manhattan {
    #[inline]
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
    }
}

/// Chebyshev (L∞) ground distance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Chebyshev;

impl GroundDistance for Chebyshev {
    #[inline]
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }
}

/// Diagonally weighted Euclidean distance
/// `d(x, y) = sqrt(Σ_c w_c² (x_c - y_c)²)`.
///
/// The natural partner of learned per-dimension feature weights (the
/// §6 future-work extension): scaling coordinates by `w` before the
/// plain Euclidean metric equals using this ground distance on the raw
/// coordinates.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedEuclidean {
    weights: Vec<f64>,
}

impl WeightedEuclidean {
    /// Construct from per-dimension weights.
    ///
    /// # Panics
    /// Panics on empty, negative, or non-finite weights.
    pub fn new(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "WeightedEuclidean: empty weights");
        assert!(
            weights.iter().all(|&w| w.is_finite() && w >= 0.0),
            "WeightedEuclidean: weights must be finite and >= 0"
        );
        WeightedEuclidean { weights }
    }

    /// The weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl GroundDistance for WeightedEuclidean {
    #[inline]
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        debug_assert_eq!(a.len(), self.weights.len(), "weight dimension mismatch");
        a.iter()
            .zip(b)
            .zip(&self.weights)
            .map(|((x, y), w)| {
                let d = w * (x - y);
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }
}

/// Blanket impl so `&G` works wherever `G` does.
impl<G: GroundDistance + ?Sized> GroundDistance for &G {
    #[inline]
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        (**self).distance(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: [f64; 3] = [1.0, 2.0, 3.0];
    const B: [f64; 3] = [4.0, 6.0, 3.0];

    #[test]
    fn euclidean_345() {
        assert!((Euclidean.distance(&A, &B) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan_sums_abs() {
        assert!((Manhattan.distance(&A, &B) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn chebyshev_takes_max() {
        assert!((Chebyshev.distance(&A, &B) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn all_metrics_zero_on_identical() {
        assert_eq!(Euclidean.distance(&A, &A), 0.0);
        assert_eq!(Manhattan.distance(&A, &A), 0.0);
        assert_eq!(Chebyshev.distance(&A, &A), 0.0);
    }

    #[test]
    fn metric_ordering() {
        // Chebyshev <= Euclidean <= Manhattan always.
        let c = Chebyshev.distance(&A, &B);
        let e = Euclidean.distance(&A, &B);
        let m = Manhattan.distance(&A, &B);
        assert!(c <= e + 1e-12);
        assert!(e <= m + 1e-12);
    }

    #[test]
    fn reference_impl_works() {
        let g = &Euclidean;
        assert!((GroundDistance::distance(&g, &A, &B) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_euclidean_unit_weights_match_plain() {
        let w = WeightedEuclidean::new(vec![1.0; 3]);
        assert!((w.distance(&A, &B) - Euclidean.distance(&A, &B)).abs() < 1e-12);
    }

    #[test]
    fn weighted_euclidean_zero_weight_ignores_dimension() {
        let w = WeightedEuclidean::new(vec![0.0, 1.0, 1.0]);
        // First coordinate (diff 3) ignored: sqrt(4^2 + 0^2) = 4.
        assert!((w.distance(&A, &B) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_euclidean_scaling_equivalence() {
        // Weighted metric on raw coords == plain metric on scaled coords.
        let weights = [2.0, 0.5, 3.0];
        let w = WeightedEuclidean::new(weights.to_vec());
        let scale =
            |p: &[f64]| -> Vec<f64> { p.iter().zip(&weights).map(|(x, s)| x * s).collect() };
        let d1 = w.distance(&A, &B);
        let d2 = Euclidean.distance(&scale(&A), &scale(&B));
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "finite and >= 0")]
    fn weighted_euclidean_rejects_negative() {
        WeightedEuclidean::new(vec![-1.0]);
    }
}
