//! Error type for EMD computation.

/// Failure modes of the EMD solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EmdError {
    /// Signature construction rejected the input.
    InvalidSignature(&'static str),
    /// The two signatures embed points of different dimension.
    DimensionMismatch {
        /// Dimension of the left signature.
        left: usize,
        /// Dimension of the right signature.
        right: usize,
    },
    /// At least one signature carries no mass, so Eq. (12) is undefined.
    ZeroMass,
    /// The transportation simplex hit its iteration cap. With the
    /// anti-cycling rule in place this indicates pathological input
    /// (NaN/infinite costs).
    DidNotConverge,
    /// A cost, supply or demand was NaN or infinite.
    NonFiniteInput,
}

impl std::fmt::Display for EmdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmdError::InvalidSignature(msg) => write!(f, "invalid signature: {msg}"),
            EmdError::DimensionMismatch { left, right } => {
                write!(f, "signature dimension mismatch: {left} vs {right}")
            }
            EmdError::ZeroMass => write!(f, "signature has zero total mass"),
            EmdError::DidNotConverge => write!(f, "transportation simplex did not converge"),
            EmdError::NonFiniteInput => write!(f, "non-finite cost, supply, or demand"),
        }
    }
}

impl std::error::Error for EmdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(EmdError::ZeroMass.to_string().contains("zero"));
        assert!(EmdError::DimensionMismatch { left: 1, right: 2 }
            .to_string()
            .contains("1 vs 2"));
        assert!(EmdError::InvalidSignature("bad")
            .to_string()
            .contains("bad"));
    }
}
