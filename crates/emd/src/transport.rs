//! Transportation-problem solver (Eqs. 7–11 of the paper).
//!
//! A from-scratch transportation simplex:
//!
//! 1. zero supplies/demands are filtered out;
//! 2. the unbalanced problem is balanced with a zero-cost slack node on
//!    the deficit side (the textbook reduction — slack flow is "not
//!    transported" mass, which Eq. 11 permits);
//! 3. an initial basic feasible solution comes from the northwest-corner
//!    rule (which yields exactly `m + n - 1` basic cells including
//!    degenerate zero-flow ones);
//! 4. MODI (u-v) optimality testing with stepping-stone pivots improves
//!    it to optimality. Entering variables are chosen by most-negative
//!    reduced cost, switching to Bland's smallest-index rule after a
//!    grace period so cycling under degeneracy is impossible.

use crate::error::EmdError;

/// An optimal transportation plan.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportPlan {
    flows: Vec<(usize, usize, f64)>,
    total_cost: f64,
    total_flow: f64,
}

impl TransportPlan {
    /// Non-zero flows `(supply index, demand index, amount)` between real
    /// (non-slack) nodes, in unspecified order.
    pub fn flows(&self) -> &[(usize, usize, f64)] {
        &self.flows
    }

    /// Total transported mass (equals `min(Σ supplies, Σ demands)`).
    pub fn total_flow(&self) -> f64 {
        self.total_flow
    }

    /// Total transport cost `Σ f_kl d_kl`.
    pub fn total_cost(&self) -> f64 {
        self.total_cost
    }
}

/// Internal basic cell of the simplex tableau.
#[derive(Debug, Clone, Copy)]
struct BasicCell {
    i: usize,
    j: usize,
    flow: f64,
}

/// Solve the (possibly unbalanced) transportation problem.
///
/// `costs` is row-major `supplies.len() x demands.len()`. Supplies and
/// demands must be non-negative and finite; costs must be finite.
///
/// # Errors
/// [`EmdError::NonFiniteInput`] for NaN/infinite input,
/// [`EmdError::ZeroMass`] if either side has zero total mass, and
/// [`EmdError::DidNotConverge`] if the iteration cap is hit.
pub fn solve_transportation(
    costs: &[f64],
    supplies: &[f64],
    demands: &[f64],
) -> Result<TransportPlan, EmdError> {
    let m0 = supplies.len();
    let n0 = demands.len();
    assert_eq!(
        costs.len(),
        m0 * n0,
        "solve_transportation: cost matrix shape mismatch"
    );
    if supplies
        .iter()
        .chain(demands)
        .any(|x| !x.is_finite() || *x < 0.0)
        || costs.iter().any(|c| !c.is_finite())
    {
        return Err(EmdError::NonFiniteInput);
    }

    // Filter zero-mass rows/columns, remembering original indices.
    let rows: Vec<usize> = (0..m0).filter(|&i| supplies[i] > 0.0).collect();
    let cols: Vec<usize> = (0..n0).filter(|&j| demands[j] > 0.0).collect();
    if rows.is_empty() || cols.is_empty() {
        return Err(EmdError::ZeroMass);
    }

    let sa: f64 = rows.iter().map(|&i| supplies[i]).sum();
    let sb: f64 = cols.iter().map(|&j| demands[j]).sum();
    let diff = sa - sb;
    // Tolerance for treating the problem as balanced.
    let scale = sa.max(sb);
    let balanced = diff.abs() <= 1e-12 * scale;

    // Dimensions of the balanced tableau (possibly one slack row/col).
    let extra_col = !balanced && diff > 0.0;
    let extra_row = !balanced && diff < 0.0;
    let m = rows.len() + usize::from(extra_row);
    let n = cols.len() + usize::from(extra_col);

    // Balanced cost matrix and marginals. Slack cells cost zero.
    let mut c = vec![0.0; m * n];
    for (ri, &i) in rows.iter().enumerate() {
        for (cj, &j) in cols.iter().enumerate() {
            c[ri * n + cj] = costs[i * n0 + j];
        }
    }
    let mut a: Vec<f64> = rows.iter().map(|&i| supplies[i]).collect();
    let mut b: Vec<f64> = cols.iter().map(|&j| demands[j]).collect();
    if extra_col {
        b.push(diff);
    }
    if extra_row {
        a.push(-diff);
    }
    if balanced {
        // Snap the (tiny) imbalance onto the largest demand so row and
        // column sums agree exactly.
        let (jmax, _) = b
            .iter()
            .enumerate()
            .max_by(|x, y| x.1.partial_cmp(y.1).expect("finite"))
            .expect("non-empty");
        b[jmax] += diff;
    }

    let mut basis = northwest_corner(&a, &b);
    debug_assert_eq!(basis.len(), m + n - 1);

    let max_iters = (200 * (m + n) * (m + n)).max(2000);
    let bland_after = max_iters / 2;
    let cost_scale = c.iter().fold(1.0f64, |acc, &x| acc.max(x.abs()));
    let tol = 1e-10 * cost_scale;

    let mut is_basic = vec![false; m * n];
    for cell in &basis {
        is_basic[cell.i * n + cell.j] = true;
    }

    let mut u = vec![0.0; m];
    let mut v = vec![0.0; n];

    for iter in 0..max_iters {
        compute_potentials(&basis, &c, m, n, &mut u, &mut v);

        // Entering variable selection.
        let mut enter: Option<(usize, usize)> = None;
        let mut best = -tol;
        'scan: for i in 0..m {
            for j in 0..n {
                if is_basic[i * n + j] {
                    continue;
                }
                let r = c[i * n + j] - u[i] - v[j];
                if iter >= bland_after {
                    // Bland: first improving cell in index order.
                    if r < -tol {
                        enter = Some((i, j));
                        break 'scan;
                    }
                } else if r < best {
                    best = r;
                    enter = Some((i, j));
                }
            }
        }
        let Some((ei, ej)) = enter else {
            return Ok(extract_plan(
                &basis,
                &c,
                n,
                rows.len(),
                cols.len(),
                &rows,
                &cols,
            ));
        };

        // Unique cycle: path in the basis tree from col node ej to row
        // node ei, prepended with the entering cell.
        let path = tree_path(&basis, m, n, ej, ei);

        // Flow change theta: minimum flow among odd-position (donor)
        // cells of the cycle. Position 0 is the entering cell (+).
        let mut theta = f64::INFINITY;
        let mut leave_pos = usize::MAX;
        for (pos, &cell_idx) in path.iter().enumerate() {
            if pos % 2 == 0 {
                // positions 0,2,4.. in `path` are donors (see tree_path).
                let f = basis[cell_idx].flow;
                // Bland-compatible tie-break: smallest tableau index.
                if f < theta - 1e-15
                    || (f < theta + 1e-15
                        && leave_pos != usize::MAX
                        && tableau_index(&basis[cell_idx], n)
                            < tableau_index(&basis[path[leave_pos]], n))
                {
                    theta = f;
                    leave_pos = pos;
                }
            }
        }
        debug_assert!(leave_pos != usize::MAX, "cycle must contain a donor cell");
        let theta = theta.max(0.0);

        // Apply the pivot: donors lose theta, receivers gain theta.
        for (pos, &cell_idx) in path.iter().enumerate() {
            if pos % 2 == 0 {
                basis[cell_idx].flow -= theta;
            } else {
                basis[cell_idx].flow += theta;
            }
        }
        let leaving_idx = path[leave_pos];
        let leaving = basis[leaving_idx];
        is_basic[leaving.i * n + leaving.j] = false;
        is_basic[ei * n + ej] = true;
        basis[leaving_idx] = BasicCell {
            i: ei,
            j: ej,
            flow: theta,
        };
    }
    Err(EmdError::DidNotConverge)
}

#[inline]
fn tableau_index(cell: &BasicCell, n: usize) -> usize {
    cell.i * n + cell.j
}

/// Northwest-corner initial basic feasible solution: exactly
/// `m + n - 1` basic cells (some possibly zero-flow).
fn northwest_corner(a: &[f64], b: &[f64]) -> Vec<BasicCell> {
    let m = a.len();
    let n = b.len();
    let mut a = a.to_vec();
    let mut b = b.to_vec();
    let mut cells = Vec::with_capacity(m + n - 1);
    let (mut i, mut j) = (0usize, 0usize);
    loop {
        let f = a[i].min(b[j]).max(0.0);
        cells.push(BasicCell { i, j, flow: f });
        a[i] -= f;
        b[j] -= f;
        if i + 1 == m && j + 1 == n {
            break;
        }
        // Advance toward the exhausted side; at the borders only one
        // direction remains legal.
        if i + 1 < m && (j + 1 == n || a[i] <= b[j]) {
            i += 1;
        } else {
            j += 1;
        }
    }
    cells
}

/// Solve for the dual potentials over the basis spanning tree
/// (`u[0] = 0` is the normalization).
fn compute_potentials(
    basis: &[BasicCell],
    c: &[f64],
    m: usize,
    n: usize,
    u: &mut [f64],
    v: &mut [f64],
) {
    // Adjacency of the basis tree: node ids 0..m are rows, m..m+n cols.
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); m + n];
    for (idx, cell) in basis.iter().enumerate() {
        adj[cell.i].push(idx);
        adj[m + cell.j].push(idx);
    }
    let mut known_u = vec![false; m];
    let mut known_v = vec![false; n];
    u[0] = 0.0;
    known_u[0] = true;
    let mut queue = vec![0usize]; // node ids
    while let Some(node) = queue.pop() {
        for &idx in &adj[node] {
            let cell = &basis[idx];
            if node < m {
                // row node: propagate to the column.
                if !known_v[cell.j] {
                    v[cell.j] = c[cell.i * n + cell.j] - u[cell.i];
                    known_v[cell.j] = true;
                    queue.push(m + cell.j);
                }
            } else if !known_u[cell.i] {
                u[cell.i] = c[cell.i * n + cell.j] - v[cell.j];
                known_u[cell.i] = true;
                queue.push(cell.i);
            }
        }
    }
    debug_assert!(
        known_u.iter().all(|&k| k) && known_v.iter().all(|&k| k),
        "basis is not a spanning tree"
    );
}

/// Path (as basis-cell indices) in the basis tree from column node
/// `start_col` to row node `goal_row`.
///
/// The first edge on the path is incident to `start_col` and is a donor
/// (receives `-theta`): adding `+theta` at the entering cell `(goal_row,
/// start_col)` over-fills column `start_col`, so the basic edge leaving it
/// must shed flow. Donor/receiver then alternate along the path, so even
/// positions are donors.
fn tree_path(
    basis: &[BasicCell],
    m: usize,
    n: usize,
    start_col: usize,
    goal_row: usize,
) -> Vec<usize> {
    let num_nodes = m + n;
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); num_nodes];
    for (idx, cell) in basis.iter().enumerate() {
        adj[cell.i].push(idx);
        adj[m + cell.j].push(idx);
    }
    // BFS from col node to row node.
    let start = m + start_col;
    let goal = goal_row;
    let mut parent_edge: Vec<usize> = vec![usize::MAX; num_nodes];
    let mut parent_node: Vec<usize> = vec![usize::MAX; num_nodes];
    let mut visited = vec![false; num_nodes];
    visited[start] = true;
    let mut queue = std::collections::VecDeque::from([start]);
    while let Some(node) = queue.pop_front() {
        if node == goal {
            break;
        }
        for &idx in &adj[node] {
            let cell = &basis[idx];
            let other = if node < m { m + cell.j } else { cell.i };
            if !visited[other] {
                visited[other] = true;
                parent_edge[other] = idx;
                parent_node[other] = node;
                queue.push_back(other);
            }
        }
    }
    debug_assert!(visited[goal], "basis tree disconnected");
    // Walk back from goal to start; then reverse so the path starts at
    // the column side (first edge = donor adjacent to entering column).
    let mut path = Vec::new();
    let mut node = goal;
    while node != start {
        path.push(parent_edge[node]);
        node = parent_node[node];
    }
    path.reverse();
    path
}

/// Extract the plan on real (non-slack) nodes, mapping back to the
/// caller's original indices.
fn extract_plan(
    basis: &[BasicCell],
    c: &[f64],
    n: usize,
    real_rows: usize,
    real_cols: usize,
    row_map: &[usize],
    col_map: &[usize],
) -> TransportPlan {
    let mut flows = Vec::new();
    let mut total_cost = 0.0;
    let mut total_flow = 0.0;
    for cell in basis {
        if cell.flow <= 0.0 || cell.i >= real_rows || cell.j >= real_cols {
            continue;
        }
        total_cost += cell.flow * c[cell.i * n + cell.j];
        total_flow += cell.flow;
        flows.push((row_map[cell.i], col_map[cell.j], cell.flow));
    }
    TransportPlan {
        flows,
        total_cost,
        total_flow,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(costs: &[&[f64]], supplies: &[f64], demands: &[f64]) -> TransportPlan {
        let flat: Vec<f64> = costs.iter().flat_map(|r| r.iter().copied()).collect();
        solve_transportation(&flat, supplies, demands).unwrap()
    }

    #[test]
    fn textbook_balanced_3x3() {
        // Hitchcock-style instance with hand-verified optimum 1920
        // (basis s1->d1:70, s1->d3:50, s2->d2:70, s2->d3:10, s3->d1:80;
        // all reduced costs non-negative under u=(0,6,-5), v=(8,4,6)).
        // costs:      d1  d2  d3   supply
        //   s1         8   5   6     120
        //   s2        15  10  12      80
        //   s3         3   9  10      80
        // demand     150  70  60
        let plan = solve(
            &[&[8.0, 5.0, 6.0], &[15.0, 10.0, 12.0], &[3.0, 9.0, 10.0]],
            &[120.0, 80.0, 80.0],
            &[150.0, 70.0, 60.0],
        );
        assert!((plan.total_flow() - 280.0).abs() < 1e-9);
        assert!(
            (plan.total_cost() - 1920.0).abs() < 1e-9,
            "cost {}",
            plan.total_cost()
        );
    }

    #[test]
    fn trivial_1x1() {
        let plan = solve(&[&[7.0]], &[2.0], &[2.0]);
        assert_eq!(plan.flows(), &[(0, 0, 2.0)]);
        assert!((plan.total_cost() - 14.0).abs() < 1e-12);
    }

    #[test]
    fn single_row_distributes_to_all() {
        let plan = solve(&[&[1.0, 2.0, 3.0]], &[6.0], &[1.0, 2.0, 3.0]);
        assert!((plan.total_flow() - 6.0).abs() < 1e-12);
        assert!((plan.total_cost() - (1.0 + 4.0 + 9.0)).abs() < 1e-12);
    }

    #[test]
    fn single_col_collects_from_all() {
        let plan = solve(&[&[4.0], &[2.0]], &[1.0, 1.0], &[2.0]);
        assert!((plan.total_cost() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn unbalanced_excess_supply() {
        // Supply 10 vs demand 4: the cheap supplier should serve it all.
        let plan = solve(&[&[1.0], &[5.0]], &[4.0, 6.0], &[4.0]);
        assert!((plan.total_flow() - 4.0).abs() < 1e-12);
        assert!(
            (plan.total_cost() - 4.0).abs() < 1e-12,
            "cost {}",
            plan.total_cost()
        );
    }

    #[test]
    fn unbalanced_excess_demand() {
        let plan = solve(&[&[1.0, 5.0]], &[4.0], &[4.0, 6.0]);
        assert!((plan.total_flow() - 4.0).abs() < 1e-12);
        assert!((plan.total_cost() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_entries_filtered() {
        let plan = solve(
            &[&[9.0, 1.0], &[1.0, 9.0], &[5.0, 5.0]],
            &[1.0, 0.0, 1.0],
            &[1.0, 1.0],
        );
        // Row 1 has zero supply; optimal assigns row0->col1, row2->col0.
        assert!((plan.total_cost() - 6.0).abs() < 1e-12);
        assert!(plan.flows().iter().all(|&(i, _, _)| i != 1));
    }

    #[test]
    fn degenerate_equal_supplies_demands() {
        // Every supply equals every demand: heavily degenerate pivots.
        let plan = solve(
            &[&[1.0, 2.0, 3.0], &[2.0, 1.0, 2.0], &[3.0, 2.0, 1.0]],
            &[1.0, 1.0, 1.0],
            &[1.0, 1.0, 1.0],
        );
        assert!((plan.total_cost() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn flow_conservation_constraints() {
        let supplies = [3.0, 2.0, 5.0];
        let demands = [4.0, 6.0];
        let costs = [1.0, 4.0, 2.0, 1.0, 3.0, 2.0];
        let plan = solve_transportation(&costs, &supplies, &demands).unwrap();
        let mut row_out = [0.0; 3];
        let mut col_in = [0.0; 2];
        for &(i, j, f) in plan.flows() {
            assert!(f > 0.0);
            row_out[i] += f;
            col_in[j] += f;
        }
        for (out, s) in row_out.iter().zip(&supplies) {
            assert!(*out <= s + 1e-9, "row constraint violated");
        }
        for (inn, d) in col_in.iter().zip(&demands) {
            assert!(*inn <= d + 1e-9, "col constraint violated");
        }
        assert!((plan.total_flow() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_nan_cost() {
        assert_eq!(
            solve_transportation(&[f64::NAN], &[1.0], &[1.0]),
            Err(EmdError::NonFiniteInput)
        );
    }

    #[test]
    fn rejects_negative_supply() {
        assert_eq!(
            solve_transportation(&[1.0], &[-1.0], &[1.0]),
            Err(EmdError::NonFiniteInput)
        );
    }

    #[test]
    fn rejects_all_zero_mass() {
        assert_eq!(
            solve_transportation(&[1.0], &[0.0], &[1.0]),
            Err(EmdError::ZeroMass)
        );
    }

    #[test]
    fn nw_corner_cell_count() {
        let cells = northwest_corner(&[1.0, 2.0, 3.0], &[2.0, 2.0, 2.0]);
        assert_eq!(cells.len(), 5);
        let total: f64 = cells.iter().map(|c| c.flow).sum();
        assert!((total - 6.0).abs() < 1e-12);
    }

    #[test]
    fn nw_corner_degenerate_ties() {
        // Supplies exactly match demands pairwise -> degenerate cells.
        let cells = northwest_corner(&[2.0, 2.0], &[2.0, 2.0]);
        assert_eq!(cells.len(), 3);
        let total: f64 = cells.iter().map(|c| c.flow).sum();
        assert!((total - 4.0).abs() < 1e-12);
    }

    #[test]
    fn larger_random_instance_satisfies_duality() {
        // Optimality certificate: complementary slackness via potentials
        // is internal; instead verify against brute force on a small
        // instance (enumerate vertex solutions indirectly by comparing
        // with a known-good greedy lower bound: cost >= total_flow * min
        // cost and <= NW-corner cost).
        let costs: Vec<f64> = (0..16).map(|k| ((k * 7 + 3) % 11) as f64 + 1.0).collect();
        let supplies = [5.0, 3.0, 8.0, 2.0];
        let demands = [4.0, 6.0, 5.0, 3.0];
        let plan = solve_transportation(&costs, &supplies, &demands).unwrap();
        let min_c = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max_c = costs.iter().cloned().fold(0.0, f64::max);
        assert!(plan.total_cost() >= min_c * plan.total_flow() - 1e-9);
        assert!(plan.total_cost() <= max_c * plan.total_flow() + 1e-9);
        assert!((plan.total_flow() - 18.0).abs() < 1e-9);
    }
}
