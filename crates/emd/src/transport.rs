//! Transportation-problem solver (Eqs. 7–11 of the paper).
//!
//! A from-scratch transportation simplex:
//!
//! 1. zero supplies/demands are filtered out;
//! 2. the unbalanced problem is balanced with a zero-cost slack node on
//!    the deficit side (the textbook reduction — slack flow is "not
//!    transported" mass, which Eq. 11 permits);
//! 3. an initial basic feasible solution comes from the northwest-corner
//!    rule (which yields exactly `m + n - 1` basic cells including
//!    degenerate zero-flow ones);
//! 4. MODI (u-v) optimality testing with stepping-stone pivots improves
//!    it to optimality. Entering variables are chosen by most-negative
//!    reduced cost, switching to Bland's smallest-index rule after a
//!    grace period so cycling under degeneracy is impossible.
//!
//! There is exactly one solver body, and it runs entirely out of a
//! [`TransportScratch`]: the allocating [`solve_transportation`] is a
//! thin wrapper that hands it a fresh scratch, while hot-path callers
//! keep one scratch alive and call [`solve_transportation_with`] (or the
//! cost-only `emd` entry points in the crate root), which touches no
//! heap in steady state.

use crate::error::EmdError;
use std::collections::VecDeque;

/// An optimal transportation plan.
#[derive(Debug, Clone, PartialEq)]
pub struct TransportPlan {
    flows: Vec<(usize, usize, f64)>,
    total_cost: f64,
    total_flow: f64,
}

impl TransportPlan {
    /// Non-zero flows `(supply index, demand index, amount)` between real
    /// (non-slack) nodes, in unspecified order.
    pub fn flows(&self) -> &[(usize, usize, f64)] {
        &self.flows
    }

    /// Total transported mass (equals `min(Σ supplies, Σ demands)`).
    pub fn total_flow(&self) -> f64 {
        self.total_flow
    }

    /// Total transport cost `Σ f_kl d_kl`.
    pub fn total_cost(&self) -> f64 {
        self.total_cost
    }
}

/// Internal basic cell of the simplex tableau.
#[derive(Debug, Clone, Copy)]
struct BasicCell {
    i: usize,
    j: usize,
    flow: f64,
}

/// Every buffer the transportation simplex touches, reusable across
/// solves: the filtered row/column index maps, the balanced tableau
/// (costs and marginals), the basic-cell set, the MODI potentials, the
/// basis-tree adjacency, and the stepping-stone path. One scratch serves
/// problems of any shape — buffers are resized (never shrunk) per solve,
/// so after the largest problem has been seen once, further solves
/// allocate nothing.
///
/// Results are bit-identical to the allocating entry points regardless
/// of what a previous solve left behind: every cell of every buffer that
/// a solve reads is overwritten first.
#[derive(Debug, Clone, Default)]
pub struct TransportScratch {
    /// Original indices of the retained (positive-supply) rows.
    rows: Vec<usize>,
    /// Original indices of the retained (positive-demand) columns.
    cols: Vec<usize>,
    /// Balanced cost matrix, row-major `m x n` (slack cells cost zero).
    c: Vec<f64>,
    /// Balanced supplies (consumed by the northwest-corner rule).
    a: Vec<f64>,
    /// Balanced demands (consumed by the northwest-corner rule).
    b: Vec<f64>,
    /// Basic cells of the current tableau (`m + n - 1` of them).
    basis: Vec<BasicCell>,
    /// Membership mask over tableau cells.
    is_basic: Vec<bool>,
    /// Row potentials.
    u: Vec<f64>,
    /// Column potentials.
    v: Vec<f64>,
    /// Which row potentials have been propagated.
    known_u: Vec<bool>,
    /// Which column potentials have been propagated.
    known_v: Vec<bool>,
    /// CSR adjacency of the basis tree: node offsets (`m + n + 1`).
    adj_start: Vec<usize>,
    /// CSR fill cursors (scratch for the counting sort).
    adj_pos: Vec<usize>,
    /// CSR adjacency items: basis-cell indices, two per cell.
    adj_items: Vec<usize>,
    /// DFS stack for potential propagation.
    stack: Vec<usize>,
    /// BFS queue for the stepping-stone path search.
    bfs: VecDeque<usize>,
    /// BFS parent edge per node.
    parent_edge: Vec<usize>,
    /// BFS parent node per node.
    parent_node: Vec<usize>,
    /// BFS visited mask.
    visited: Vec<bool>,
    /// The stepping-stone cycle (basis-cell indices).
    path: Vec<usize>,
    /// Ground-distance cost matrix for the crate-root `emd_with` entry
    /// points (kept here so one scratch covers the whole EMD solve).
    pub(crate) ground: Vec<f64>,
    /// Solves completed through this scratch (cumulative; plain `u64`,
    /// so counting costs nothing on the hot path — callers who want
    /// rates read [`TransportScratch::stats`] and difference).
    solves: u64,
    /// Simplex pivots applied across those solves (cumulative).
    pivots: u64,
}

impl TransportScratch {
    /// Empty scratch; buffers grow to each problem's shape on first use.
    pub fn new() -> Self {
        TransportScratch::default()
    }

    /// Cumulative solve counters. These only ever grow (cloning a
    /// scratch clones its history); consumers that want per-interval
    /// rates snapshot and difference.
    pub fn stats(&self) -> TransportStats {
        TransportStats {
            solves: self.solves,
            pivots: self.pivots,
        }
    }
}

/// Cumulative counters of the work a [`TransportScratch`] has carried:
/// how many transportation problems reached optimality and how many
/// stepping-stone pivots they took in total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TransportStats {
    /// Solves that reached optimality.
    pub solves: u64,
    /// Pivots applied across all solves.
    pub pivots: u64,
}

/// Shape of a solved (balanced) tableau, for plan extraction.
struct Dims {
    /// Columns of the balanced tableau.
    n: usize,
    /// Leading rows that map to real supplies (the rest is slack).
    real_rows: usize,
    /// Leading columns that map to real demands (the rest is slack).
    real_cols: usize,
}

/// Solve the (possibly unbalanced) transportation problem.
///
/// `costs` is row-major `supplies.len() x demands.len()`. Supplies and
/// demands must be non-negative and finite; costs must be finite.
///
/// Equivalent to [`solve_transportation_with`] with a fresh
/// [`TransportScratch`].
///
/// # Errors
/// [`EmdError::NonFiniteInput`] for NaN/infinite input,
/// [`EmdError::ZeroMass`] if either side has zero total mass, and
/// [`EmdError::DidNotConverge`] if the iteration cap is hit.
pub fn solve_transportation(
    costs: &[f64],
    supplies: &[f64],
    demands: &[f64],
) -> Result<TransportPlan, EmdError> {
    solve_transportation_with(costs, supplies, demands, &mut TransportScratch::new())
}

/// As [`solve_transportation`], running out of a caller-kept scratch:
/// in steady state the only allocation is the returned plan's flow list.
/// Bit-identical to [`solve_transportation`], including on a scratch
/// dirtied by previous solves of other shapes.
///
/// # Errors
/// As [`solve_transportation`].
pub fn solve_transportation_with(
    costs: &[f64],
    supplies: &[f64],
    demands: &[f64],
    scratch: &mut TransportScratch,
) -> Result<TransportPlan, EmdError> {
    let dims = solve_core(costs, supplies, demands, scratch, None)?;
    // lint:allow(NO_ALLOC_HOT_PATH, this variant materializes the plan by contract; the zero-alloc path is solve_cost_flow)
    let mut flows = Vec::new();
    let (total_cost, total_flow) = finish(scratch, &dims, |i, j, f| flows.push((i, j, f)));
    Ok(TransportPlan {
        flows,
        total_cost,
        total_flow,
    })
}

/// Optimal `(total cost, total flow)` without materializing the plan —
/// the zero-allocation form behind the crate root's `emd_with`.
///
/// # Errors
/// As [`solve_transportation`].
pub(crate) fn solve_cost_flow(
    costs: &[f64],
    supplies: &[f64],
    demands: &[f64],
    scratch: &mut TransportScratch,
) -> Result<(f64, f64), EmdError> {
    let dims = solve_core(costs, supplies, demands, scratch, None)?;
    Ok(finish(scratch, &dims, |_, _, _| {}))
}

/// The single solver body: filter, balance, northwest-corner start, and
/// MODI/stepping-stone pivots to optimality, leaving the optimal basis
/// (and index maps) in `scratch`.
///
/// `bland_after` overrides the anti-cycling grace period (iterations of
/// most-negative-reduced-cost selection before switching to Bland's
/// rule); `None` is the production default of half the iteration cap.
/// Tests pass `Some(0)` to drive every pivot through the Bland's-rule
/// branch.
fn solve_core(
    costs: &[f64],
    supplies: &[f64],
    demands: &[f64],
    s: &mut TransportScratch,
    bland_after: Option<usize>,
) -> Result<Dims, EmdError> {
    let m0 = supplies.len();
    let n0 = demands.len();
    assert_eq!(
        costs.len(),
        m0 * n0,
        "solve_transportation: cost matrix shape mismatch"
    );
    if supplies
        .iter()
        .chain(demands)
        .any(|x| !x.is_finite() || *x < 0.0)
        || costs.iter().any(|c| !c.is_finite())
    {
        return Err(EmdError::NonFiniteInput);
    }

    // Filter zero-mass rows/columns, remembering original indices.
    s.rows.clear();
    s.rows.extend((0..m0).filter(|&i| supplies[i] > 0.0));
    s.cols.clear();
    s.cols.extend((0..n0).filter(|&j| demands[j] > 0.0));
    if s.rows.is_empty() || s.cols.is_empty() {
        return Err(EmdError::ZeroMass);
    }

    let sa: f64 = s.rows.iter().map(|&i| supplies[i]).sum();
    let sb: f64 = s.cols.iter().map(|&j| demands[j]).sum();
    let diff = sa - sb;
    // Tolerance for treating the problem as balanced.
    let scale = sa.max(sb);
    let balanced = diff.abs() <= 1e-12 * scale;

    // Dimensions of the balanced tableau (possibly one slack row/col).
    let extra_col = !balanced && diff > 0.0;
    let extra_row = !balanced && diff < 0.0;
    let m = s.rows.len() + usize::from(extra_row);
    let n = s.cols.len() + usize::from(extra_col);

    // Balanced cost matrix and marginals. Slack cells cost zero.
    s.c.clear();
    s.c.resize(m * n, 0.0);
    for (ri, &i) in s.rows.iter().enumerate() {
        for (cj, &j) in s.cols.iter().enumerate() {
            s.c[ri * n + cj] = costs[i * n0 + j];
        }
    }
    s.a.clear();
    s.a.extend(s.rows.iter().map(|&i| supplies[i]));
    s.b.clear();
    s.b.extend(s.cols.iter().map(|&j| demands[j]));
    if extra_col {
        s.b.push(diff);
    }
    if extra_row {
        s.a.push(-diff);
    }
    if balanced {
        // Snap the (tiny) imbalance onto the largest demand so row and
        // column sums agree exactly.
        let (jmax, _) =
            s.b.iter()
                .enumerate()
                .max_by(|x, y| x.1.partial_cmp(y.1).expect("finite"))
                .expect("non-empty");
        s.b[jmax] += diff;
    }

    // The marginals are working copies: the northwest-corner rule
    // consumes them in place (nothing reads them afterwards).
    northwest_corner(&mut s.a, &mut s.b, &mut s.basis);
    debug_assert_eq!(s.basis.len(), m + n - 1);

    let max_iters = (200 * (m + n) * (m + n)).max(2000);
    let bland_after = bland_after.unwrap_or(max_iters / 2);
    let cost_scale = s.c.iter().fold(1.0f64, |acc, &x| acc.max(x.abs()));
    let tol = 1e-10 * cost_scale;

    s.is_basic.clear();
    s.is_basic.resize(m * n, false);
    for cell in &s.basis {
        s.is_basic[cell.i * n + cell.j] = true;
    }

    s.u.clear();
    s.u.resize(m, 0.0);
    s.v.clear();
    s.v.resize(n, 0.0);

    for iter in 0..max_iters {
        // The basis tree changed by one edge (or is new): rebuild its
        // adjacency once per pivot and share it between the potential
        // propagation and the path search below.
        build_adjacency(
            &s.basis,
            m,
            &mut s.adj_start,
            &mut s.adj_pos,
            &mut s.adj_items,
        );
        compute_potentials(
            &s.basis,
            &s.c,
            m,
            n,
            &mut s.u,
            &mut s.v,
            &mut s.known_u,
            &mut s.known_v,
            &s.adj_start,
            &s.adj_items,
            &mut s.stack,
        );

        // Entering variable selection.
        let mut enter: Option<(usize, usize)> = None;
        let mut best = -tol;
        'scan: for i in 0..m {
            for j in 0..n {
                if s.is_basic[i * n + j] {
                    continue;
                }
                let r = s.c[i * n + j] - s.u[i] - s.v[j];
                if iter >= bland_after {
                    // Bland: first improving cell in index order.
                    if r < -tol {
                        enter = Some((i, j));
                        break 'scan;
                    }
                } else if r < best {
                    best = r;
                    enter = Some((i, j));
                }
            }
        }
        let Some((ei, ej)) = enter else {
            s.solves += 1;
            return Ok(Dims {
                n,
                real_rows: s.rows.len(),
                real_cols: s.cols.len(),
            });
        };
        s.pivots += 1;

        // Unique cycle: path in the basis tree from col node ej to row
        // node ei, prepended with the entering cell.
        tree_path(
            &s.basis,
            m,
            n,
            ej,
            ei,
            &s.adj_start,
            &s.adj_items,
            &mut s.parent_edge,
            &mut s.parent_node,
            &mut s.visited,
            &mut s.bfs,
            &mut s.path,
        );

        // Flow change theta: minimum flow among odd-position (donor)
        // cells of the cycle. Position 0 is the entering cell (+).
        let mut theta = f64::INFINITY;
        let mut leave_pos = usize::MAX;
        for (pos, &cell_idx) in s.path.iter().enumerate() {
            if pos % 2 == 0 {
                // positions 0,2,4.. in `path` are donors (see tree_path).
                let f = s.basis[cell_idx].flow;
                // Bland-compatible tie-break: smallest tableau index.
                if f < theta - 1e-15
                    || (f < theta + 1e-15
                        && leave_pos != usize::MAX
                        && tableau_index(&s.basis[cell_idx], n)
                            < tableau_index(&s.basis[s.path[leave_pos]], n))
                {
                    theta = f;
                    leave_pos = pos;
                }
            }
        }
        debug_assert!(leave_pos != usize::MAX, "cycle must contain a donor cell");
        let theta = theta.max(0.0);

        // Apply the pivot: donors lose theta, receivers gain theta.
        for (pos, &cell_idx) in s.path.iter().enumerate() {
            if pos % 2 == 0 {
                s.basis[cell_idx].flow -= theta;
            } else {
                s.basis[cell_idx].flow += theta;
            }
        }
        let leaving_idx = s.path[leave_pos];
        let leaving = s.basis[leaving_idx];
        s.is_basic[leaving.i * n + leaving.j] = false;
        s.is_basic[ei * n + ej] = true;
        s.basis[leaving_idx] = BasicCell {
            i: ei,
            j: ej,
            flow: theta,
        };
    }
    Err(EmdError::DidNotConverge)
}

/// Totals (and optionally flows) of the solved basis over real
/// (non-slack) nodes, mapping back to the caller's original indices.
/// The single extraction body shared by the plan-building and the
/// cost-only entry points.
fn finish(
    s: &TransportScratch,
    dims: &Dims,
    mut on_flow: impl FnMut(usize, usize, f64),
) -> (f64, f64) {
    let mut total_cost = 0.0;
    let mut total_flow = 0.0;
    for cell in &s.basis {
        if cell.flow <= 0.0 || cell.i >= dims.real_rows || cell.j >= dims.real_cols {
            continue;
        }
        total_cost += cell.flow * s.c[cell.i * dims.n + cell.j];
        total_flow += cell.flow;
        on_flow(s.rows[cell.i], s.cols[cell.j], cell.flow);
    }
    (total_cost, total_flow)
}

#[inline]
fn tableau_index(cell: &BasicCell, n: usize) -> usize {
    cell.i * n + cell.j
}

/// Northwest-corner initial basic feasible solution: exactly
/// `m + n - 1` basic cells (some possibly zero-flow). Consumes the
/// marginals in place.
fn northwest_corner(a: &mut [f64], b: &mut [f64], cells: &mut Vec<BasicCell>) {
    let m = a.len();
    let n = b.len();
    cells.clear();
    cells.reserve(m + n - 1);
    let (mut i, mut j) = (0usize, 0usize);
    loop {
        let f = a[i].min(b[j]).max(0.0);
        cells.push(BasicCell { i, j, flow: f });
        a[i] -= f;
        b[j] -= f;
        if i + 1 == m && j + 1 == n {
            break;
        }
        // Advance toward the exhausted side; at the borders only one
        // direction remains legal.
        if i + 1 < m && (j + 1 == n || a[i] <= b[j]) {
            i += 1;
        } else {
            j += 1;
        }
    }
}

/// CSR adjacency of the basis tree: node ids `0..m` are rows, `m..m+n`
/// columns; each basic cell is an edge incident to two nodes. The
/// counting sort preserves basis order within each node's list, so
/// traversals visit edges in exactly the order the old per-node `Vec`
/// lists produced.
fn build_adjacency(
    basis: &[BasicCell],
    m: usize,
    start: &mut Vec<usize>,
    pos: &mut Vec<usize>,
    items: &mut Vec<usize>,
) {
    // m + n == basis.len() + 1 for a spanning tree.
    let nodes = basis.len() + 1;
    start.clear();
    start.resize(nodes + 1, 0);
    for cell in basis {
        start[cell.i + 1] += 1;
        start[m + cell.j + 1] += 1;
    }
    for k in 0..nodes {
        start[k + 1] += start[k];
    }
    pos.clear();
    pos.extend_from_slice(&start[..nodes]);
    items.clear();
    items.resize(2 * basis.len(), 0);
    for (idx, cell) in basis.iter().enumerate() {
        items[pos[cell.i]] = idx;
        pos[cell.i] += 1;
        items[pos[m + cell.j]] = idx;
        pos[m + cell.j] += 1;
    }
}

/// Solve for the dual potentials over the basis spanning tree
/// (`u[0] = 0` is the normalization).
#[allow(clippy::too_many_arguments)]
fn compute_potentials(
    basis: &[BasicCell],
    c: &[f64],
    m: usize,
    n: usize,
    u: &mut [f64],
    v: &mut [f64],
    known_u: &mut Vec<bool>,
    known_v: &mut Vec<bool>,
    adj_start: &[usize],
    adj_items: &[usize],
    stack: &mut Vec<usize>,
) {
    known_u.clear();
    known_u.resize(m, false);
    known_v.clear();
    known_v.resize(n, false);
    u[0] = 0.0;
    known_u[0] = true;
    stack.clear();
    stack.push(0); // node ids
    while let Some(node) = stack.pop() {
        for &idx in &adj_items[adj_start[node]..adj_start[node + 1]] {
            let cell = &basis[idx];
            if node < m {
                // row node: propagate to the column.
                if !known_v[cell.j] {
                    v[cell.j] = c[cell.i * n + cell.j] - u[cell.i];
                    known_v[cell.j] = true;
                    stack.push(m + cell.j);
                }
            } else if !known_u[cell.i] {
                u[cell.i] = c[cell.i * n + cell.j] - v[cell.j];
                known_u[cell.i] = true;
                stack.push(cell.i);
            }
        }
    }
    debug_assert!(
        known_u.iter().all(|&k| k) && known_v.iter().all(|&k| k),
        "basis is not a spanning tree"
    );
}

/// Path (as basis-cell indices) in the basis tree from column node
/// `start_col` to row node `goal_row`, written into `path`.
///
/// The first edge on the path is incident to `start_col` and is a donor
/// (receives `-theta`): adding `+theta` at the entering cell `(goal_row,
/// start_col)` over-fills column `start_col`, so the basic edge leaving it
/// must shed flow. Donor/receiver then alternate along the path, so even
/// positions are donors.
#[allow(clippy::too_many_arguments)]
fn tree_path(
    basis: &[BasicCell],
    m: usize,
    n: usize,
    start_col: usize,
    goal_row: usize,
    adj_start: &[usize],
    adj_items: &[usize],
    parent_edge: &mut Vec<usize>,
    parent_node: &mut Vec<usize>,
    visited: &mut Vec<bool>,
    bfs: &mut VecDeque<usize>,
    path: &mut Vec<usize>,
) {
    let num_nodes = m + n;
    // BFS from col node to row node.
    let start = m + start_col;
    let goal = goal_row;
    parent_edge.clear();
    parent_edge.resize(num_nodes, usize::MAX);
    parent_node.clear();
    parent_node.resize(num_nodes, usize::MAX);
    visited.clear();
    visited.resize(num_nodes, false);
    visited[start] = true;
    bfs.clear();
    // Capacity is pinned to the node count, not to whatever high-water
    // mark earlier searches happened to reach: each node enters the
    // queue at most once, so this makes the queue shape-bound and keeps
    // warm solves allocation-free even when a deeper basis tree shows
    // up late in a stream.
    bfs.reserve(num_nodes);
    bfs.push_back(start);
    while let Some(node) = bfs.pop_front() {
        if node == goal {
            break;
        }
        for &idx in &adj_items[adj_start[node]..adj_start[node + 1]] {
            let cell = &basis[idx];
            let other = if node < m { m + cell.j } else { cell.i };
            if !visited[other] {
                visited[other] = true;
                parent_edge[other] = idx;
                parent_node[other] = node;
                bfs.push_back(other);
            }
        }
    }
    debug_assert!(visited[goal], "basis tree disconnected");
    // Walk back from goal to start; then reverse so the path starts at
    // the column side (first edge = donor adjacent to entering column).
    path.clear();
    let mut node = goal;
    while node != start {
        path.push(parent_edge[node]);
        node = parent_node[node];
    }
    path.reverse();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solve(costs: &[&[f64]], supplies: &[f64], demands: &[f64]) -> TransportPlan {
        let flat: Vec<f64> = costs.iter().flat_map(|r| r.iter().copied()).collect();
        solve_transportation(&flat, supplies, demands).unwrap()
    }

    #[test]
    fn textbook_balanced_3x3() {
        // Hitchcock-style instance with hand-verified optimum 1920
        // (basis s1->d1:70, s1->d3:50, s2->d2:70, s2->d3:10, s3->d1:80;
        // all reduced costs non-negative under u=(0,6,-5), v=(8,4,6)).
        // costs:      d1  d2  d3   supply
        //   s1         8   5   6     120
        //   s2        15  10  12      80
        //   s3         3   9  10      80
        // demand     150  70  60
        let plan = solve(
            &[&[8.0, 5.0, 6.0], &[15.0, 10.0, 12.0], &[3.0, 9.0, 10.0]],
            &[120.0, 80.0, 80.0],
            &[150.0, 70.0, 60.0],
        );
        assert!((plan.total_flow() - 280.0).abs() < 1e-9);
        assert!(
            (plan.total_cost() - 1920.0).abs() < 1e-9,
            "cost {}",
            plan.total_cost()
        );
    }

    #[test]
    fn trivial_1x1() {
        let plan = solve(&[&[7.0]], &[2.0], &[2.0]);
        assert_eq!(plan.flows(), &[(0, 0, 2.0)]);
        assert!((plan.total_cost() - 14.0).abs() < 1e-12);
    }

    #[test]
    fn single_row_distributes_to_all() {
        let plan = solve(&[&[1.0, 2.0, 3.0]], &[6.0], &[1.0, 2.0, 3.0]);
        assert!((plan.total_flow() - 6.0).abs() < 1e-12);
        assert!((plan.total_cost() - (1.0 + 4.0 + 9.0)).abs() < 1e-12);
    }

    #[test]
    fn single_col_collects_from_all() {
        let plan = solve(&[&[4.0], &[2.0]], &[1.0, 1.0], &[2.0]);
        assert!((plan.total_cost() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn unbalanced_excess_supply() {
        // Supply 10 vs demand 4: the cheap supplier should serve it all.
        let plan = solve(&[&[1.0], &[5.0]], &[4.0, 6.0], &[4.0]);
        assert!((plan.total_flow() - 4.0).abs() < 1e-12);
        assert!(
            (plan.total_cost() - 4.0).abs() < 1e-12,
            "cost {}",
            plan.total_cost()
        );
    }

    #[test]
    fn unbalanced_excess_demand() {
        let plan = solve(&[&[1.0, 5.0]], &[4.0], &[4.0, 6.0]);
        assert!((plan.total_flow() - 4.0).abs() < 1e-12);
        assert!((plan.total_cost() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn zero_entries_filtered() {
        let plan = solve(
            &[&[9.0, 1.0], &[1.0, 9.0], &[5.0, 5.0]],
            &[1.0, 0.0, 1.0],
            &[1.0, 1.0],
        );
        // Row 1 has zero supply; optimal assigns row0->col1, row2->col0.
        assert!((plan.total_cost() - 6.0).abs() < 1e-12);
        assert!(plan.flows().iter().all(|&(i, _, _)| i != 1));
    }

    #[test]
    fn degenerate_equal_supplies_demands() {
        // Every supply equals every demand: heavily degenerate pivots.
        let plan = solve(
            &[&[1.0, 2.0, 3.0], &[2.0, 1.0, 2.0], &[3.0, 2.0, 1.0]],
            &[1.0, 1.0, 1.0],
            &[1.0, 1.0, 1.0],
        );
        assert!((plan.total_cost() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn flow_conservation_constraints() {
        let supplies = [3.0, 2.0, 5.0];
        let demands = [4.0, 6.0];
        let costs = [1.0, 4.0, 2.0, 1.0, 3.0, 2.0];
        let plan = solve_transportation(&costs, &supplies, &demands).unwrap();
        let mut row_out = [0.0; 3];
        let mut col_in = [0.0; 2];
        for &(i, j, f) in plan.flows() {
            assert!(f > 0.0);
            row_out[i] += f;
            col_in[j] += f;
        }
        for (out, s) in row_out.iter().zip(&supplies) {
            assert!(*out <= s + 1e-9, "row constraint violated");
        }
        for (inn, d) in col_in.iter().zip(&demands) {
            assert!(*inn <= d + 1e-9, "col constraint violated");
        }
        assert!((plan.total_flow() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_nan_cost() {
        assert_eq!(
            solve_transportation(&[f64::NAN], &[1.0], &[1.0]),
            Err(EmdError::NonFiniteInput)
        );
    }

    #[test]
    fn rejects_negative_supply() {
        assert_eq!(
            solve_transportation(&[1.0], &[-1.0], &[1.0]),
            Err(EmdError::NonFiniteInput)
        );
    }

    #[test]
    fn rejects_all_zero_mass() {
        assert_eq!(
            solve_transportation(&[1.0], &[0.0], &[1.0]),
            Err(EmdError::ZeroMass)
        );
    }

    #[test]
    fn nw_corner_cell_count() {
        let mut a = [1.0, 2.0, 3.0];
        let mut b = [2.0, 2.0, 2.0];
        let mut cells = Vec::new();
        northwest_corner(&mut a, &mut b, &mut cells);
        assert_eq!(cells.len(), 5);
        let total: f64 = cells.iter().map(|c| c.flow).sum();
        assert!((total - 6.0).abs() < 1e-12);
    }

    #[test]
    fn nw_corner_degenerate_ties() {
        // Supplies exactly match demands pairwise -> degenerate cells.
        let mut a = [2.0, 2.0];
        let mut b = [2.0, 2.0];
        let mut cells = Vec::new();
        northwest_corner(&mut a, &mut b, &mut cells);
        assert_eq!(cells.len(), 3);
        let total: f64 = cells.iter().map(|c| c.flow).sum();
        assert!((total - 4.0).abs() < 1e-12);
    }

    #[test]
    fn larger_random_instance_satisfies_duality() {
        // Optimality certificate: complementary slackness via potentials
        // is internal; instead verify against brute force on a small
        // instance (enumerate vertex solutions indirectly by comparing
        // with a known-good greedy lower bound: cost >= total_flow * min
        // cost and <= NW-corner cost).
        let costs: Vec<f64> = (0..16).map(|k| ((k * 7 + 3) % 11) as f64 + 1.0).collect();
        let supplies = [5.0, 3.0, 8.0, 2.0];
        let demands = [4.0, 6.0, 5.0, 3.0];
        let plan = solve_transportation(&costs, &supplies, &demands).unwrap();
        let min_c = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max_c = costs.iter().cloned().fold(0.0, f64::max);
        assert!(plan.total_cost() >= min_c * plan.total_flow() - 1e-9);
        assert!(plan.total_cost() <= max_c * plan.total_flow() + 1e-9);
        assert!((plan.total_flow() - 18.0).abs() < 1e-9);
    }

    #[test]
    fn scratch_reuse_matches_fresh_across_shapes() {
        // One dirty scratch driven across problems of different shapes
        // must reproduce the allocating path exactly (bit-identical
        // plans), regardless of what earlier solves left behind.
        let problems: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> = vec![
            (
                vec![8.0, 5.0, 6.0, 15.0, 10.0, 12.0, 3.0, 9.0, 10.0],
                vec![120.0, 80.0, 80.0],
                vec![150.0, 70.0, 60.0],
            ),
            (vec![7.0], vec![2.0], vec![2.0]),
            (vec![1.0, 5.0], vec![4.0], vec![4.0, 6.0]),
            (
                (0..16).map(|k| ((k * 7 + 3) % 11) as f64 + 1.0).collect(),
                vec![5.0, 3.0, 8.0, 2.0],
                vec![4.0, 6.0, 5.0, 3.0],
            ),
            (
                vec![9.0, 1.0, 1.0, 9.0, 5.0, 5.0],
                vec![1.0, 0.0, 1.0],
                vec![1.0, 1.0],
            ),
        ];
        let mut scratch = TransportScratch::new();
        for (costs, a, b) in &problems {
            let fresh = solve_transportation(costs, a, b).unwrap();
            let reused = solve_transportation_with(costs, a, b, &mut scratch).unwrap();
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn blands_rule_from_first_pivot_converges_to_optimum() {
        // Regression for the anti-cycling fallback: drive every pivot
        // through Bland's smallest-index rule (grace period zero) on
        // heavily degenerate instances — all marginals equal, tie-heavy
        // costs — where most-negative selection has maximal freedom to
        // cycle. Bland's rule must terminate at the same optimum.
        let mut scratch = TransportScratch::new();

        // 4x4 assignment-like instance, optimum 4 (diagonal).
        let n = 4usize;
        let mut costs = vec![2.0; n * n];
        for i in 0..n {
            costs[i * n + i] = 1.0;
        }
        let ones = vec![1.0; n];
        let dims = solve_core(&costs, &ones, &ones, &mut scratch, Some(0)).unwrap();
        let (cost, flow) = finish(&scratch, &dims, |_, _, _| {});
        assert!((flow - 4.0).abs() < 1e-12);
        assert!((cost - 4.0).abs() < 1e-12, "bland cost {cost}");

        // A degenerate instance with many equal reduced costs: every
        // cost equal, so every basis is optimal and every pivot is a
        // zero-theta tie. Bland must stop rather than loop.
        let flat = vec![3.0; 6 * 6];
        let ones6 = vec![1.0; 6];
        let dims = solve_core(&flat, &ones6, &ones6, &mut scratch, Some(0)).unwrap();
        let (cost, flow) = finish(&scratch, &dims, |_, _, _| {});
        assert!((flow - 6.0).abs() < 1e-12);
        assert!((cost - 18.0).abs() < 1e-12);

        // And the default path agrees on the first instance.
        let plan = solve_transportation(&costs, &ones, &ones).unwrap();
        assert!((plan.total_cost() - 4.0).abs() < 1e-12);
    }
}
