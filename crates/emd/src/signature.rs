//! Signature type: weighted point sets (Eq. 6 of the paper).

use crate::error::EmdError;

/// A signature `S = {(u_k, w_k)}_{k=1..K}`: representative vectors with
/// non-negative weights.
///
/// Weights are real-valued — the paper's `w_k` are member counts when
/// signatures come from quantization, but the Bayesian bootstrap and the
/// information estimators rescale them, so the type is kept general.
#[derive(Debug, Clone, PartialEq)]
pub struct Signature {
    points: Vec<Vec<f64>>,
    weights: Vec<f64>,
    dim: usize,
}

impl Signature {
    /// Construct a signature from points and weights.
    ///
    /// # Errors
    /// Rejects empty signatures, mismatched lengths, inconsistent point
    /// dimensions, and negative or non-finite weights. Zero-weight entries
    /// are allowed (they are ignored by the solver).
    pub fn new(points: Vec<Vec<f64>>, weights: Vec<f64>) -> Result<Self, EmdError> {
        if points.is_empty() {
            return Err(EmdError::InvalidSignature("no points"));
        }
        if points.len() != weights.len() {
            return Err(EmdError::InvalidSignature("points/weights length mismatch"));
        }
        let dim = points[0].len();
        if dim == 0 {
            return Err(EmdError::InvalidSignature("zero-dimensional points"));
        }
        if points.iter().any(|p| p.len() != dim) {
            return Err(EmdError::InvalidSignature("inconsistent point dimensions"));
        }
        if points.iter().any(|p| p.iter().any(|x| !x.is_finite())) {
            return Err(EmdError::InvalidSignature("non-finite point coordinate"));
        }
        if weights.iter().any(|&w| !w.is_finite() || w < 0.0) {
            return Err(EmdError::InvalidSignature(
                "weights must be finite and >= 0",
            ));
        }
        Ok(Signature {
            points,
            weights,
            dim,
        })
    }

    /// Signature with a single unit-mass point.
    ///
    /// # Errors
    /// As [`Signature::new`].
    pub fn point_mass(point: Vec<f64>) -> Result<Self, EmdError> {
        Signature::new(vec![point], vec![1.0])
    }

    /// Build from integer counts (the direct output of quantization).
    ///
    /// # Errors
    /// As [`Signature::new`].
    pub fn from_counts(points: Vec<Vec<f64>>, counts: &[u64]) -> Result<Self, EmdError> {
        let weights = counts.iter().map(|&c| c as f64).collect();
        Signature::new(points, weights)
    }

    /// Dismantle the signature into its owned buffers, so a retiring
    /// signature's point vectors and weight buffer can be recycled into
    /// the next build instead of freed and re-allocated.
    pub fn into_parts(self) -> (Vec<Vec<f64>>, Vec<f64>) {
        (self.points, self.weights)
    }

    /// Number of weighted points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the signature is structurally empty (never true for a
    /// successfully constructed signature).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Dimension of the embedded points.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The representative points.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }

    /// The weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Total mass `Σ w_k`.
    pub fn total_weight(&self) -> f64 {
        self.weights.iter().sum()
    }

    /// Iterate over `(point, weight)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], f64)> {
        self.points
            .iter()
            .map(Vec::as_slice)
            .zip(self.weights.iter().copied())
    }

    /// A copy with weights scaled to sum to one.
    ///
    /// # Errors
    /// Returns [`EmdError::ZeroMass`] if the total weight is zero.
    pub fn normalized(&self) -> Result<Signature, EmdError> {
        let total = self.total_weight();
        if total <= 0.0 {
            return Err(EmdError::ZeroMass);
        }
        let weights = self.weights.iter().map(|w| w / total).collect();
        Signature::new(self.points.clone(), weights)
    }

    /// Weighted centroid of the signature (used by descriptive baselines).
    pub fn centroid(&self) -> Vec<f64> {
        let total = self.total_weight();
        let mut c = vec![0.0; self.dim];
        if total <= 0.0 {
            return c;
        }
        for (p, w) in self.iter() {
            for (ci, &xi) in c.iter_mut().zip(p) {
                *ci += w * xi;
            }
        }
        for ci in &mut c {
            *ci /= total;
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_construction() {
        let s = Signature::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]], vec![1.0, 2.0]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.dim(), 2);
        assert_eq!(s.total_weight(), 3.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(Signature::new(vec![], vec![]).is_err());
        assert!(Signature::new(vec![vec![1.0]], vec![]).is_err());
        assert!(Signature::new(vec![vec![1.0], vec![1.0, 2.0]], vec![1.0, 1.0]).is_err());
        assert!(Signature::new(vec![vec![1.0]], vec![-1.0]).is_err());
        assert!(Signature::new(vec![vec![1.0]], vec![f64::NAN]).is_err());
        assert!(Signature::new(vec![vec![f64::INFINITY]], vec![1.0]).is_err());
        assert!(Signature::new(vec![vec![]], vec![1.0]).is_err());
    }

    #[test]
    fn zero_weight_entries_allowed() {
        let s = Signature::new(vec![vec![0.0], vec![1.0]], vec![0.0, 2.0]).unwrap();
        assert_eq!(s.total_weight(), 2.0);
    }

    #[test]
    fn from_counts_converts() {
        let s = Signature::from_counts(vec![vec![0.0], vec![1.0]], &[3, 5]).unwrap();
        assert_eq!(s.weights(), &[3.0, 5.0]);
    }

    #[test]
    fn normalization() {
        let s = Signature::new(vec![vec![0.0], vec![1.0]], vec![1.0, 3.0]).unwrap();
        let n = s.normalized().unwrap();
        assert!((n.total_weight() - 1.0).abs() < 1e-12);
        assert!((n.weights()[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn normalization_of_zero_mass_fails() {
        let s = Signature::new(vec![vec![0.0]], vec![0.0]).unwrap();
        assert_eq!(s.normalized().unwrap_err(), EmdError::ZeroMass);
    }

    #[test]
    fn centroid_weighted() {
        let s = Signature::new(vec![vec![0.0, 0.0], vec![4.0, 8.0]], vec![3.0, 1.0]).unwrap();
        assert_eq!(s.centroid(), vec![1.0, 2.0]);
    }

    #[test]
    fn iter_pairs() {
        let s = Signature::new(vec![vec![1.0], vec![2.0]], vec![0.5, 0.5]).unwrap();
        let pairs: Vec<(Vec<f64>, f64)> = s.iter().map(|(p, w)| (p.to_vec(), w)).collect();
        assert_eq!(pairs, vec![(vec![1.0], 0.5), (vec![2.0], 0.5)]);
    }
}
