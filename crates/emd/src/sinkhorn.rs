//! Entropy-regularized optimal transport (Sinkhorn–Knopp iteration).
//!
//! An *extension* beyond the paper: the transportation simplex computes
//! the exact EMD but costs roughly `O(K^3)` per pair; Sinkhorn iteration
//! solves the entropy-regularized relaxation in `O(K^2)` per sweep and
//! converges to the exact cost as the regularization `epsilon → 0`. The
//! ablation benchmark compares the two; the detector keeps the exact
//! solver as its default because signature sizes in this problem are
//! small.
//!
//! The regularized problem requires equal total mass; inputs are
//! normalized to probability vectors first, so `sinkhorn_emd`
//! approximates the EMD of the *normalized* signatures (which equals
//! Eq. 12's value whenever the masses were proportional to begin with).

use crate::error::EmdError;
use crate::ground::GroundDistance;
use crate::signature::Signature;

/// Configuration of the Sinkhorn solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinkhornConfig {
    /// Entropic regularization ε (> 0). Smaller is closer to the exact
    /// EMD but needs more iterations and risks underflow; 0.01–0.1 of
    /// the typical ground distance works well.
    pub epsilon: f64,
    /// Maximum Sinkhorn sweeps.
    pub max_iters: usize,
    /// Convergence tolerance on the marginal violation (L1).
    pub tol: f64,
}

impl Default for SinkhornConfig {
    fn default() -> Self {
        SinkhornConfig {
            epsilon: 0.05,
            max_iters: 2000,
            tol: 1e-9,
        }
    }
}

impl SinkhornConfig {
    /// Check parameters.
    ///
    /// # Errors
    /// Returns a description of the problem.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.epsilon.is_finite() && self.epsilon > 0.0) {
            return Err("epsilon must be finite and > 0".into());
        }
        if self.max_iters == 0 {
            return Err("max_iters must be >= 1".into());
        }
        Ok(())
    }
}

/// Reusable buffers of the Sinkhorn iteration: the filtered weight
/// vectors and their logs, the cost matrix, the log-domain potentials,
/// and the row-marginal accumulator. One scratch serves problems of any
/// shape; every cell read by a solve is overwritten first, so results
/// are bit-identical to the allocating [`sinkhorn_emd`] regardless of
/// what a previous solve left behind.
#[derive(Debug, Clone, Default)]
pub struct SinkhornScratch {
    /// Indices of the positive-weight entries of `a`.
    idx_a: Vec<usize>,
    /// Indices of the positive-weight entries of `b`.
    idx_b: Vec<usize>,
    /// Normalized positive weights of `a`.
    wa: Vec<f64>,
    /// Normalized positive weights of `b`.
    wb: Vec<f64>,
    /// Pairwise ground distances, row-major `m x n`.
    cost: Vec<f64>,
    /// `ln` of the normalized weights of `a`.
    log_a: Vec<f64>,
    /// `ln` of the normalized weights of `b`.
    log_b: Vec<f64>,
    /// Log-domain row potentials.
    f: Vec<f64>,
    /// Log-domain column potentials.
    g: Vec<f64>,
    /// Row sums of the implied plan (marginal-violation check).
    row_lse: Vec<f64>,
    /// Solves completed through this scratch (cumulative).
    solves: u64,
    /// Sinkhorn sweeps (one f-update + one g-update) across those
    /// solves (cumulative).
    sweeps: u64,
    /// L1 row-marginal violation of the last solve's final plan.
    last_violation: f64,
}

impl SinkhornScratch {
    /// Empty scratch; buffers grow to each problem's shape on first use.
    pub fn new() -> Self {
        SinkhornScratch::default()
    }

    /// Cumulative solve counters. These only ever grow (cloning a
    /// scratch clones its history); consumers that want per-interval
    /// rates snapshot and difference.
    pub fn stats(&self) -> SinkhornStats {
        SinkhornStats {
            solves: self.solves,
            sweeps: self.sweeps,
        }
    }

    /// L1 row-marginal violation of the most recent solve's final plan
    /// (column marginals are exact by construction). Below the config's
    /// `tol` iff that solve converged — the tiered solver uses this to
    /// decide whether the returned transport cost can serve as an upper
    /// bound (the plan is then feasible up to `tol`).
    pub fn last_marginal_violation(&self) -> f64 {
        self.last_violation
    }
}

/// Cumulative counters of the work a [`SinkhornScratch`] has carried:
/// how many regularized solves completed and how many potential-update
/// sweeps they took in total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkhornStats {
    /// Solves that completed (converged or hit the iteration cap with a
    /// finite cost).
    pub solves: u64,
    /// Potential-update sweeps across all solves.
    pub sweeps: u64,
}

/// Entropy-regularized transport cost between two signatures
/// (normalized to unit mass), in log domain for numerical stability.
///
/// Returns the *transport* part of the objective,
/// `Σ_ij P_ij d_ij`, which upper-bounds the exact EMD and converges to
/// it as ε → 0.
///
/// Equivalent to [`sinkhorn_emd_with`] with a fresh [`SinkhornScratch`].
///
/// # Errors
/// [`EmdError::ZeroMass`] for massless signatures,
/// [`EmdError::DimensionMismatch`] for incompatible points,
/// [`EmdError::DidNotConverge`] if the marginals fail to converge.
///
/// # Panics
/// Panics on an invalid [`SinkhornConfig`].
pub fn sinkhorn_emd<G: GroundDistance>(
    a: &Signature,
    b: &Signature,
    ground: &G,
    cfg: &SinkhornConfig,
) -> Result<f64, EmdError> {
    sinkhorn_emd_with(a, b, ground, cfg, &mut SinkhornScratch::new())
}

/// As [`sinkhorn_emd`], running out of a caller-kept scratch: no
/// intermediate signature is materialized (weights are normalized on the
/// fly) and a warm call allocates nothing. Bit-identical to
/// [`sinkhorn_emd`].
///
/// # Errors
/// As [`sinkhorn_emd`].
///
/// # Panics
/// Panics on an invalid [`SinkhornConfig`].
pub fn sinkhorn_emd_with<G: GroundDistance>(
    a: &Signature,
    b: &Signature,
    ground: &G,
    cfg: &SinkhornConfig,
    s: &mut SinkhornScratch,
) -> Result<f64, EmdError> {
    cfg.validate().expect("invalid Sinkhorn config");
    if a.dim() != b.dim() {
        return Err(EmdError::DimensionMismatch {
            left: a.dim(),
            right: b.dim(),
        });
    }
    let total_a = a.total_weight();
    let total_b = b.total_weight();
    if total_a <= 0.0 || total_b <= 0.0 {
        return Err(EmdError::ZeroMass);
    }
    // Keep only positive-weight entries (the log domain needs ln w) and
    // normalize to unit mass — the same values `Signature::normalized`
    // used to produce, without building the intermediate signatures.
    s.idx_a.clear();
    s.wa.clear();
    for (k, &w) in a.weights().iter().enumerate() {
        let wn = w / total_a;
        if wn > 0.0 {
            s.idx_a.push(k);
            s.wa.push(wn);
        }
    }
    s.idx_b.clear();
    s.wb.clear();
    for (k, &w) in b.weights().iter().enumerate() {
        let wn = w / total_b;
        if wn > 0.0 {
            s.idx_b.push(k);
            s.wb.push(wn);
        }
    }
    let (m, n) = (s.idx_a.len(), s.idx_b.len());
    if m == 0 || n == 0 {
        return Err(EmdError::ZeroMass);
    }

    s.cost.clear();
    s.cost.reserve(m * n);
    for &i in &s.idx_a {
        for &j in &s.idx_b {
            s.cost.push(ground.distance(&a.points()[i], &b.points()[j]));
        }
    }
    let eps = cfg.epsilon;
    s.log_a.clear();
    s.log_a.extend(s.wa.iter().map(|w| w.ln()));
    s.log_b.clear();
    s.log_b.extend(s.wb.iter().map(|w| w.ln()));

    // Log-domain potentials f, g.
    s.f.clear();
    s.f.resize(m, 0.0);
    s.g.clear();
    s.g.resize(n, 0.0);
    s.row_lse.clear();
    s.row_lse.resize(m, 0.0);
    let (cost, log_a, log_b) = (&s.cost, &s.log_a, &s.log_b);
    let (f, g, row_lse) = (&mut s.f, &mut s.g, &mut s.row_lse);

    let mut sweeps = 0u64;
    let mut last_violation = f64::INFINITY;
    for _ in 0..cfg.max_iters {
        sweeps += 1;
        // f_i = eps * (log a_i - LSE_j[(g_j - c_ij)/eps])
        for i in 0..m {
            let mut max = f64::NEG_INFINITY;
            for j in 0..n {
                let v = (g[j] - cost[i * n + j]) / eps;
                if v > max {
                    max = v;
                }
            }
            let mut sum = 0.0;
            for j in 0..n {
                sum += ((g[j] - cost[i * n + j]) / eps - max).exp();
            }
            f[i] = eps * (log_a[i] - max - sum.ln());
        }
        // g_j update symmetric.
        for j in 0..n {
            let mut max = f64::NEG_INFINITY;
            for i in 0..m {
                let v = (f[i] - cost[i * n + j]) / eps;
                if v > max {
                    max = v;
                }
            }
            let mut sum = 0.0;
            for i in 0..m {
                sum += ((f[i] - cost[i * n + j]) / eps - max).exp();
            }
            g[j] = eps * (log_b[j] - max - sum.ln());
        }

        // Marginal violation of the row sums.
        let mut violation = 0.0;
        for i in 0..m {
            let mut row = 0.0;
            for j in 0..n {
                row += ((f[i] + g[j] - cost[i * n + j]) / eps).exp();
            }
            row_lse[i] = row;
            violation += (row - s.wa[i]).abs();
        }
        last_violation = violation;
        if violation < cfg.tol {
            break;
        }
    }

    // Transport cost of the (near-feasible) plan.
    let mut total = 0.0;
    for i in 0..m {
        for j in 0..n {
            let p = ((f[i] + g[j] - cost[i * n + j]) / eps).exp();
            total += p * cost[i * n + j];
        }
    }
    if !total.is_finite() {
        return Err(EmdError::DidNotConverge);
    }
    s.solves += 1;
    s.sweeps += sweeps;
    s.last_violation = last_violation;
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::Euclidean;

    fn sig(points: Vec<Vec<f64>>, weights: Vec<f64>) -> Signature {
        Signature::new(points, weights).expect("valid signature")
    }

    #[test]
    fn matches_exact_on_point_masses() {
        let a = sig(vec![vec![0.0]], vec![1.0]);
        let b = sig(vec![vec![3.0]], vec![1.0]);
        let d = sinkhorn_emd(&a, &b, &Euclidean, &SinkhornConfig::default()).unwrap();
        assert!((d - 3.0).abs() < 1e-6, "sinkhorn {d}");
    }

    #[test]
    fn converges_to_exact_as_epsilon_shrinks() {
        let a = sig(vec![vec![0.0], vec![1.0], vec![2.0]], vec![1.0, 2.0, 1.0]);
        let b = sig(vec![vec![0.5], vec![2.5]], vec![2.0, 2.0]);
        let exact = crate::emd(
            &a.normalized().unwrap(),
            &b.normalized().unwrap(),
            &Euclidean,
        )
        .unwrap();
        let mut prev_err = f64::INFINITY;
        for eps in [0.5, 0.1, 0.02] {
            let d = sinkhorn_emd(
                &a,
                &b,
                &Euclidean,
                &SinkhornConfig {
                    epsilon: eps,
                    max_iters: 5000,
                    ..Default::default()
                },
            )
            .unwrap();
            let err = (d - exact).abs();
            assert!(
                err <= prev_err + 1e-9,
                "error should shrink with eps: {err} vs {prev_err}"
            );
            prev_err = err;
        }
        assert!(prev_err < 0.05, "final gap {prev_err}");
    }

    #[test]
    fn zero_distance_for_identical() {
        let a = sig(vec![vec![0.0, 1.0], vec![2.0, 3.0]], vec![1.0, 1.0]);
        let d = sinkhorn_emd(&a, &a, &Euclidean, &SinkhornConfig::default()).unwrap();
        assert!(d.abs() < 0.05, "self-distance {d}");
    }

    #[test]
    fn symmetric() {
        let a = sig(vec![vec![0.0], vec![4.0]], vec![1.0, 3.0]);
        let b = sig(vec![vec![1.0], vec![2.0]], vec![2.0, 2.0]);
        let cfg = SinkhornConfig::default();
        let ab = sinkhorn_emd(&a, &b, &Euclidean, &cfg).unwrap();
        let ba = sinkhorn_emd(&b, &a, &Euclidean, &cfg).unwrap();
        assert!((ab - ba).abs() < 1e-6);
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let a = sig(vec![vec![0.0]], vec![1.0]);
        let b = sig(vec![vec![0.0, 0.0]], vec![1.0]);
        assert!(matches!(
            sinkhorn_emd(&a, &b, &Euclidean, &SinkhornConfig::default()),
            Err(EmdError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn dirty_scratch_reuse_is_bit_identical() {
        let mut scratch = SinkhornScratch::new();
        let cfg = SinkhornConfig::default();
        let pairs = [
            (
                sig(vec![vec![0.0], vec![4.0]], vec![1.0, 3.0]),
                sig(vec![vec![1.0], vec![2.0]], vec![2.0, 2.0]),
            ),
            (
                sig(vec![vec![0.0, 1.0]], vec![1.0]),
                sig(vec![vec![2.0, 3.0], vec![0.5, 0.5]], vec![1.0, 0.0]),
            ),
            (
                sig(vec![vec![0.0], vec![1.0], vec![2.0]], vec![1.0, 2.0, 1.0]),
                sig(vec![vec![0.5], vec![2.5]], vec![2.0, 2.0]),
            ),
        ];
        for (a, b) in &pairs {
            let fresh = sinkhorn_emd(a, b, &Euclidean, &cfg).unwrap();
            let reused = sinkhorn_emd_with(a, b, &Euclidean, &cfg, &mut scratch).unwrap();
            assert_eq!(fresh.to_bits(), reused.to_bits());
        }
    }

    #[test]
    fn config_validation() {
        assert!(SinkhornConfig {
            epsilon: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SinkhornConfig::default().validate().is_ok());
    }
}
