//! Entropy-regularized optimal transport (Sinkhorn–Knopp iteration).
//!
//! An *extension* beyond the paper: the transportation simplex computes
//! the exact EMD but costs roughly `O(K^3)` per pair; Sinkhorn iteration
//! solves the entropy-regularized relaxation in `O(K^2)` per sweep and
//! converges to the exact cost as the regularization `epsilon → 0`. The
//! ablation benchmark compares the two; the detector keeps the exact
//! solver as its default because signature sizes in this problem are
//! small.
//!
//! The regularized problem requires equal total mass; inputs are
//! normalized to probability vectors first, so `sinkhorn_emd`
//! approximates the EMD of the *normalized* signatures (which equals
//! Eq. 12's value whenever the masses were proportional to begin with).

use crate::error::EmdError;
use crate::ground::GroundDistance;
use crate::signature::Signature;

/// Configuration of the Sinkhorn solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinkhornConfig {
    /// Entropic regularization ε (> 0). Smaller is closer to the exact
    /// EMD but needs more iterations and risks underflow; 0.01–0.1 of
    /// the typical ground distance works well.
    pub epsilon: f64,
    /// Maximum Sinkhorn sweeps.
    pub max_iters: usize,
    /// Convergence tolerance on the marginal violation (L1).
    pub tol: f64,
}

impl Default for SinkhornConfig {
    fn default() -> Self {
        SinkhornConfig {
            epsilon: 0.05,
            max_iters: 2000,
            tol: 1e-9,
        }
    }
}

impl SinkhornConfig {
    /// Check parameters.
    ///
    /// # Errors
    /// Returns a description of the problem.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.epsilon.is_finite() && self.epsilon > 0.0) {
            return Err("epsilon must be finite and > 0".into());
        }
        if self.max_iters == 0 {
            return Err("max_iters must be >= 1".into());
        }
        Ok(())
    }
}

/// Entropy-regularized transport cost between two signatures
/// (normalized to unit mass), in log domain for numerical stability.
///
/// Returns the *transport* part of the objective,
/// `Σ_ij P_ij d_ij`, which upper-bounds the exact EMD and converges to
/// it as ε → 0.
///
/// # Errors
/// [`EmdError::ZeroMass`] for massless signatures,
/// [`EmdError::DimensionMismatch`] for incompatible points,
/// [`EmdError::DidNotConverge`] if the marginals fail to converge.
///
/// # Panics
/// Panics on an invalid [`SinkhornConfig`].
pub fn sinkhorn_emd<G: GroundDistance>(
    a: &Signature,
    b: &Signature,
    ground: &G,
    cfg: &SinkhornConfig,
) -> Result<f64, EmdError> {
    cfg.validate().expect("invalid Sinkhorn config");
    if a.dim() != b.dim() {
        return Err(EmdError::DimensionMismatch {
            left: a.dim(),
            right: b.dim(),
        });
    }
    let a = a.normalized()?;
    let b = b.normalized()?;
    // Drop zero-weight entries to keep the log domain clean.
    let (pa, wa): (Vec<&[f64]>, Vec<f64>) = a.iter().filter(|&(_, w)| w > 0.0).unzip();
    let (pb, wb): (Vec<&[f64]>, Vec<f64>) = b.iter().filter(|&(_, w)| w > 0.0).unzip();
    let (m, n) = (pa.len(), pb.len());
    if m == 0 || n == 0 {
        return Err(EmdError::ZeroMass);
    }

    let mut cost = vec![0.0; m * n];
    for (i, p) in pa.iter().enumerate() {
        for (j, q) in pb.iter().enumerate() {
            cost[i * n + j] = ground.distance(p, q);
        }
    }
    let eps = cfg.epsilon;
    let log_a: Vec<f64> = wa.iter().map(|w| w.ln()).collect();
    let log_b: Vec<f64> = wb.iter().map(|w| w.ln()).collect();

    // Log-domain potentials f, g.
    let mut f = vec![0.0; m];
    let mut g = vec![0.0; n];
    let mut row_lse = vec![0.0; m];

    for _ in 0..cfg.max_iters {
        // f_i = eps * (log a_i - LSE_j[(g_j - c_ij)/eps])
        for i in 0..m {
            let mut max = f64::NEG_INFINITY;
            for j in 0..n {
                let v = (g[j] - cost[i * n + j]) / eps;
                if v > max {
                    max = v;
                }
            }
            let mut sum = 0.0;
            for j in 0..n {
                sum += ((g[j] - cost[i * n + j]) / eps - max).exp();
            }
            f[i] = eps * (log_a[i] - max - sum.ln());
        }
        // g_j update symmetric.
        for j in 0..n {
            let mut max = f64::NEG_INFINITY;
            for i in 0..m {
                let v = (f[i] - cost[i * n + j]) / eps;
                if v > max {
                    max = v;
                }
            }
            let mut sum = 0.0;
            for i in 0..m {
                sum += ((f[i] - cost[i * n + j]) / eps - max).exp();
            }
            g[j] = eps * (log_b[j] - max - sum.ln());
        }

        // Marginal violation of the row sums.
        let mut violation = 0.0;
        for i in 0..m {
            let mut row = 0.0;
            for j in 0..n {
                row += ((f[i] + g[j] - cost[i * n + j]) / eps).exp();
            }
            row_lse[i] = row;
            violation += (row - wa[i]).abs();
        }
        if violation < cfg.tol {
            break;
        }
    }

    // Transport cost of the (near-feasible) plan.
    let mut total = 0.0;
    for i in 0..m {
        for j in 0..n {
            let p = ((f[i] + g[j] - cost[i * n + j]) / eps).exp();
            total += p * cost[i * n + j];
        }
    }
    if !total.is_finite() {
        return Err(EmdError::DidNotConverge);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::Euclidean;

    fn sig(points: Vec<Vec<f64>>, weights: Vec<f64>) -> Signature {
        Signature::new(points, weights).expect("valid signature")
    }

    #[test]
    fn matches_exact_on_point_masses() {
        let a = sig(vec![vec![0.0]], vec![1.0]);
        let b = sig(vec![vec![3.0]], vec![1.0]);
        let d = sinkhorn_emd(&a, &b, &Euclidean, &SinkhornConfig::default()).unwrap();
        assert!((d - 3.0).abs() < 1e-6, "sinkhorn {d}");
    }

    #[test]
    fn converges_to_exact_as_epsilon_shrinks() {
        let a = sig(vec![vec![0.0], vec![1.0], vec![2.0]], vec![1.0, 2.0, 1.0]);
        let b = sig(vec![vec![0.5], vec![2.5]], vec![2.0, 2.0]);
        let exact = crate::emd(
            &a.normalized().unwrap(),
            &b.normalized().unwrap(),
            &Euclidean,
        )
        .unwrap();
        let mut prev_err = f64::INFINITY;
        for eps in [0.5, 0.1, 0.02] {
            let d = sinkhorn_emd(
                &a,
                &b,
                &Euclidean,
                &SinkhornConfig {
                    epsilon: eps,
                    max_iters: 5000,
                    ..Default::default()
                },
            )
            .unwrap();
            let err = (d - exact).abs();
            assert!(
                err <= prev_err + 1e-9,
                "error should shrink with eps: {err} vs {prev_err}"
            );
            prev_err = err;
        }
        assert!(prev_err < 0.05, "final gap {prev_err}");
    }

    #[test]
    fn zero_distance_for_identical() {
        let a = sig(vec![vec![0.0, 1.0], vec![2.0, 3.0]], vec![1.0, 1.0]);
        let d = sinkhorn_emd(&a, &a, &Euclidean, &SinkhornConfig::default()).unwrap();
        assert!(d.abs() < 0.05, "self-distance {d}");
    }

    #[test]
    fn symmetric() {
        let a = sig(vec![vec![0.0], vec![4.0]], vec![1.0, 3.0]);
        let b = sig(vec![vec![1.0], vec![2.0]], vec![2.0, 2.0]);
        let cfg = SinkhornConfig::default();
        let ab = sinkhorn_emd(&a, &b, &Euclidean, &cfg).unwrap();
        let ba = sinkhorn_emd(&b, &a, &Euclidean, &cfg).unwrap();
        assert!((ab - ba).abs() < 1e-6);
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let a = sig(vec![vec![0.0]], vec![1.0]);
        let b = sig(vec![vec![0.0, 0.0]], vec![1.0]);
        assert!(matches!(
            sinkhorn_emd(&a, &b, &Euclidean, &SinkhornConfig::default()),
            Err(EmdError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn config_validation() {
        assert!(SinkhornConfig {
            epsilon: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SinkhornConfig::default().validate().is_ok());
    }
}
