//! Cheap EMD bounds — the decision ladder of the tiered solver.
//!
//! Three classic results bracket the exact transportation value without
//! running the simplex:
//!
//! 1. **Centroid lower bound** (Rubner et al.): for equal total masses
//!    and a ground distance induced by a norm, the distance between the
//!    weighted centroids is a lower bound of the EMD — by convexity,
//!    `d(mean_a, mean_b) = d(Σ p_k w_k, Σ q_l w'_l) <= Σ f_kl d(p_k,
//!    q_l)`.
//! 2. **Projected 1-D lower bound**: projecting both signatures onto a
//!    coordinate axis maps the optimal plan to a feasible 1-D plan, so
//!    the exact 1-D EMD of any coordinate projection lower-bounds the
//!    full EMD whenever the coordinate map is 1-Lipschitz under the
//!    ground distance (true for Euclidean, Manhattan, and Chebyshev).
//!    The maximum over coordinates is taken.
//! 3. **Feasible-flow upper bound**: the cost of *any* feasible plan
//!    upper-bounds the optimum; the northwest-corner greedy plan is
//!    computed in `O(k + l)` after the ground costs and is valid
//!    unconditionally (equal masses not required — it transports
//!    exactly `min(W_a, W_b)`, the Eq. 11 total).
//!
//! The lower bounds require (near-)equal total masses because Eq. 12
//! normalizes by the *transported* mass: with unequal masses part of
//! the heavier signature is simply dropped and neither bound argument
//! survives. The gate mirrors `one_d::emd_1d`'s relative tolerance.

use crate::ground::GroundDistance;
use crate::one_d::emd_1d_events;
use crate::signature::Signature;

/// Relative tolerance under which two total masses count as equal (the
/// same gate [`crate::emd_1d`] applies).
const MASS_TOL: f64 = 1e-9;

/// Reusable buffers for the bound ladder: centroid accumulators and the
/// merged 1-D event list. One scratch serves every pair a caller
/// evaluates; warm calls allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct LadderScratch {
    centroid_a: Vec<f64>,
    centroid_b: Vec<f64>,
    events: Vec<(f64, f64)>,
}

impl LadderScratch {
    /// Empty scratch; buffers grow to the signatures' shape on first use.
    pub fn new() -> Self {
        LadderScratch::default()
    }
}

/// A `[lb, ub]` bracket around the exact EMD value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bracket {
    /// Proven lower bound (0 when no lower bound applies).
    pub lb: f64,
    /// Proven upper bound.
    pub ub: f64,
}

impl Bracket {
    /// Bracket width `ub - lb`.
    pub fn width(&self) -> f64 {
        self.ub - self.lb
    }

    /// Bracket midpoint — within `width / 2` of every value inside.
    pub fn midpoint(&self) -> f64 {
        0.5 * (self.lb + self.ub)
    }

    /// Clamp `value` into the bracket (an estimate known to be
    /// `<= width` from the exact value stays so after clamping).
    pub fn clamp(&self, value: f64) -> f64 {
        value.max(self.lb).min(self.ub)
    }
}

/// The common total mass when `a` and `b` have equal masses (within the
/// relative [`MASS_TOL`]); `None` otherwise.
fn equal_masses(a: &Signature, b: &Signature) -> Option<f64> {
    let wa = a.total_weight();
    let wb = b.total_weight();
    if wa > 0.0 && wb > 0.0 && (wa - wb).abs() <= MASS_TOL * wa.max(wb) {
        Some(wa)
    } else {
        None
    }
}

/// Accumulate the normalized weighted centroid of `s` into `out`.
fn centroid_into(s: &Signature, out: &mut Vec<f64>) {
    out.clear();
    out.resize(s.dim(), 0.0);
    for (p, w) in s.iter() {
        for (o, &x) in out.iter_mut().zip(p) {
            *o += w * x;
        }
    }
    let total = s.total_weight();
    for o in out.iter_mut() {
        *o /= total;
    }
}

/// Rubner's centroid lower bound: `d(mean_a, mean_b) <= EMD(a, b)`.
///
/// Sound only for equal total masses (returns `None` otherwise) and a
/// ground distance induced by a norm — which covers every metric the
/// detector exposes (Euclidean, Manhattan, Chebyshev, weighted
/// Euclidean).
pub fn centroid_lower_bound_with<G: GroundDistance>(
    a: &Signature,
    b: &Signature,
    ground: &G,
    scratch: &mut LadderScratch,
) -> Option<f64> {
    equal_masses(a, b)?;
    centroid_into(a, &mut scratch.centroid_a);
    centroid_into(b, &mut scratch.centroid_b);
    Some(ground.distance(&scratch.centroid_a, &scratch.centroid_b))
}

/// Projected 1-D lower bound: the exact 1-D EMD of each coordinate
/// projection, maximized over coordinates.
///
/// Sound only for equal total masses (returns `None` otherwise) and
/// ground distances under which every coordinate map is 1-Lipschitz
/// (`|x_c - y_c| <= d(x, y)`): Euclidean, Manhattan, Chebyshev. Not
/// sound for a weighted Euclidean with a per-dimension weight below 1.
pub fn projected_lower_bound_with(
    a: &Signature,
    b: &Signature,
    scratch: &mut LadderScratch,
) -> Option<f64> {
    let mass = equal_masses(a, b)?;
    let mut best = 0.0f64;
    for c in 0..a.dim() {
        scratch.events.clear();
        for (p, w) in a.iter() {
            scratch.events.push((p[c], w));
        }
        for (q, w) in b.iter() {
            scratch.events.push((q[c], -w));
        }
        best = best.max(emd_1d_events(&mut scratch.events, mass));
    }
    Some(best)
}

/// Feasible-flow upper bound: the cost per unit flow of the
/// northwest-corner greedy plan (walk both weight lists front to front,
/// always transporting as much as the current pair allows). Valid for
/// any ground distance and any masses — it is the cost of an actual
/// feasible plan moving `min(W_a, W_b)`.
pub fn feasible_upper_bound<G: GroundDistance>(a: &Signature, b: &Signature, ground: &G) -> f64 {
    let (pa, wa) = (a.points(), a.weights());
    let (pb, wb) = (b.points(), b.weights());
    let mut i = 0;
    let mut j = 0;
    let mut ra = wa[0];
    let mut rb = wb[0];
    let mut cost = 0.0;
    let mut flow = 0.0;
    while i < pa.len() && j < pb.len() {
        let f = ra.min(rb);
        if f > 0.0 {
            cost += f * ground.distance(&pa[i], &pb[j]);
            flow += f;
            ra -= f;
            rb -= f;
        }
        // Advance whichever side ran dry (both on an exact tie: the f
        // == 0 guard above tolerates zero-weight entries either way).
        if ra <= rb {
            i += 1;
            if i < pa.len() {
                ra = wa[i];
            }
        } else {
            j += 1;
            if j < pb.len() {
                rb = wb[j];
            }
        }
    }
    if flow <= 0.0 {
        return 0.0;
    }
    cost / flow
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground::{Chebyshev, Euclidean, Manhattan};
    use crate::{emd, Signature};

    fn sig(points: Vec<Vec<f64>>, weights: Vec<f64>) -> Signature {
        Signature::new(points, weights).unwrap()
    }

    fn pair() -> (Signature, Signature) {
        (
            sig(
                vec![vec![0.0, 1.0], vec![2.0, -1.0], vec![4.0, 0.5]],
                vec![1.0, 2.0, 0.5],
            ),
            sig(vec![vec![1.0, 0.0], vec![3.0, 2.0]], vec![2.5, 1.0]),
        )
    }

    #[test]
    fn centroid_bound_is_below_exact() {
        let (a, b) = pair();
        let mut scratch = LadderScratch::new();
        let exact = emd(&a, &b, &Euclidean).unwrap();
        let lb = centroid_lower_bound_with(&a, &b, &Euclidean, &mut scratch).unwrap();
        assert!(lb <= exact + 1e-12, "{lb} vs {exact}");
    }

    #[test]
    fn projection_bound_is_below_exact_for_lipschitz_metrics() {
        let (a, b) = pair();
        let mut scratch = LadderScratch::new();
        let lb = projected_lower_bound_with(&a, &b, &mut scratch).unwrap();
        for metric in [&Euclidean as &dyn GroundDistance, &Manhattan, &Chebyshev] {
            let exact = emd(&a, &b, &metric).unwrap();
            assert!(lb <= exact + 1e-12, "{lb} vs {exact}");
        }
    }

    #[test]
    fn feasible_bound_is_above_exact() {
        let (a, b) = pair();
        let exact = emd(&a, &b, &Euclidean).unwrap();
        let ub = feasible_upper_bound(&a, &b, &Euclidean);
        assert!(ub >= exact - 1e-12, "{ub} vs {exact}");
    }

    #[test]
    fn upper_bound_valid_for_unequal_masses() {
        let a = sig(vec![vec![0.0], vec![10.0]], vec![3.0, 1.0]);
        let b = sig(vec![vec![1.0]], vec![1.0]);
        let exact = emd(&a, &b, &Euclidean).unwrap();
        let ub = feasible_upper_bound(&a, &b, &Euclidean);
        assert!(ub >= exact - 1e-12, "{ub} vs {exact}");
    }

    #[test]
    fn lower_bounds_decline_unequal_masses() {
        let a = sig(vec![vec![0.0]], vec![2.0]);
        let b = sig(vec![vec![1.0]], vec![1.0]);
        let mut scratch = LadderScratch::new();
        assert!(centroid_lower_bound_with(&a, &b, &Euclidean, &mut scratch).is_none());
        assert!(projected_lower_bound_with(&a, &b, &mut scratch).is_none());
    }

    #[test]
    fn point_mass_pair_brackets_tightly() {
        // Two unit point masses: every tier equals the exact distance.
        let a = sig(vec![vec![0.0, 0.0]], vec![1.0]);
        let b = sig(vec![vec![3.0, 4.0]], vec![1.0]);
        let mut scratch = LadderScratch::new();
        let exact = emd(&a, &b, &Euclidean).unwrap();
        let lb = centroid_lower_bound_with(&a, &b, &Euclidean, &mut scratch).unwrap();
        let ub = feasible_upper_bound(&a, &b, &Euclidean);
        assert!((lb - exact).abs() < 1e-12);
        assert!((ub - exact).abs() < 1e-12);
        // The best coordinate projection sees only one axis: 4 here.
        let proj = projected_lower_bound_with(&a, &b, &mut scratch).unwrap();
        assert!((proj - 4.0).abs() < 1e-12);
        assert!(proj <= exact + 1e-12);
    }

    #[test]
    fn bracket_helpers() {
        let br = Bracket { lb: 1.0, ub: 3.0 };
        assert_eq!(br.width(), 2.0);
        assert_eq!(br.midpoint(), 2.0);
        assert_eq!(br.clamp(0.0), 1.0);
        assert_eq!(br.clamp(5.0), 3.0);
        assert_eq!(br.clamp(2.5), 2.5);
    }

    #[test]
    fn warm_scratch_reuse_is_bit_identical() {
        let (a, b) = pair();
        let mut shared = LadderScratch::new();
        // Drive a differently shaped pair through first to dirty it.
        let (c, d) = (
            sig(vec![vec![9.0, 9.0, 9.0]], vec![4.0]),
            sig(vec![vec![1.0, 2.0, 3.0]], vec![4.0]),
        );
        centroid_lower_bound_with(&c, &d, &Euclidean, &mut shared);
        projected_lower_bound_with(&c, &d, &mut shared);
        let mut fresh = LadderScratch::new();
        assert_eq!(
            centroid_lower_bound_with(&a, &b, &Euclidean, &mut shared)
                .unwrap()
                .to_bits(),
            centroid_lower_bound_with(&a, &b, &Euclidean, &mut fresh)
                .unwrap()
                .to_bits()
        );
        assert_eq!(
            projected_lower_bound_with(&a, &b, &mut shared)
                .unwrap()
                .to_bits(),
            projected_lower_bound_with(&a, &b, &mut fresh)
                .unwrap()
                .to_bits()
        );
    }
}
