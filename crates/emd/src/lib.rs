//! Earth Mover's Distance (§3.2 of Koshijima, Hino & Murata, TKDE 2015).
//!
//! Signatures `S = {(u_k, w_k)}` are compared by solving the
//! transportation problem of Eqs. (7)–(11): find the flow `f_kl >= 0`
//! minimizing `Σ f_kl d_kl` subject to row sums `<= w_k`, column sums
//! `<= w'_l`, and total flow equal to `min(Σ w_k, Σ w'_l)`. The EMD is
//! the optimal cost normalized by the total flow (Eq. 12), which makes it
//! well-defined for signatures of unequal total mass — exactly the
//! situation with bags of varying size.
//!
//! The solver is a from-scratch transportation simplex
//! (northwest-corner initialization, MODI/u-v optimality test,
//! stepping-stone pivots with Bland's anti-cycling fallback). Unequal masses are balanced with a
//! zero-cost slack node, the textbook reduction. A closed-form `O(n log
//! n)` solver for the 1-D equal-mass case is provided both as a fast path
//! and as an independent oracle for property tests.

pub mod bounds;
pub mod error;
pub mod ground;
pub mod one_d;
pub mod signature;
pub mod sinkhorn;
pub mod transport;

pub use bounds::{
    centroid_lower_bound_with, feasible_upper_bound, projected_lower_bound_with, Bracket,
    LadderScratch,
};
pub use error::EmdError;
pub use ground::{Chebyshev, Euclidean, GroundDistance, Manhattan, WeightedEuclidean};
pub use one_d::{emd_1d, emd_1d_events};
pub use signature::Signature;
pub use sinkhorn::{
    sinkhorn_emd, sinkhorn_emd_with, SinkhornConfig, SinkhornScratch, SinkhornStats,
};
pub use transport::{
    solve_transportation, solve_transportation_with, TransportPlan, TransportScratch,
    TransportStats,
};

/// Earth Mover's Distance between two signatures under a ground distance.
///
/// Implements Eqs. (7)–(12) of the paper. Masses need not match: the
/// smaller total mass is fully transported and the distance is cost per
/// unit of transported mass.
///
/// Equivalent to [`emd_with`] with a fresh [`TransportScratch`]; hot
/// loops solving many pairs should keep one scratch and call that.
///
/// # Errors
/// Returns an error if either signature has zero total mass, dimensions
/// disagree, or the solver fails to converge (which the iteration cap
/// makes effectively unreachable for sane inputs).
pub fn emd<G: GroundDistance>(a: &Signature, b: &Signature, ground: &G) -> Result<f64, EmdError> {
    emd_with(a, b, ground, &mut TransportScratch::new())
}

/// As [`emd`], running entirely out of a caller-kept scratch: the ground
/// cost matrix, the simplex tableau, and every solver working set live
/// in `scratch`, so a warm call performs no heap allocation at all (the
/// flow plan is never materialized). Bit-identical to [`emd`].
///
/// # Errors
/// See [`emd`].
pub fn emd_with<G: GroundDistance>(
    a: &Signature,
    b: &Signature,
    ground: &G,
    scratch: &mut TransportScratch,
) -> Result<f64, EmdError> {
    let mut costs = std::mem::take(&mut scratch.ground);
    let checked = fill_ground_costs(a, b, ground, &mut costs);
    let result = checked
        .and_then(|()| transport::solve_cost_flow(&costs, a.weights(), b.weights(), scratch));
    scratch.ground = costs;
    let (total_cost, total_flow) = result?;
    if total_flow <= 0.0 {
        return Err(EmdError::ZeroMass);
    }
    Ok(total_cost / total_flow)
}

/// As [`emd`], also returning the optimal flow plan for diagnostics.
///
/// # Errors
/// See [`emd`].
pub fn emd_with_flow<G: GroundDistance>(
    a: &Signature,
    b: &Signature,
    ground: &G,
) -> Result<(f64, TransportPlan), EmdError> {
    emd_with_flow_with(a, b, ground, &mut TransportScratch::new())
}

/// As [`emd_with_flow`], reusing a caller-kept scratch; only the
/// returned plan's flow list is allocated. Bit-identical to
/// [`emd_with_flow`].
///
/// # Errors
/// See [`emd`].
pub fn emd_with_flow_with<G: GroundDistance>(
    a: &Signature,
    b: &Signature,
    ground: &G,
    scratch: &mut TransportScratch,
) -> Result<(f64, TransportPlan), EmdError> {
    let mut costs = std::mem::take(&mut scratch.ground);
    let checked = fill_ground_costs(a, b, ground, &mut costs);
    let result =
        checked.and_then(|()| solve_transportation_with(&costs, a.weights(), b.weights(), scratch));
    scratch.ground = costs;
    let plan = result?;
    let total_flow = plan.total_flow();
    if total_flow <= 0.0 {
        return Err(EmdError::ZeroMass);
    }
    Ok((plan.total_cost() / total_flow, plan))
}

/// Validate a signature pair and fill the pairwise ground-distance
/// matrix into a reused buffer (the shared front half of both `emd_with`
/// forms).
fn fill_ground_costs<G: GroundDistance>(
    a: &Signature,
    b: &Signature,
    ground: &G,
    costs: &mut Vec<f64>,
) -> Result<(), EmdError> {
    if a.dim() != b.dim() {
        return Err(EmdError::DimensionMismatch {
            left: a.dim(),
            right: b.dim(),
        });
    }
    let wa = a.total_weight();
    let wb = b.total_weight();
    if wa <= 0.0 || wb <= 0.0 {
        return Err(EmdError::ZeroMass);
    }
    costs.clear();
    costs.reserve(a.len() * b.len());
    for (pa, _) in a.iter() {
        for (pb, _) in b.iter() {
            costs.push(ground.distance(pa, pb));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(points: Vec<Vec<f64>>, weights: Vec<f64>) -> Signature {
        Signature::new(points, weights).unwrap()
    }

    #[test]
    fn identical_signatures_have_zero_distance() {
        let s = sig(vec![vec![0.0, 0.0], vec![1.0, 1.0]], vec![2.0, 3.0]);
        let d = emd(&s, &s, &Euclidean).unwrap();
        assert!(d.abs() < 1e-12, "self-distance {d}");
    }

    #[test]
    fn two_point_masses() {
        let a = sig(vec![vec![0.0]], vec![1.0]);
        let b = sig(vec![vec![3.0]], vec![1.0]);
        assert!((emd(&a, &b, &Euclidean).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn unequal_mass_point_masses() {
        // All of the smaller mass moves distance 3; Eq. 12 normalizes by
        // the transported mass, so the distance is still 3.
        let a = sig(vec![vec![0.0]], vec![5.0]);
        let b = sig(vec![vec![3.0]], vec![1.0]);
        assert!((emd(&a, &b, &Euclidean).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn partial_transport_prefers_near_mass() {
        // a has mass at 0 and 10; b wants 1 unit at 0.5. Optimal: take it
        // from the nearby pile. EMD = 0.5.
        let a = sig(vec![vec![0.0], vec![10.0]], vec![1.0, 1.0]);
        let b = sig(vec![vec![0.5]], vec![1.0]);
        assert!((emd(&a, &b, &Euclidean).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn classic_rubner_example_structure() {
        // 2x3 balanced example solvable by hand:
        // supplies (0,0)=0.4,(100,0)=0.6 ; demands (0,1)=0.5,(100,1)=0.3,(50,1)=0.2
        // Optimal: 0.4 from s0->d0 (1.0), 0.1 s1->d0 (cost 100.005),
        // 0.3 s1->d1 (1.0), 0.2 s1->d2 (50.01).
        let a = sig(vec![vec![0.0, 0.0], vec![100.0, 0.0]], vec![0.4, 0.6]);
        let b = sig(
            vec![vec![0.0, 1.0], vec![100.0, 1.0], vec![50.0, 1.0]],
            vec![0.5, 0.3, 0.2],
        );
        let (d, plan) = emd_with_flow(&a, &b, &Euclidean).unwrap();
        // Hand-computed optimum:
        let c00 = 1.0;
        let c10 = (100.0f64 * 100.0 + 1.0).sqrt();
        let c11 = 1.0;
        let c12 = (50.0f64 * 50.0 + 1.0).sqrt();
        let expected = 0.4 * c00 + 0.1 * c10 + 0.3 * c11 + 0.2 * c12;
        assert!((d - expected).abs() < 1e-9, "{d} vs {expected}");
        assert!((plan.total_flow() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn symmetry_for_equal_mass() {
        let a = sig(vec![vec![0.0], vec![2.0], vec![5.0]], vec![1.0, 2.0, 1.0]);
        let b = sig(vec![vec![1.0], vec![4.0]], vec![2.0, 2.0]);
        let dab = emd(&a, &b, &Euclidean).unwrap();
        let dba = emd(&b, &a, &Euclidean).unwrap();
        assert!((dab - dba).abs() < 1e-9);
    }

    #[test]
    fn triangle_inequality_equal_mass() {
        let a = sig(vec![vec![0.0]], vec![1.0]);
        let b = sig(vec![vec![1.0], vec![3.0]], vec![0.5, 0.5]);
        let c = sig(vec![vec![5.0]], vec![1.0]);
        let ab = emd(&a, &b, &Euclidean).unwrap();
        let bc = emd(&b, &c, &Euclidean).unwrap();
        let ac = emd(&a, &c, &Euclidean).unwrap();
        assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = sig(vec![vec![0.0]], vec![1.0]);
        let b = sig(vec![vec![0.0, 1.0]], vec![1.0]);
        assert!(matches!(
            emd(&a, &b, &Euclidean),
            Err(EmdError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn emd_with_dirty_scratch_is_bit_identical() {
        // One scratch across pairs of different shapes must reproduce
        // the allocating path exactly, for both the cost-only and the
        // flow-returning forms.
        let mut scratch = TransportScratch::new();
        let pairs = [
            (
                sig(vec![vec![0.0, 0.0], vec![100.0, 0.0]], vec![0.4, 0.6]),
                sig(
                    vec![vec![0.0, 1.0], vec![100.0, 1.0], vec![50.0, 1.0]],
                    vec![0.5, 0.3, 0.2],
                ),
            ),
            (
                sig(vec![vec![0.0, 1.0]], vec![5.0]),
                sig(vec![vec![3.0, 5.0]], vec![1.0]),
            ),
            (
                sig(vec![vec![0.0, 0.0], vec![2.0, 2.0]], vec![1.0, 0.0]),
                sig(vec![vec![1.0, 1.0]], vec![2.0]),
            ),
        ];
        for (a, b) in &pairs {
            let fresh = emd(a, b, &Euclidean).unwrap();
            let reused = emd_with(a, b, &Euclidean, &mut scratch).unwrap();
            assert_eq!(fresh.to_bits(), reused.to_bits());
            let (fresh_d, fresh_plan) = emd_with_flow(a, b, &Euclidean).unwrap();
            let (reused_d, reused_plan) =
                emd_with_flow_with(a, b, &Euclidean, &mut scratch).unwrap();
            assert_eq!(fresh_d.to_bits(), reused_d.to_bits());
            assert_eq!(fresh_plan, reused_plan);
        }
    }

    #[test]
    fn matches_1d_oracle_on_fixed_case() {
        let a = sig(vec![vec![0.0], vec![1.0], vec![2.0]], vec![1.0, 1.0, 1.0]);
        let b = sig(vec![vec![0.5], vec![1.5], vec![2.5]], vec![1.0, 1.0, 1.0]);
        let d = emd(&a, &b, &Euclidean).unwrap();
        let oracle = emd_1d(
            &[(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)],
            &[(0.5, 1.0), (1.5, 1.0), (2.5, 1.0)],
        )
        .unwrap();
        assert!((d - oracle).abs() < 1e-9, "{d} vs {oracle}");
    }
}
