//! Exact 1-D Earth Mover's Distance (equal-mass case).
//!
//! For two distributions on the line with equal total mass and
//! `d(x, y) = |x - y|`, the EMD equals the L1 distance between the CDFs:
//! `EMD = ∫ |F_a(x) - F_b(x)| dx / W` where `W` is the common mass.
//! This is both a fast path (`O(n log n)` vs simplex) and an independent
//! oracle the property tests compare the general solver against.

use crate::error::EmdError;

/// Exact 1-D EMD between weighted point sets of equal total mass.
///
/// Inputs are `(position, weight)` pairs in any order; weights must be
/// non-negative and the two total masses must agree to within a relative
/// `1e-9`. Returns cost per unit mass, matching Eq. (12).
///
/// # Errors
/// [`EmdError::NonFiniteInput`] for bad values, [`EmdError::ZeroMass`]
/// for empty/zero-mass input, and [`EmdError::InvalidSignature`] when the
/// masses differ (use the general solver for partial matches).
pub fn emd_1d(a: &[(f64, f64)], b: &[(f64, f64)]) -> Result<f64, EmdError> {
    for &(x, w) in a.iter().chain(b) {
        if !x.is_finite() || !w.is_finite() || w < 0.0 {
            return Err(EmdError::NonFiniteInput);
        }
    }
    let wa: f64 = a.iter().map(|&(_, w)| w).sum();
    let wb: f64 = b.iter().map(|&(_, w)| w).sum();
    if wa <= 0.0 || wb <= 0.0 {
        return Err(EmdError::ZeroMass);
    }
    if (wa - wb).abs() > 1e-9 * wa.max(wb) {
        return Err(EmdError::InvalidSignature(
            "emd_1d requires equal total mass",
        ));
    }

    // Sweep the merged event list accumulating |F_a - F_b| between
    // consecutive positions. Signs: +w for a-events, -w for b-events.
    let mut events: Vec<(f64, f64)> = Vec::with_capacity(a.len() + b.len());
    events.extend(a.iter().copied());
    events.extend(b.iter().map(|&(x, w)| (x, -w)));
    Ok(emd_1d_events(&mut events, wa))
}

/// CDF-sweep core of [`emd_1d`] over a pre-merged, pre-validated event
/// list: `(position, signed weight)` pairs (`+w` for side a, `-w` for
/// side b) with `common_mass` the (equal) total mass of either side.
/// Sorts `events` in place and allocates nothing — the bound ladder in
/// [`crate::bounds`] runs this per coordinate on a scratch buffer.
///
/// The caller is responsible for the [`emd_1d`] preconditions: finite
/// positions, finite weights, positive equal masses.
pub fn emd_1d_events(events: &mut [(f64, f64)], common_mass: f64) -> f64 {
    debug_assert!(!events.is_empty() && common_mass > 0.0);
    events.sort_unstable_by(|p, q| p.0.total_cmp(&q.0));

    let mut cost = 0.0;
    let mut cdf_gap: f64 = 0.0; // F_a(x) - F_b(x), unnormalized
    let mut prev_x = events[0].0;
    for &(x, signed_w) in events.iter() {
        cost += cdf_gap.abs() * (x - prev_x);
        cdf_gap += signed_w;
        prev_x = x;
    }
    cost / common_mass
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_masses() {
        let d = emd_1d(&[(0.0, 1.0)], &[(4.0, 1.0)]).unwrap();
        assert!((d - 4.0).abs() < 1e-12);
    }

    #[test]
    fn identical_distributions() {
        let a = [(0.0, 1.0), (2.0, 3.0), (5.0, 0.5)];
        assert!(emd_1d(&a, &a).unwrap().abs() < 1e-12);
    }

    #[test]
    fn translation_shifts_by_delta() {
        let a = [(0.0, 1.0), (1.0, 1.0), (2.0, 1.0)];
        let b = [(0.7, 1.0), (1.7, 1.0), (2.7, 1.0)];
        let d = emd_1d(&a, &b).unwrap();
        assert!((d - 0.7).abs() < 1e-12, "translation invariance: {d}");
    }

    #[test]
    fn split_mass() {
        // Unit mass at 0 vs half at -1 and half at +1: each half moves 1.
        let d = emd_1d(&[(0.0, 2.0)], &[(-1.0, 1.0), (1.0, 1.0)]).unwrap();
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unsorted_input_accepted() {
        let a = [(5.0, 1.0), (0.0, 1.0)];
        let b = [(1.0, 1.0), (4.0, 1.0)];
        let d = emd_1d(&a, &b).unwrap();
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn symmetry() {
        let a = [(0.0, 1.0), (3.0, 2.0)];
        let b = [(1.0, 2.0), (2.0, 1.0)];
        assert!((emd_1d(&a, &b).unwrap() - emd_1d(&b, &a).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn scale_invariance_of_weights() {
        // EMD is cost per unit mass: scaling all weights leaves it fixed.
        let a = [(0.0, 1.0), (2.0, 1.0)];
        let b = [(1.0, 1.0), (3.0, 1.0)];
        let a10 = [(0.0, 10.0), (2.0, 10.0)];
        let b10 = [(1.0, 10.0), (3.0, 10.0)];
        assert!((emd_1d(&a, &b).unwrap() - emd_1d(&a10, &b10).unwrap()).abs() < 1e-12);
    }

    #[test]
    fn rejects_mass_mismatch() {
        assert!(matches!(
            emd_1d(&[(0.0, 1.0)], &[(0.0, 2.0)]),
            Err(EmdError::InvalidSignature(_))
        ));
    }

    #[test]
    fn rejects_zero_mass_and_nan() {
        assert_eq!(emd_1d(&[], &[(0.0, 1.0)]), Err(EmdError::ZeroMass));
        assert_eq!(
            emd_1d(&[(f64::NAN, 1.0)], &[(0.0, 1.0)]),
            Err(EmdError::NonFiniteInput)
        );
        assert_eq!(
            emd_1d(&[(0.0, -1.0)], &[(0.0, 1.0)]),
            Err(EmdError::NonFiniteInput)
        );
    }

    #[test]
    fn events_core_matches_wrapper() {
        let a = [(0.3, 1.5), (2.0, 0.5), (-1.0, 1.0)];
        let b = [(1.0, 2.0), (4.0, 1.0)];
        let via_wrapper = emd_1d(&a, &b).unwrap();
        let mut events: Vec<(f64, f64)> = a.to_vec();
        events.extend(b.iter().map(|&(x, w)| (x, -w)));
        let via_core = emd_1d_events(&mut events, 3.0);
        assert_eq!(via_wrapper.to_bits(), via_core.to_bits());
    }

    #[test]
    fn coincident_points_with_different_weights() {
        let a = [(0.0, 1.0), (0.0, 1.0)]; // mass 2 at origin
        let b = [(1.0, 2.0)];
        let d = emd_1d(&a, &b).unwrap();
        assert!((d - 1.0).abs() < 1e-12);
    }
}
