//! Property-based tests for the EMD solver.
//!
//! The strongest check: on 1-D equal-mass inputs the transportation
//! simplex must agree with the closed-form CDF solver to within floating
//! tolerance, for arbitrary weighted point sets. Plus metric properties
//! (non-negativity, symmetry, identity, triangle inequality) on random
//! 2-D signatures.

use emd::{
    emd, emd_1d, emd_with, solve_transportation, solve_transportation_with, Euclidean, Signature,
    TransportScratch,
};
use proptest::prelude::*;

/// Strategy: a 1-D weighted point set with strictly positive weights.
fn weighted_points_1d(max_len: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec(((-50.0..50.0f64), (0.01..10.0f64)), 1..=max_len)
}

/// Strategy: a small 2-D signature.
fn signature_2d(max_len: usize) -> impl Strategy<Value = Signature> {
    prop::collection::vec(
        ((-20.0..20.0f64), (-20.0..20.0f64), (0.01..5.0f64)),
        1..=max_len,
    )
    .prop_map(|triples| {
        let points: Vec<Vec<f64>> = triples.iter().map(|&(x, y, _)| vec![x, y]).collect();
        let weights: Vec<f64> = triples.iter().map(|&(_, _, w)| w).collect();
        Signature::new(points, weights).expect("strategy produces valid signatures")
    })
}

/// Strategy: a random, frequently unbalanced and degenerate
/// transportation problem `(costs, supplies, demands)`. Marginals are
/// drawn from a tiny integer grid scaled by 0.5, so zero entries
/// (filtered rows/columns), exactly equal supplies/demands, and
/// tie-heavy costs — the degenerate-pivot cases — all occur with high
/// probability.
fn transport_problem() -> impl Strategy<Value = (Vec<f64>, Vec<f64>, Vec<f64>)> {
    ((1usize..=5), (1usize..=5)).prop_flat_map(|(m, n)| {
        (
            prop::collection::vec((0u8..4).prop_map(|c| c as f64), m * n),
            prop::collection::vec((0u8..4).prop_map(|s| s as f64 * 0.5), m),
            prop::collection::vec((0u8..4).prop_map(|d| d as f64 * 0.5), n),
        )
    })
}

/// Normalize a weighted point set to unit mass.
fn normalize(pts: &[(f64, f64)]) -> Vec<(f64, f64)> {
    let total: f64 = pts.iter().map(|&(_, w)| w).sum();
    pts.iter().map(|&(x, w)| (x, w / total)).collect()
}

fn to_signature_1d(pts: &[(f64, f64)]) -> Signature {
    let points: Vec<Vec<f64>> = pts.iter().map(|&(x, _)| vec![x]).collect();
    let weights: Vec<f64> = pts.iter().map(|&(_, w)| w).collect();
    Signature::new(points, weights).expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Transportation simplex == closed-form CDF distance in 1-D.
    #[test]
    fn simplex_matches_1d_oracle(
        a in weighted_points_1d(12),
        b in weighted_points_1d(12),
    ) {
        let a = normalize(&a);
        let b = normalize(&b);
        let oracle = emd_1d(&a, &b).unwrap();
        let solved = emd(&to_signature_1d(&a), &to_signature_1d(&b), &Euclidean).unwrap();
        prop_assert!(
            (oracle - solved).abs() < 1e-7 * (1.0 + oracle.abs()),
            "oracle {oracle} vs simplex {solved}"
        );
    }

    /// EMD is non-negative and zero on identical signatures.
    #[test]
    fn non_negative_and_identity(s in signature_2d(10)) {
        let d = emd(&s, &s, &Euclidean).unwrap();
        prop_assert!(d >= 0.0);
        prop_assert!(d < 1e-9, "self distance {d}");
    }

    /// EMD is symmetric (any masses — Eq. 12 is symmetric by construction).
    #[test]
    fn symmetric(a in signature_2d(8), b in signature_2d(8)) {
        let dab = emd(&a, &b, &Euclidean).unwrap();
        let dba = emd(&b, &a, &Euclidean).unwrap();
        prop_assert!((dab - dba).abs() < 1e-7 * (1.0 + dab.abs()), "{dab} vs {dba}");
    }

    /// Triangle inequality holds for normalized (equal-mass) signatures.
    #[test]
    fn triangle_inequality(
        a in signature_2d(6),
        b in signature_2d(6),
        c in signature_2d(6),
    ) {
        let a = a.normalized().unwrap();
        let b = b.normalized().unwrap();
        let c = c.normalized().unwrap();
        let ab = emd(&a, &b, &Euclidean).unwrap();
        let bc = emd(&b, &c, &Euclidean).unwrap();
        let ac = emd(&a, &c, &Euclidean).unwrap();
        prop_assert!(ac <= ab + bc + 1e-7, "ac={ac} > ab+bc={}", ab + bc);
    }

    /// Translating both signatures leaves the distance unchanged;
    /// translating one by `delta` changes a point-mass pair by |delta|.
    #[test]
    fn translation_behaviour(
        a in weighted_points_1d(8),
        delta in -10.0..10.0f64,
    ) {
        let a = normalize(&a);
        let shifted: Vec<(f64, f64)> = a.iter().map(|&(x, w)| (x + delta, w)).collect();
        let d = emd_1d(&a, &shifted).unwrap();
        prop_assert!((d - delta.abs()) < 1e-7, "shift distance {d} vs {}", delta.abs());
    }

    /// Scaling all weights of both signatures leaves Eq. 12 unchanged.
    #[test]
    fn mass_scale_invariance(
        a in signature_2d(6),
        b in signature_2d(6),
        scale in 0.1..100.0f64,
    ) {
        let d1 = emd(&a, &b, &Euclidean).unwrap();
        let a2 = Signature::new(
            a.points().to_vec(),
            a.weights().iter().map(|w| w * scale).collect(),
        ).unwrap();
        let b2 = Signature::new(
            b.points().to_vec(),
            b.weights().iter().map(|w| w * scale).collect(),
        ).unwrap();
        let d2 = emd(&a2, &b2, &Euclidean).unwrap();
        prop_assert!((d1 - d2).abs() < 1e-7 * (1.0 + d1.abs()), "{d1} vs {d2}");
    }

    /// The scratch-backed solver returns bit-identical `TransportPlan`s
    /// (cost, flow, and the flows list) to the allocating one across
    /// random unbalanced and degenerate problems, including repeated
    /// reuse of one dirty scratch across problems of varying shape.
    #[test]
    fn scratch_solver_is_bit_identical(
        problems in prop::collection::vec(transport_problem(), 1..6),
    ) {
        let mut scratch = TransportScratch::new();
        for (costs, supplies, demands) in &problems {
            let fresh = solve_transportation(costs, supplies, demands);
            let reused = solve_transportation_with(costs, supplies, demands, &mut scratch);
            match (fresh, reused) {
                (Ok(f), Ok(r)) => {
                    prop_assert_eq!(f.total_cost().to_bits(), r.total_cost().to_bits());
                    prop_assert_eq!(f.total_flow().to_bits(), r.total_flow().to_bits());
                    prop_assert_eq!(f.flows(), r.flows());
                }
                (f, r) => prop_assert_eq!(f.is_err(), r.is_err(), "error parity"),
            }
        }
    }

    /// `emd_with` through one dirty scratch is bit-identical to `emd`.
    #[test]
    fn emd_with_scratch_is_bit_identical(
        pairs in prop::collection::vec((signature_2d(8), signature_2d(8)), 1..5),
    ) {
        let mut scratch = TransportScratch::new();
        for (a, b) in &pairs {
            let fresh = emd(a, b, &Euclidean).unwrap();
            let reused = emd_with(a, b, &Euclidean, &mut scratch).unwrap();
            prop_assert_eq!(fresh.to_bits(), reused.to_bits());
        }
    }

    /// EMD against a point mass equals the weighted mean distance to it
    /// when the point-mass side has the (weakly) larger mass.
    #[test]
    fn point_mass_closed_form(s in signature_2d(8), px in -20.0..20.0f64, py in -20.0..20.0f64) {
        let s = s.normalized().unwrap();
        let p = Signature::new(vec![vec![px, py]], vec![1.0]).unwrap();
        let d = emd(&s, &p, &Euclidean).unwrap();
        let expected: f64 = s.iter()
            .map(|(pt, w)| {
                let dx = pt[0] - px;
                let dy = pt[1] - py;
                w * (dx * dx + dy * dy).sqrt()
            })
            .sum();
        prop_assert!((d - expected).abs() < 1e-7 * (1.0 + expected), "{d} vs {expected}");
    }

    /// Every ladder tier is a true bound of the exact EMD: the centroid
    /// and projected tiers never exceed it, the feasible-flow tier never
    /// falls below it. (The centroid and projected bounds are NOT
    /// ordered against each other in >= 2 dimensions — each is only
    /// guaranteed below the exact value.)
    #[test]
    fn ladder_tiers_bound_exact_emd(a in signature_2d(8), b in signature_2d(8)) {
        use emd::{
            centroid_lower_bound_with, feasible_upper_bound, projected_lower_bound_with,
            LadderScratch,
        };
        // Equal masses: the lower-bound tiers are sound only there and
        // return None otherwise (also exercised below).
        let an = a.normalized().unwrap();
        let bn = b.normalized().unwrap();
        let exact = emd(&an, &bn, &Euclidean).unwrap();
        let tol = 1e-9 * (1.0 + exact.abs());
        let mut scratch = LadderScratch::new();
        let clb = centroid_lower_bound_with(&an, &bn, &Euclidean, &mut scratch)
            .expect("equal masses");
        prop_assert!(clb <= exact + tol, "centroid {clb} > exact {exact}");
        let plb = projected_lower_bound_with(&an, &bn, &mut scratch).expect("equal masses");
        prop_assert!(plb <= exact + tol, "projection {plb} > exact {exact}");
        let ub = feasible_upper_bound(&an, &bn, &Euclidean);
        prop_assert!(ub + tol >= exact, "upper {ub} < exact {exact}");

        // Unequal masses: the lower-bound tiers must refuse.
        if (a.total_weight() - b.total_weight()).abs()
            > 1e-6 * a.total_weight().max(b.total_weight())
        {
            prop_assert!(centroid_lower_bound_with(&a, &b, &Euclidean, &mut scratch).is_none());
            prop_assert!(projected_lower_bound_with(&a, &b, &mut scratch).is_none());
        }
    }
}
