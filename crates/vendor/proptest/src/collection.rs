//! Collection strategies (`prop::collection::*`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashSet;
use std::hash::Hash;

/// Sizes accepted by collection strategies: a fixed count or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec`s whose elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn gen_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.gen_value(rng)).collect()
    }
}

/// Strategy for `HashSet`s whose elements come from `element`.
///
/// As with upstream, the set may come out smaller than the sampled size
/// when independently drawn elements collide (e.g. a small domain).
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    HashSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`hash_set`].
#[derive(Debug, Clone)]
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Hash + Eq,
{
    type Value = HashSet<S::Value>;
    fn gen_value(&self, rng: &mut StdRng) -> HashSet<S::Value> {
        let n = self.size.sample(rng);
        let mut out = HashSet::with_capacity(n);
        for _ in 0..n {
            out.insert(self.element.gen_value(rng));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn vec_sizes() {
        let mut rng = rng_for("vec_sizes");
        for _ in 0..100 {
            assert_eq!(vec(0.0..1.0f64, 4).gen_value(&mut rng).len(), 4);
            let v = vec(0u64..9, 2..=5).gen_value(&mut rng);
            assert!((2..=5).contains(&v.len()));
        }
    }

    #[test]
    fn hash_set_distinct() {
        let mut rng = rng_for("hash_set_distinct");
        let s = hash_set(0usize..100, 10).gen_value(&mut rng);
        assert!(!s.is_empty() && s.len() <= 10);
        let tiny = hash_set(0usize..2, 0..40).gen_value(&mut rng);
        assert!(tiny.len() <= 2, "collisions shrink the set, never panic");
    }
}
