//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro, range/tuple/collection strategies with
//! `prop_map` / `prop_flat_map` / `prop_filter`, and the `prop_assert*`
//! macros. There is no shrinking: a failing case reports its inputs via
//! the panic message (cases are deterministic per test name, so a
//! failure is reproducible by re-running the test).

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Everything a property-test file needs, glob-imported.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespace alias matching upstream's `prop::` paths.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Run a block of property tests.
///
/// Supports the two forms the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_property(x in 0.0..1.0f64, v in prop::collection::vec(0..10usize, 3)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
///
/// The `#[test]` attribute is consumed as an ordinary meta attribute and
/// re-emitted on the generated zero-argument test function, exactly as
/// upstream does.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__run_cases!($config, $name, ($($arg),+), ($($strat),+), $body);
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__run_cases!(
                    $crate::test_runner::ProptestConfig::default(),
                    $name,
                    ($($arg),+),
                    ($($strat),+),
                    $body
                );
            }
        )*
    };
}

/// Internal: the per-test case loop shared by both [`proptest!`] arms.
#[doc(hidden)]
#[macro_export]
macro_rules! __run_cases {
    ($config:expr, $name:ident, ($($arg:pat),+), ($($strat:expr),+), $body:block) => {{
        let config = $config;
        let mut rng = $crate::test_runner::rng_for(stringify!($name));
        for case in 0..config.cases {
            let ($($arg,)+) = (
                $($crate::strategy::Strategy::gen_value(&$strat, &mut rng),)+
            );
            let mut run = move || -> ::std::result::Result<(), ::std::string::String> {
                $body
                #[allow(unreachable_code)]
                Ok(())
            };
            if let Err(message) = run() {
                panic!(
                    "proptest {} failed at case {}/{}: {}",
                    stringify!($name),
                    case + 1,
                    config.cases,
                    message
                );
            }
        }
    }};
}

/// Fail the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            );
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    };
}

/// Fail the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(::std::format!($($fmt)*));
        }
    }};
}

/// Fail the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left),
                stringify!($right),
                l
            ));
        }
    }};
}

/// Skip the current case (counted as passing) unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}
