//! Test configuration and deterministic per-test RNG derivation.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Failure payload of one property case. Upstream uses an enum; here a
/// case failure is just its message, which is also what the
/// `prop_assert*` macros produce and what the runner panics with.
pub type TestCaseError = String;

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the EMD-heavy properties in
        // this workspace fast while still exercising varied inputs.
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic RNG for one named property test (FNV-1a of the name),
/// so failures reproduce on re-run without a persistence file.
pub fn rng_for(test_name: &str) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn rng_is_stable_per_name() {
        let mut a = rng_for("some_test");
        let mut b = rng_for("some_test");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = rng_for("other_test");
        assert_ne!(rng_for("some_test").next_u64(), c.next_u64());
    }
}
