//! Value-generation strategies.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking; a
/// strategy simply draws a value from the test's RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn gen_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from a strategy derived from it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Reject generated values failing the predicate (retrying up to a
    /// fixed bound, then panicking like upstream's rejection limit).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, reason: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            f,
            reason,
        }
    }
}

/// Strategy yielding a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn gen_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn gen_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.gen_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn gen_value(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.gen_value(rng)).gen_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
    reason: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn gen_value(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.gen_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter: too many rejections ({})", self.reason);
    }
}

macro_rules! numeric_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

numeric_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn gen_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

float_range_strategy!(f64, f32);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn gen_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.gen_value(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for;

    #[test]
    fn ranges_and_combinators() {
        let mut rng = rng_for("ranges_and_combinators");
        for _ in 0..200 {
            let x = (0.0..1.0f64).gen_value(&mut rng);
            assert!((0.0..1.0).contains(&x));
            let (a, b) = (0usize..4, -1.0..1.0f64).gen_value(&mut rng);
            assert!(a < 4 && (-1.0..1.0).contains(&b));
            let doubled = (1u64..5).prop_map(|v| v * 2).gen_value(&mut rng);
            assert!(doubled % 2 == 0 && doubled < 10);
            let nested = (1usize..4)
                .prop_flat_map(|n| crate::collection::vec(0u64..10, n))
                .gen_value(&mut rng);
            assert!(!nested.is_empty() && nested.len() < 4);
            let even = (0u64..100)
                .prop_filter("even", |v| v % 2 == 0)
                .gen_value(&mut rng);
            assert_eq!(even % 2, 0);
        }
    }
}
