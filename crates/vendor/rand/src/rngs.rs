//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The workspace's standard deterministic generator: SplitMix64.
///
/// One 64-bit word of state; `next_u64` advances by the golden-ratio
/// increment and applies the Stafford mix13 finalizer. Equidistributed
/// over its full 2^64 period and statistically strong on 64-bit outputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng;

    #[test]
    fn adjacent_seeds_decorrelated() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn mean_of_uniforms_is_centered() {
        let mut r = StdRng::seed_from_u64(9);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
