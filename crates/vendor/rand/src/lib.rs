//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! implements the (small) subset of the `rand 0.8` API the workspace
//! uses, with the same module layout: [`Rng`], [`SeedableRng`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`].
//!
//! `StdRng` here is a SplitMix64 generator — a different stream than
//! upstream's ChaCha12, but every consumer in this workspace only relies
//! on determinism-given-seed, not on a particular stream. SplitMix64
//! passes BigCrush on its 64-bit output, which is plenty for the
//! rejection samplers and quantizer seeding driven from it.

pub mod rngs;
pub mod seq;

/// Core entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (upper half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] (including `&mut R`, so generators can be re-borrowed
/// through call chains exactly as with upstream `rand`).
pub trait Rng: RngCore {
    /// Sample a value of a standard-distributed type: `f64`/`f32` are
    /// uniform in `[0, 1)`, integers uniform over their full range,
    /// `bool` is a fair coin.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a half-open or inclusive range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform, R2: SampleRange<T>>(&mut self, range: R2) -> T
    where
        Self: Sized,
    {
        range.sample_in(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seed-based construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a deterministic function of the
    /// 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types [`Rng::gen_range`] can produce.
///
/// The single pair of generic [`SampleRange`] impls below (rather than
/// one impl per primitive) is what makes inference eager: the range's
/// element type unifies with the output immediately, so expressions like
/// `1.0 * rng.gen_range(0.5..1.5)` resolve to `f64` exactly as with
/// upstream `rand`.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a uniform sample from the range.
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_range(rng, lo, hi, true)
    }
}

/// Debiased bounded integer sample (Lemire's multiply-shift; the bias of
/// the plain multiply is < 2^-64 per draw, far below anything these
/// statistical tests can resolve).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u64;
                if inclusive {
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo as i128 + bounded_u64(rng, span + 1) as i128) as $t
                } else {
                    (lo as i128 + bounded_u64(rng, span) as i128) as $t
                }
            }
        }
    )*};
}

int_uniform!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                let u = <$t as Standard>::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_uniform!(f64, f32);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let i = r.gen_range(3usize..17);
            assert!((3..17).contains(&i));
            let f = r.gen_range(-2.0..5.0);
            assert!((-2.0..5.0).contains(&f));
            let k = r.gen_range(0u64..=3);
            assert!(k <= 3);
        }
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut r = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(4);
        let _ = r.gen_range(5usize..5);
    }
}
