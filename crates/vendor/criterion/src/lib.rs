//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset the workspace's benches use — groups,
//! [`BenchmarkId`], `bench_with_input`, [`Throughput`] — with a simple
//! median-of-samples timer instead of criterion's statistical machinery.
//! Each benchmark prints one line:
//!
//! ```text
//! group/id                time: 1.234 ms  thrpt: 812345 elem/s
//! ```
//!
//! Designed for `harness = false` bench targets driven by
//! [`criterion_group!`] / [`criterion_main!`].

use std::time::{Duration, Instant};

/// Re-export so benches can guard against over-optimization.
pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Upstream compatibility shim: CLI args are accepted and ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut group = self.benchmark_group(name);
        group.run(None, f);
        group.finish();
        self
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Logical elements per iteration (reported as `elem/s`).
    Elements(u64),
    /// Bytes per iteration (reported as `MiB/s`).
    Bytes(u64),
}

/// A named set of benchmarks sharing sample settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (minimum 5).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a function parameterized by an input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(Some(id), |b| f(b, input));
        self
    }

    /// Benchmark a function under this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run(Some(id.into()), f);
        self
    }

    /// End the group (upstream renders summaries here; we print per
    /// benchmark, so this is a no-op marker).
    pub fn finish(self) {}

    fn run(&mut self, id: Option<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        let label = match &id {
            Some(id) => format!("{}/{}", self.name, id.label()),
            None => self.name.clone(),
        };
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        report(&label, &bencher.samples, self.throughput);
    }
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A function name plus a parameter value.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            function: Some(s.to_string()),
            parameter: None,
        }
    }
}

/// Timer handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time the routine: one warm-up call, then `sample_size` timed
    /// samples (capped at ~2 s wall time per benchmark).
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine()); // warm-up
        let budget = Duration::from_secs(2);
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if started.elapsed() > budget {
                break;
            }
        }
    }
}

fn report(label: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let secs = median.as_secs_f64().max(1e-12);
    let thrpt = match throughput {
        Some(Throughput::Elements(n)) => format!("  thrpt: {:.0} elem/s", n as f64 / secs),
        Some(Throughput::Bytes(n)) => {
            format!("  thrpt: {:.2} MiB/s", n as f64 / secs / (1024.0 * 1024.0))
        }
        None => String::new(),
    };
    println!("{label:<40} time: {}{thrpt}", fmt_duration(median));
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos() as f64;
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more [`criterion_group!`] groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 8).label(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(32).label(), "32");
    }

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        group.sample_size(5).throughput(Throughput::Elements(100));
        group.bench_with_input(BenchmarkId::from_parameter(1), &1u32, |b, _| {
            b.iter(|| black_box(2 + 2));
        });
        group.finish();
    }
}
