//! Fixed-width histogram signatures.
//!
//! §3.1: "the signatures could be obtained simply by partitioning R^d
//! into distinct bins of fixed width and then count the number of
//! observations that fall in each bin. This would be a common approach
//! especially when the vectors x are 1-dimensional." Bin centers become
//! the signature vectors `u_k`, occupancies the weights `w_k`; empty bins
//! are omitted (that is what makes it a signature rather than a dense
//! histogram).

use crate::Quantization;
use std::collections::HashMap;

/// Specification of a fixed-width binning of `R^d`.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSpec {
    /// Left edge of bin 0 in each dimension.
    pub origin: Vec<f64>,
    /// Bin width in each dimension (strictly positive).
    pub width: Vec<f64>,
}

impl HistogramSpec {
    /// Uniform spec: the same origin and width in every dimension.
    pub fn uniform(dim: usize, origin: f64, width: f64) -> Self {
        HistogramSpec {
            origin: vec![origin; dim],
            width: vec![width; dim],
        }
    }

    /// Bin index vector of a point.
    fn bin_of(&self, p: &[f64]) -> Vec<i64> {
        p.iter()
            .zip(&self.origin)
            .zip(&self.width)
            .map(|((&x, &o), &w)| ((x - o) / w).floor() as i64)
            .collect()
    }

    /// Center of a bin index vector.
    fn center_of(&self, bin: &[i64]) -> Vec<f64> {
        bin.iter()
            .zip(&self.origin)
            .zip(&self.width)
            .map(|((&b, &o), &w)| o + (b as f64 + 0.5) * w)
            .collect()
    }

    fn validate(&self, dim: usize) {
        assert_eq!(self.origin.len(), dim, "histogram: origin dim mismatch");
        assert_eq!(self.width.len(), dim, "histogram: width dim mismatch");
        assert!(
            self.width.iter().all(|&w| w.is_finite() && w > 0.0),
            "histogram: widths must be > 0"
        );
    }
}

/// Histogram a bag of `d`-dimensional points into occupied fixed-width
/// bins.
///
/// # Panics
/// Panics on an empty bag, dimension mismatches, or non-positive widths.
pub fn histogram_grid(points: &[Vec<f64>], spec: &HistogramSpec) -> Quantization {
    assert!(!points.is_empty(), "histogram: empty bag");
    let d = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == d),
        "histogram: inconsistent point dimensions"
    );
    spec.validate(d);

    // Map each occupied bin to a compact cluster id, preserving first-seen
    // order so results are deterministic.
    let mut bin_ids: HashMap<Vec<i64>, usize> = HashMap::new();
    let mut bins: Vec<Vec<i64>> = Vec::new();
    let mut counts: Vec<u64> = Vec::new();
    let mut assignments = Vec::with_capacity(points.len());

    for p in points {
        let b = spec.bin_of(p);
        let id = *bin_ids.entry(b.clone()).or_insert_with(|| {
            bins.push(b);
            counts.push(0);
            bins.len() - 1
        });
        counts[id] += 1;
        assignments.push(id);
    }

    Quantization {
        centers: bins.iter().map(|b| spec.center_of(b)).collect(),
        counts,
        assignments,
    }
}

/// Convenience: 1-D histogram of scalars with the given origin and width.
///
/// # Panics
/// As [`histogram_grid`].
pub fn histogram_1d(values: &[f64], origin: f64, width: f64) -> Quantization {
    let pts: Vec<Vec<f64>> = values.iter().map(|&v| vec![v]).collect();
    histogram_grid(&pts, &HistogramSpec::uniform(1, origin, width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_1d_binning() {
        let q = histogram_1d(&[0.1, 0.2, 0.9, 1.1, 1.9, 3.5], 0.0, 1.0);
        // Bins [0,1): 3 points; [1,2): 2 points; [3,4): 1 point.
        assert_eq!(q.centers.len(), 3);
        assert_eq!(q.counts, vec![3, 2, 1]);
        assert_eq!(q.centers[0], vec![0.5]);
        assert_eq!(q.centers[1], vec![1.5]);
        assert_eq!(q.centers[2], vec![3.5]);
        assert_eq!(q.total_count(), 6);
    }

    #[test]
    fn negative_values_bin_correctly() {
        let q = histogram_1d(&[-0.5, -1.5, 0.5], 0.0, 1.0);
        assert_eq!(q.counts, vec![1, 1, 1]);
        assert_eq!(q.centers[0], vec![-0.5]); // bin [-1, 0)
        assert_eq!(q.centers[1], vec![-1.5]); // bin [-2, -1)
        assert_eq!(q.centers[2], vec![0.5]); // bin [0, 1)
    }

    #[test]
    fn bin_edges_are_left_inclusive() {
        let q = histogram_1d(&[1.0, 0.999999], 0.0, 1.0);
        assert_eq!(
            q.centers.len(),
            2,
            "1.0 belongs to [1,2), 0.999999 to [0,1)"
        );
    }

    #[test]
    fn two_dimensional_grid() {
        let pts = vec![
            vec![0.5, 0.5],
            vec![0.4, 0.6],
            vec![1.5, 0.5],
            vec![0.5, 1.5],
        ];
        let q = histogram_grid(&pts, &HistogramSpec::uniform(2, 0.0, 1.0));
        assert_eq!(q.centers.len(), 3);
        assert_eq!(q.counts, vec![2, 1, 1]);
        assert_eq!(q.centers[0], vec![0.5, 0.5]);
    }

    #[test]
    fn per_dimension_widths() {
        let spec = HistogramSpec {
            origin: vec![0.0, 0.0],
            width: vec![1.0, 10.0],
        };
        let pts = vec![vec![0.5, 5.0], vec![0.5, 9.0], vec![0.5, 15.0]];
        let q = histogram_grid(&pts, &spec);
        assert_eq!(q.counts, vec![2, 1]);
        assert_eq!(q.centers[0], vec![0.5, 5.0]);
        assert_eq!(q.centers[1], vec![0.5, 15.0]);
    }

    #[test]
    fn assignments_round_trip() {
        let q = histogram_1d(&[0.1, 5.3, 0.2, 5.4], 0.0, 1.0);
        assert_eq!(q.assignments, vec![0, 1, 0, 1]);
    }

    #[test]
    fn mass_conservation() {
        let values: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let q = histogram_1d(&values, 0.0, 0.5);
        assert_eq!(q.total_count(), 1000);
        let mass: u64 = q.counts.iter().sum();
        assert_eq!(mass, 1000);
    }

    #[test]
    #[should_panic(expected = "widths must be > 0")]
    fn zero_width_panics() {
        histogram_1d(&[1.0], 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty bag")]
    fn empty_bag_panics() {
        histogram_1d(&[], 0.0, 1.0);
    }
}
