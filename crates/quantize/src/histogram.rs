//! Fixed-width histogram signatures.
//!
//! §3.1: "the signatures could be obtained simply by partitioning R^d
//! into distinct bins of fixed width and then count the number of
//! observations that fall in each bin. This would be a common approach
//! especially when the vectors x are 1-dimensional." Bin centers become
//! the signature vectors `u_k`, occupancies the weights `w_k`; empty bins
//! are omitted (that is what makes it a signature rather than a dense
//! histogram).

use crate::Quantization;
use std::collections::HashMap;

/// Specification of a fixed-width binning of `R^d`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HistogramSpec {
    /// Left edge of bin 0 in each dimension.
    pub origin: Vec<f64>,
    /// Bin width in each dimension (strictly positive).
    pub width: Vec<f64>,
}

impl HistogramSpec {
    /// Uniform spec: the same origin and width in every dimension.
    pub fn uniform(dim: usize, origin: f64, width: f64) -> Self {
        HistogramSpec {
            origin: vec![origin; dim],
            width: vec![width; dim],
        }
    }

    /// Bin index vector of a point.
    fn bin_of(&self, p: &[f64]) -> Vec<i64> {
        p.iter()
            .zip(&self.origin)
            .zip(&self.width)
            .map(|((&x, &o), &w)| ((x - o) / w).floor() as i64)
            .collect()
    }

    /// Center of a bin index vector.
    fn center_of(&self, bin: &[i64]) -> Vec<f64> {
        bin.iter()
            .zip(&self.origin)
            .zip(&self.width)
            .map(|((&b, &o), &w)| o + (b as f64 + 0.5) * w)
            .collect()
    }

    fn validate(&self, dim: usize) {
        assert_eq!(self.origin.len(), dim, "histogram: origin dim mismatch");
        assert_eq!(self.width.len(), dim, "histogram: width dim mismatch");
        assert!(
            self.width.iter().all(|&w| w.is_finite() && w > 0.0),
            "histogram: widths must be > 0"
        );
    }
}

/// Reusable working state for [`histogram_grid_with`]: the bin-index
/// map, a working key, and pools of recycled bin-key and center vectors.
///
/// All of it is keyed by problem shape, not by content: one scratch can
/// serve every histogram build of a stream (or of a whole worker shard),
/// and once its pools have grown to the workload's high-water mark a
/// build performs **no heap allocation at all**.
#[derive(Debug, Clone, Default)]
pub struct HistogramScratch {
    /// Occupied bin index → compact cluster id. Drained (not dropped)
    /// after every build, so both the table and its key vectors survive.
    bin_ids: HashMap<Vec<i64>, usize>,
    /// Working bin-index key for the point being binned.
    key: Vec<i64>,
    /// Recycled bin-key vectors (returned here by the post-build drain).
    free_keys: Vec<Vec<i64>>,
    /// Recycled center vectors (fed by [`HistogramScratch::recycle_centers`]
    /// and by builds that produced fewer bins than their output buffer
    /// already held).
    free_centers: Vec<Vec<f64>>,
}

impl HistogramScratch {
    /// Empty scratch; pools grow to the workload's shape on first use.
    pub fn new() -> Self {
        HistogramScratch::default()
    }

    /// Return center vectors — typically the points of a retired
    /// signature — to the pool for the next build to reuse.
    pub fn recycle_centers(&mut self, centers: impl IntoIterator<Item = Vec<f64>>) {
        self.free_centers.extend(centers);
    }
}

/// As [`histogram_grid`], but writing the occupied bins (first-seen
/// order) and their occupancies into caller-kept buffers: `centers`'
/// existing inner vectors are reused in place, extras come from (and
/// return to) the scratch's pools, and `weights[id]` accumulates the
/// occupancy of bin `id` as an exact small integer — bit-identical to
/// `histogram_grid`'s counts cast to `f64`. Once the scratch and the
/// buffers are warm, a build performs zero heap allocations.
///
/// Assignments are not produced — this is the signature-build fast path,
/// which never needs them.
///
/// # Panics
/// As [`histogram_grid`].
pub fn histogram_grid_with(
    points: &[Vec<f64>],
    spec: &HistogramSpec,
    scratch: &mut HistogramScratch,
    centers: &mut Vec<Vec<f64>>,
    weights: &mut Vec<f64>,
) {
    assert!(!points.is_empty(), "histogram: empty bag");
    let d = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == d),
        "histogram: inconsistent point dimensions"
    );
    spec.validate(d);
    debug_assert!(scratch.bin_ids.is_empty(), "scratch drained after use");

    weights.clear();
    let mut used = 0usize; // bins discovered so far == centers filled
    for p in points {
        scratch.key.clear();
        for ((&x, &o), &w) in p.iter().zip(&spec.origin).zip(&spec.width) {
            scratch.key.push(((x - o) / w).floor() as i64);
        }
        if let Some(&id) = scratch.bin_ids.get(&scratch.key) {
            weights[id] += 1.0;
            continue;
        }
        // First sighting: store the key (recycled vector) and write the
        // bin's center into the next reusable slot of `centers`.
        let mut stored = scratch.free_keys.pop().unwrap_or_default();
        stored.clear();
        stored.extend_from_slice(&scratch.key);
        scratch.bin_ids.insert(stored, used);
        if used == centers.len() {
            centers.push(scratch.free_centers.pop().unwrap_or_default());
        }
        let c = &mut centers[used];
        c.clear();
        for ((&b, &o), &w) in scratch.key.iter().zip(&spec.origin).zip(&spec.width) {
            c.push(o + (b as f64 + 0.5) * w);
        }
        weights.push(1.0);
        used += 1;
    }
    // Surplus output slots and every bin key go back to the pools.
    scratch.free_centers.extend(centers.drain(used..));
    for (key, _) in scratch.bin_ids.drain() {
        scratch.free_keys.push(key);
    }
}

/// Histogram a bag of `d`-dimensional points into occupied fixed-width
/// bins.
///
/// # Panics
/// Panics on an empty bag, dimension mismatches, or non-positive widths.
pub fn histogram_grid(points: &[Vec<f64>], spec: &HistogramSpec) -> Quantization {
    assert!(!points.is_empty(), "histogram: empty bag");
    let d = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == d),
        "histogram: inconsistent point dimensions"
    );
    spec.validate(d);

    // Map each occupied bin to a compact cluster id, preserving first-seen
    // order so results are deterministic.
    let mut bin_ids: HashMap<Vec<i64>, usize> = HashMap::new();
    let mut bins: Vec<Vec<i64>> = Vec::new();
    let mut counts: Vec<u64> = Vec::new();
    let mut assignments = Vec::with_capacity(points.len());

    for p in points {
        let b = spec.bin_of(p);
        let id = *bin_ids.entry(b.clone()).or_insert_with(|| {
            bins.push(b);
            counts.push(0);
            bins.len() - 1
        });
        counts[id] += 1;
        assignments.push(id);
    }

    Quantization {
        centers: bins.iter().map(|b| spec.center_of(b)).collect(),
        counts,
        assignments,
    }
}

/// Convenience: 1-D histogram of scalars with the given origin and width.
///
/// # Panics
/// As [`histogram_grid`].
pub fn histogram_1d(values: &[f64], origin: f64, width: f64) -> Quantization {
    let pts: Vec<Vec<f64>> = values.iter().map(|&v| vec![v]).collect();
    histogram_grid(&pts, &HistogramSpec::uniform(1, origin, width))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_1d_binning() {
        let q = histogram_1d(&[0.1, 0.2, 0.9, 1.1, 1.9, 3.5], 0.0, 1.0);
        // Bins [0,1): 3 points; [1,2): 2 points; [3,4): 1 point.
        assert_eq!(q.centers.len(), 3);
        assert_eq!(q.counts, vec![3, 2, 1]);
        assert_eq!(q.centers[0], vec![0.5]);
        assert_eq!(q.centers[1], vec![1.5]);
        assert_eq!(q.centers[2], vec![3.5]);
        assert_eq!(q.total_count(), 6);
    }

    #[test]
    fn negative_values_bin_correctly() {
        let q = histogram_1d(&[-0.5, -1.5, 0.5], 0.0, 1.0);
        assert_eq!(q.counts, vec![1, 1, 1]);
        assert_eq!(q.centers[0], vec![-0.5]); // bin [-1, 0)
        assert_eq!(q.centers[1], vec![-1.5]); // bin [-2, -1)
        assert_eq!(q.centers[2], vec![0.5]); // bin [0, 1)
    }

    #[test]
    fn bin_edges_are_left_inclusive() {
        let q = histogram_1d(&[1.0, 0.999999], 0.0, 1.0);
        assert_eq!(
            q.centers.len(),
            2,
            "1.0 belongs to [1,2), 0.999999 to [0,1)"
        );
    }

    #[test]
    fn two_dimensional_grid() {
        let pts = vec![
            vec![0.5, 0.5],
            vec![0.4, 0.6],
            vec![1.5, 0.5],
            vec![0.5, 1.5],
        ];
        let q = histogram_grid(&pts, &HistogramSpec::uniform(2, 0.0, 1.0));
        assert_eq!(q.centers.len(), 3);
        assert_eq!(q.counts, vec![2, 1, 1]);
        assert_eq!(q.centers[0], vec![0.5, 0.5]);
    }

    #[test]
    fn per_dimension_widths() {
        let spec = HistogramSpec {
            origin: vec![0.0, 0.0],
            width: vec![1.0, 10.0],
        };
        let pts = vec![vec![0.5, 5.0], vec![0.5, 9.0], vec![0.5, 15.0]];
        let q = histogram_grid(&pts, &spec);
        assert_eq!(q.counts, vec![2, 1]);
        assert_eq!(q.centers[0], vec![0.5, 5.0]);
        assert_eq!(q.centers[1], vec![0.5, 15.0]);
    }

    #[test]
    fn assignments_round_trip() {
        let q = histogram_1d(&[0.1, 5.3, 0.2, 5.4], 0.0, 1.0);
        assert_eq!(q.assignments, vec![0, 1, 0, 1]);
    }

    #[test]
    fn mass_conservation() {
        let values: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.37).sin() * 10.0).collect();
        let q = histogram_1d(&values, 0.0, 0.5);
        assert_eq!(q.total_count(), 1000);
        let mass: u64 = q.counts.iter().sum();
        assert_eq!(mass, 1000);
    }

    #[test]
    fn grid_with_matches_allocating_grid_bit_for_bit() {
        let mut scratch = HistogramScratch::new();
        let mut centers = Vec::new();
        let mut weights = Vec::new();
        // Varying shapes through one dirty scratch: bin counts shrink and
        // grow, so slot reuse, pool draw, and surplus return all happen.
        for n in [40usize, 7, 120, 3, 64] {
            let pts: Vec<Vec<f64>> = (0..n)
                .map(|i| vec![(i as f64 * 0.61).sin() * 4.0, (i % 5) as f64])
                .collect();
            let spec = HistogramSpec::uniform(2, 0.0, 0.75);
            let q = histogram_grid(&pts, &spec);
            histogram_grid_with(&pts, &spec, &mut scratch, &mut centers, &mut weights);
            assert_eq!(centers, q.centers);
            assert_eq!(weights.len(), q.counts.len());
            for (w, &c) in weights.iter().zip(&q.counts) {
                assert_eq!(w.to_bits(), (c as f64).to_bits());
            }
        }
    }

    #[test]
    fn grid_with_recycles_donated_centers() {
        let mut scratch = HistogramScratch::new();
        scratch.recycle_centers(vec![vec![9.0; 8], vec![7.0; 8]]);
        let mut centers = Vec::new();
        let mut weights = Vec::new();
        let pts = vec![vec![0.1], vec![0.2], vec![5.0]];
        let spec = HistogramSpec::uniform(1, 0.0, 1.0);
        histogram_grid_with(&pts, &spec, &mut scratch, &mut centers, &mut weights);
        assert_eq!(centers, vec![vec![0.5], vec![5.5]]);
        assert_eq!(weights, vec![2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "widths must be > 0")]
    fn zero_width_panics() {
        histogram_1d(&[1.0], 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "empty bag")]
    fn empty_bag_panics() {
        histogram_1d(&[], 0.0, 1.0);
    }
}
