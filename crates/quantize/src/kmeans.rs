//! Lloyd's k-means with k-means++ initialization.
//!
//! This is the default signature builder of the detection pipeline: each
//! bag is clustered into `K` centers, and the per-center member counts
//! become the signature weights `w_k`.

use crate::{compact_non_empty, nearest_center, set_row, sq_dist, ClusterScratch, Quantization};
use rand::Rng;

/// Configuration for [`kmeans`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansConfig {
    /// Number of clusters requested. If the bag has fewer distinct points
    /// the result simply has empty clusters dropped.
    pub k: usize,
    /// Maximum Lloyd iterations.
    pub max_iters: usize,
    /// Convergence threshold on total center movement (squared Euclidean).
    pub tol: f64,
}

impl Default for KMeansConfig {
    fn default() -> Self {
        KMeansConfig {
            k: 8,
            max_iters: 100,
            tol: 1e-9,
        }
    }
}

impl KMeansConfig {
    /// Convenience constructor fixing only `k`.
    pub fn with_k(k: usize) -> Self {
        KMeansConfig {
            k,
            ..KMeansConfig::default()
        }
    }
}

/// Run k-means++ + Lloyd on `points`.
///
/// Returns a [`Quantization`] with at most `cfg.k` non-empty clusters
/// (empty clusters are dropped, so `centers.len() <= k`).
///
/// # Panics
/// Panics if `points` is empty, `cfg.k == 0`, or points have inconsistent
/// dimension.
pub fn kmeans(points: &[Vec<f64>], cfg: &KMeansConfig, rng: &mut impl Rng) -> Quantization {
    assert!(!points.is_empty(), "kmeans: empty bag");
    assert!(cfg.k > 0, "kmeans: k must be > 0");
    let d = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == d),
        "kmeans: inconsistent point dimensions"
    );
    let k = cfg.k.min(points.len());

    let mut centers = kmeanspp_init(points, k, rng);
    let mut assignments = vec![0usize; points.len()];

    for _ in 0..cfg.max_iters {
        // Assignment step.
        for (a, p) in assignments.iter_mut().zip(points) {
            *a = nearest_center(p, &centers).0;
        }
        // Update step.
        let mut sums = vec![vec![0.0; d]; centers.len()];
        let mut counts = vec![0u64; centers.len()];
        for (&a, p) in assignments.iter().zip(points) {
            counts[a] += 1;
            for (s, &x) in sums[a].iter_mut().zip(p) {
                *s += x;
            }
        }
        let mut movement = 0.0;
        for (kc, (sum, &count)) in sums.iter().zip(&counts).enumerate() {
            if count == 0 {
                continue; // keep the stale center; it may attract points later
            }
            let new_center: Vec<f64> = sum.iter().map(|s| s / count as f64).collect();
            movement += sq_dist(&new_center, &centers[kc]);
            centers[kc] = new_center;
        }
        if movement <= cfg.tol {
            break;
        }
    }

    // Final assignment and counts against the converged centers.
    let mut counts = vec![0u64; centers.len()];
    for (a, p) in assignments.iter_mut().zip(points) {
        *a = nearest_center(p, &centers).0;
        counts[*a] += 1;
    }

    Quantization {
        centers,
        counts,
        assignments,
    }
    .drop_empty()
}

/// As [`kmeans`], but writing the non-empty centers (stable order) and
/// their member counts as `f64` into caller-kept buffers: `centers`'
/// existing inner vectors are reused in place, extras come from (and
/// return to) the scratch's row pool. Consumes the RNG exactly like
/// [`kmeans`], so centers and weights are bit-identical to its
/// `centers` / `counts as f64`. Once the scratch and buffers are warm, a
/// build performs zero heap allocations.
///
/// Assignments are not produced — this is the signature-build fast path,
/// which never needs them.
///
/// # Panics
/// As [`kmeans`].
pub fn kmeans_with(
    points: &[Vec<f64>],
    cfg: &KMeansConfig,
    rng: &mut impl Rng,
    scratch: &mut ClusterScratch,
    centers: &mut Vec<Vec<f64>>,
    weights: &mut Vec<f64>,
) {
    assert!(!points.is_empty(), "kmeans: empty bag");
    assert!(cfg.k > 0, "kmeans: k must be > 0");
    let d = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == d),
        "kmeans: inconsistent point dimensions"
    );
    let k = cfg.k.min(points.len());

    // k-means++ seeding into recycled rows — the draw sequence of
    // `kmeanspp_init`, verbatim.
    set_row(
        centers,
        &mut scratch.pool,
        0,
        &points[rng.gen_range(0..points.len())],
    );
    let mut used = 1usize;
    scratch.d2.clear();
    scratch
        .d2
        .extend(points.iter().map(|p| sq_dist(p, &centers[0])));
    while used < k {
        let total: f64 = scratch.d2.iter().sum();
        if total <= 0.0 {
            break;
        }
        let mut u = rng.gen_range(0.0..total);
        let mut chosen = points.len() - 1;
        for (i, &w) in scratch.d2.iter().enumerate() {
            if u < w {
                chosen = i;
                break;
            }
            u -= w;
        }
        set_row(centers, &mut scratch.pool, used, &points[chosen]);
        used += 1;
        let c = &centers[used - 1];
        for (dist, p) in scratch.d2.iter_mut().zip(points) {
            let nd = sq_dist(p, c);
            if nd < *dist {
                *dist = nd;
            }
        }
    }

    scratch.assignments.clear();
    scratch.assignments.resize(points.len(), 0);
    for _ in 0..cfg.max_iters {
        // Assignment step.
        for (a, p) in scratch.assignments.iter_mut().zip(points) {
            *a = nearest_center(p, &centers[..used]).0;
        }
        // Update step, accumulating into recycled sum rows.
        while scratch.sums.len() < used {
            scratch.sums.push(scratch.pool.pop().unwrap_or_default());
        }
        for sum in scratch.sums[..used].iter_mut() {
            sum.clear();
            sum.resize(d, 0.0);
        }
        scratch.counts.clear();
        scratch.counts.resize(used, 0);
        for (&a, p) in scratch.assignments.iter().zip(points) {
            scratch.counts[a] += 1;
            for (s, &x) in scratch.sums[a].iter_mut().zip(p) {
                *s += x;
            }
        }
        let mut movement = 0.0;
        for (kc, (sum, &count)) in scratch.sums[..used].iter().zip(&scratch.counts).enumerate() {
            if count == 0 {
                continue; // keep the stale center; it may attract points later
            }
            scratch.tmp.clear();
            scratch.tmp.extend(sum.iter().map(|s| s / count as f64));
            movement += sq_dist(&scratch.tmp, &centers[kc]);
            centers[kc].clear();
            centers[kc].extend_from_slice(&scratch.tmp);
        }
        if movement <= cfg.tol {
            break;
        }
    }

    // Final counts against the converged centers, then stable compaction
    // of the non-empty clusters (the `drop_empty` order).
    scratch.counts.clear();
    scratch.counts.resize(used, 0);
    for p in points {
        scratch.counts[nearest_center(p, &centers[..used]).0] += 1;
    }
    compact_non_empty(centers, used, &scratch.counts, &mut scratch.pool, weights);
}

/// k-means++ seeding: first center uniform, subsequent centers drawn with
/// probability proportional to squared distance from the nearest chosen
/// center.
fn kmeanspp_init(points: &[Vec<f64>], k: usize, rng: &mut impl Rng) -> Vec<Vec<f64>> {
    let mut centers: Vec<Vec<f64>> = Vec::with_capacity(k);
    centers.push(points[rng.gen_range(0..points.len())].clone());
    let mut d2: Vec<f64> = points.iter().map(|p| sq_dist(p, &centers[0])).collect();

    while centers.len() < k {
        let total: f64 = d2.iter().sum();
        if total <= 0.0 {
            // All remaining points coincide with existing centers; any
            // further centers would be duplicates. Stop early.
            break;
        }
        let mut u = rng.gen_range(0.0..total);
        let mut chosen = points.len() - 1;
        for (i, &w) in d2.iter().enumerate() {
            if u < w {
                chosen = i;
                break;
            }
            u -= w;
        }
        centers.push(points[chosen].clone());
        let c = centers.last().expect("just pushed");
        for (dist, p) in d2.iter_mut().zip(points) {
            let nd = sq_dist(p, c);
            if nd < *dist {
                *dist = nd;
            }
        }
    }
    centers
}

/// Within-cluster sum of squares of a quantization against its points —
/// the k-means objective, exposed for tests and diagnostics.
pub fn wcss(points: &[Vec<f64>], q: &Quantization) -> f64 {
    points
        .iter()
        .zip(&q.assignments)
        .map(|(p, &a)| sq_dist(p, &q.centers[a]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..50 {
            let j = i as f64 * 0.01;
            pts.push(vec![-5.0 + j, 0.0 + j]);
            pts.push(vec![5.0 - j, 10.0 - j]);
        }
        pts
    }

    #[test]
    fn separates_two_blobs() {
        let pts = two_blobs();
        let q = kmeans(&pts, &KMeansConfig::with_k(2), &mut rng(1));
        assert_eq!(q.centers.len(), 2);
        assert_eq!(q.total_count(), 100);
        // Centers should sit near (-4.75, 0.25) and (4.75, 9.75).
        let mut cs = q.centers.clone();
        cs.sort_by(|a, b| a[0].partial_cmp(&b[0]).unwrap());
        assert!((cs[0][0] + 4.75).abs() < 0.5, "center {:?}", cs[0]);
        assert!((cs[1][0] - 4.75).abs() < 0.5, "center {:?}", cs[1]);
        // Both clusters get half the mass.
        assert_eq!(
            q.counts.iter().copied().max(),
            q.counts.iter().copied().min()
        );
    }

    #[test]
    fn counts_match_assignments() {
        let pts = two_blobs();
        let q = kmeans(&pts, &KMeansConfig::with_k(4), &mut rng(2));
        let mut recount = vec![0u64; q.centers.len()];
        for &a in &q.assignments {
            recount[a] += 1;
        }
        assert_eq!(recount, q.counts);
        assert_eq!(q.total_count() as usize, pts.len());
    }

    #[test]
    fn k_larger_than_points() {
        let pts = vec![vec![0.0], vec![1.0], vec![2.0]];
        let q = kmeans(&pts, &KMeansConfig::with_k(10), &mut rng(3));
        assert!(q.centers.len() <= 3);
        assert_eq!(q.total_count(), 3);
    }

    #[test]
    fn duplicate_points_collapse() {
        let pts = vec![vec![1.0, 1.0]; 20];
        let q = kmeans(&pts, &KMeansConfig::with_k(5), &mut rng(4));
        assert_eq!(q.centers.len(), 1, "identical points need one center");
        assert_eq!(q.counts, vec![20]);
    }

    #[test]
    fn single_point_bag() {
        let pts = vec![vec![3.0, -1.0]];
        let q = kmeans(&pts, &KMeansConfig::with_k(3), &mut rng(5));
        assert_eq!(q.centers, vec![vec![3.0, -1.0]]);
        assert_eq!(q.counts, vec![1]);
        assert_eq!(q.assignments, vec![0]);
    }

    #[test]
    fn wcss_decreases_with_more_clusters() {
        let pts = two_blobs();
        let q1 = kmeans(&pts, &KMeansConfig::with_k(1), &mut rng(6));
        let q2 = kmeans(&pts, &KMeansConfig::with_k(2), &mut rng(6));
        let q8 = kmeans(&pts, &KMeansConfig::with_k(8), &mut rng(6));
        assert!(wcss(&pts, &q2) < wcss(&pts, &q1));
        assert!(wcss(&pts, &q8) <= wcss(&pts, &q2) + 1e-9);
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = two_blobs();
        let a = kmeans(&pts, &KMeansConfig::with_k(3), &mut rng(7));
        let b = kmeans(&pts, &KMeansConfig::with_k(3), &mut rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn with_matches_allocating_kmeans_bit_for_bit() {
        // One dirty scratch and output buffers reused across shapes: the
        // scratch-backed build must reproduce the allocating build exactly,
        // center coordinates and weights to the bit.
        let mut scratch = ClusterScratch::new();
        let mut centers = Vec::new();
        let mut weights = Vec::new();
        for (n, k, seed) in [
            (50, 4, 1u64),
            (7, 3, 2),
            (100, 8, 3),
            (3, 10, 4),
            (64, 2, 5),
        ] {
            let pts: Vec<Vec<f64>> = (0..n)
                .map(|i| vec![(i as f64 * 0.37).sin() * 4.0, (i % 9) as f64])
                .collect();
            let cfg = KMeansConfig::with_k(k);
            let q = kmeans(&pts, &cfg, &mut rng(seed));
            kmeans_with(
                &pts,
                &cfg,
                &mut rng(seed),
                &mut scratch,
                &mut centers,
                &mut weights,
            );
            assert_eq!(centers, q.centers, "centers diverge at n={n} k={k}");
            assert_eq!(weights.len(), q.counts.len());
            for (w, &c) in weights.iter().zip(&q.counts) {
                assert_eq!(w.to_bits(), (c as f64).to_bits());
            }
        }
    }

    #[test]
    fn with_recycles_donated_centers() {
        let pts = two_blobs();
        let mut scratch = ClusterScratch::new();
        let mut centers = Vec::new();
        let mut weights = Vec::new();
        // Donate rows as a retired signature would.
        scratch.recycle_centers((0..8).map(|_| vec![0.0; 2]));
        kmeans_with(
            &pts,
            &KMeansConfig::with_k(3),
            &mut rng(11),
            &mut scratch,
            &mut centers,
            &mut weights,
        );
        let q = kmeans(&pts, &KMeansConfig::with_k(3), &mut rng(11));
        assert_eq!(centers, q.centers);
    }

    #[test]
    #[should_panic(expected = "empty bag")]
    fn empty_bag_panics() {
        kmeans(&[], &KMeansConfig::default(), &mut rng(8));
    }

    #[test]
    #[should_panic(expected = "k must be > 0")]
    fn zero_k_panics() {
        kmeans(&[vec![0.0]], &KMeansConfig::with_k(0), &mut rng(9));
    }
}
