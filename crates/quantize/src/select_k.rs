//! Automatic selection of the signature size `K`.
//!
//! The paper fixes `K` per experiment; in practice a data-driven choice
//! is convenient. Two standard criteria are provided:
//!
//! - the **elbow** of the within-cluster-sum-of-squares curve (largest
//!   second difference of WCSS over `K`), and
//! - the mean **silhouette** coefficient (maximize).
//!
//! Both run k-means for each candidate `K` on the given bag; for the bag
//! sizes in this workload (tens to ~1000 points) that is cheap relative
//! to one EMD solve.

use crate::kmeans::{kmeans, wcss, KMeansConfig};
use crate::{sq_dist, Quantization};
use rand::Rng;

/// Criterion for [`select_k`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KCriterion {
    /// Largest curvature (second difference) of the WCSS curve.
    Elbow,
    /// Maximum mean silhouette coefficient.
    Silhouette,
}

/// Pick `K` from `candidates` and return it with the winning
/// quantization.
///
/// # Panics
/// Panics if `candidates` is empty or `points` is empty.
pub fn select_k(
    points: &[Vec<f64>],
    candidates: &[usize],
    criterion: KCriterion,
    rng: &mut impl Rng,
) -> (usize, Quantization) {
    assert!(!candidates.is_empty(), "select_k: no candidates");
    assert!(!points.is_empty(), "select_k: empty bag");
    let mut results: Vec<(usize, Quantization, f64)> = candidates
        .iter()
        .map(|&k| {
            let q = kmeans(points, &KMeansConfig::with_k(k), rng);
            let w = wcss(points, &q);
            (k, q, w)
        })
        .collect();

    let best_idx = match criterion {
        KCriterion::Elbow => elbow_index(&results.iter().map(|r| r.2).collect::<Vec<_>>()),
        KCriterion::Silhouette => {
            let scores: Vec<f64> = results
                .iter()
                .map(|(_, q, _)| mean_silhouette(points, q))
                .collect();
            scores
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite silhouette"))
                .map(|(i, _)| i)
                .expect("non-empty")
        }
    };
    let (k, q, _) = results.swap_remove(best_idx);
    (k, q)
}

/// Index of the elbow: the candidate maximizing the second difference
/// `w[i-1] - 2 w[i] + w[i+1]`. Ends fall back to the largest drop.
fn elbow_index(w: &[f64]) -> usize {
    if w.len() <= 2 {
        // With at most two candidates take the larger K only if it
        // reduces WCSS meaningfully (>20%).
        return if w.len() == 2 && w[1] < 0.8 * w[0] {
            1
        } else {
            0
        };
    }
    let mut best = 1;
    let mut best_curv = f64::NEG_INFINITY;
    for i in 1..w.len() - 1 {
        let curv = w[i - 1] - 2.0 * w[i] + w[i + 1];
        if curv > best_curv {
            best_curv = curv;
            best = i;
        }
    }
    best
}

/// Mean silhouette coefficient of a quantization (point-to-centroid
/// version: distances to cluster centers, the standard fast variant).
///
/// Returns 0 for single-cluster quantizations (silhouette undefined).
pub fn mean_silhouette(points: &[Vec<f64>], q: &Quantization) -> f64 {
    if q.centers.len() < 2 {
        return 0.0;
    }
    let mut acc = 0.0;
    for (p, &own) in points.iter().zip(&q.assignments) {
        let a = sq_dist(p, &q.centers[own]).sqrt();
        let mut b = f64::INFINITY;
        for (c, center) in q.centers.iter().enumerate() {
            if c == own {
                continue;
            }
            b = b.min(sq_dist(p, center).sqrt());
        }
        let denom = a.max(b);
        if denom > 0.0 {
            acc += (b - a) / denom;
        }
        // Coincident point and both centers identical: contributes 0.
    }
    acc / points.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    /// Three tight, well-separated blobs.
    fn three_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..30 {
            let j = (i % 10) as f64 * 0.02;
            pts.push(vec![0.0 + j, 0.0]);
            pts.push(vec![10.0 + j, 0.0]);
            pts.push(vec![5.0 + j, 8.0]);
        }
        pts
    }

    #[test]
    fn silhouette_picks_three_for_three_blobs() {
        let pts = three_blobs();
        let (k, q) = select_k(&pts, &[2, 3, 4, 5, 6], KCriterion::Silhouette, &mut rng(1));
        assert_eq!(k, 3, "silhouette should find the 3 blobs");
        assert_eq!(q.num_nonempty(), 3);
    }

    #[test]
    fn elbow_picks_three_for_three_blobs() {
        let pts = three_blobs();
        let (k, _) = select_k(&pts, &[1, 2, 3, 4, 5, 6], KCriterion::Elbow, &mut rng(2));
        assert_eq!(k, 3, "elbow should sit at the 3 blobs");
    }

    #[test]
    fn silhouette_high_for_separated_low_for_overlapping() {
        let pts = three_blobs();
        let q_good = kmeans(&pts, &KMeansConfig::with_k(3), &mut rng(3));
        let s_good = mean_silhouette(&pts, &q_good);
        assert!(s_good > 0.8, "separated blobs silhouette {s_good}");

        // One smeared blob forced into 3 clusters scores much lower.
        let smear: Vec<Vec<f64>> = (0..90).map(|i| vec![i as f64 * 0.01, 0.0]).collect();
        let q_bad = kmeans(&smear, &KMeansConfig::with_k(3), &mut rng(4));
        let s_bad = mean_silhouette(&smear, &q_bad);
        assert!(s_bad < s_good, "smeared silhouette {s_bad}");
    }

    #[test]
    fn single_cluster_silhouette_zero() {
        let pts = vec![vec![0.0], vec![0.1]];
        let q = kmeans(&pts, &KMeansConfig::with_k(1), &mut rng(5));
        assert_eq!(mean_silhouette(&pts, &q), 0.0);
    }

    #[test]
    fn two_candidate_elbow_requires_meaningful_drop() {
        // Identical points: K = 2 does not reduce WCSS (already 0).
        let pts = vec![vec![1.0]; 10];
        let (k, _) = select_k(&pts, &[1, 2], KCriterion::Elbow, &mut rng(6));
        assert_eq!(k, 1);
    }

    #[test]
    #[should_panic(expected = "no candidates")]
    fn empty_candidates_panic() {
        select_k(&[vec![0.0]], &[], KCriterion::Elbow, &mut rng(7));
    }
}
