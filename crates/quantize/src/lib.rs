//! Vector quantization — signature construction (§3.1 of the paper).
//!
//! A bag `B_t` is summarized as a *signature*
//! `S_t = {(u_k, w_k)}_{k=1..K}`: representative vectors `u_k` plus the
//! number of bag members `w_k` assigned to each. The paper lists k-means,
//! k-medoids and learning vector quantization as suitable quantizers, and
//! fixed-width histograms as the natural special case for low-dimensional
//! data. All four are implemented here.
//!
//! The output type [`Quantization`] is deliberately minimal (centers,
//! counts, assignments); the `emd` crate wraps it into its `Signature`
//! type for distance computation.

pub mod histogram;
pub mod kmeans;
pub mod kmedoids;
pub mod lvq;
pub mod select_k;

pub use histogram::{
    histogram_1d, histogram_grid, histogram_grid_with, HistogramScratch, HistogramSpec,
};
pub use kmeans::{kmeans, KMeansConfig};
pub use kmedoids::{kmedoids, KMedoidsConfig};
pub use lvq::{lvq_quantize, LvqConfig};
pub use select_k::{mean_silhouette, select_k, KCriterion};

/// Result of quantizing a bag: representative centers with member counts.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantization {
    /// Cluster representatives `u_k` (rows of length `d`).
    pub centers: Vec<Vec<f64>>,
    /// Number of bag members assigned to each center (`w_k`). Same length
    /// as `centers`.
    pub counts: Vec<u64>,
    /// For each input point, the index of its center.
    pub assignments: Vec<usize>,
}

impl Quantization {
    /// Number of clusters with at least one member.
    pub fn num_nonempty(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Total mass (sum of counts) — equals the bag size.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Drop empty clusters, compacting `centers`/`counts` and remapping
    /// `assignments`.
    pub fn drop_empty(mut self) -> Quantization {
        let mut remap = vec![usize::MAX; self.centers.len()];
        let mut centers = Vec::with_capacity(self.centers.len());
        let mut counts = Vec::with_capacity(self.counts.len());
        for (k, (center, &count)) in self.centers.iter().zip(&self.counts).enumerate() {
            if count > 0 {
                remap[k] = centers.len();
                centers.push(center.clone());
                counts.push(count);
            }
        }
        for a in &mut self.assignments {
            *a = remap[*a];
            debug_assert_ne!(*a, usize::MAX, "assignment pointed at empty cluster");
        }
        Quantization {
            centers,
            counts,
            assignments: self.assignments,
        }
    }
}

/// Index of the center nearest to `point` (squared Euclidean).
///
/// # Panics
/// Panics if `centers` is empty.
pub(crate) fn nearest_center(point: &[f64], centers: &[Vec<f64>]) -> (usize, f64) {
    assert!(!centers.is_empty(), "nearest_center: no centers");
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (k, c) in centers.iter().enumerate() {
        let d = sq_dist(point, c);
        if d < best_d {
            best_d = d;
            best = k;
        }
    }
    (best, best_d)
}

/// Squared Euclidean distance (local copy to keep this crate
/// dependency-free).
#[inline]
pub(crate) fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_helpers() {
        let q = Quantization {
            centers: vec![vec![0.0], vec![1.0], vec![2.0]],
            counts: vec![3, 0, 2],
            assignments: vec![0, 0, 0, 2, 2],
        };
        assert_eq!(q.num_nonempty(), 2);
        assert_eq!(q.total_count(), 5);
        let q = q.drop_empty();
        assert_eq!(q.centers.len(), 2);
        assert_eq!(q.counts, vec![3, 2]);
        assert_eq!(q.assignments, vec![0, 0, 0, 1, 1]);
    }

    #[test]
    fn nearest_center_picks_closest() {
        let centers = vec![vec![0.0, 0.0], vec![10.0, 0.0]];
        let (k, d) = nearest_center(&[9.0, 0.0], &centers);
        assert_eq!(k, 1);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_center_ties_take_first() {
        let centers = vec![vec![-1.0], vec![1.0]];
        let (k, _) = nearest_center(&[0.0], &centers);
        assert_eq!(k, 0);
    }
}
