//! Vector quantization — signature construction (§3.1 of the paper).
//!
//! A bag `B_t` is summarized as a *signature*
//! `S_t = {(u_k, w_k)}_{k=1..K}`: representative vectors `u_k` plus the
//! number of bag members `w_k` assigned to each. The paper lists k-means,
//! k-medoids and learning vector quantization as suitable quantizers, and
//! fixed-width histograms as the natural special case for low-dimensional
//! data. All four are implemented here.
//!
//! The output type [`Quantization`] is deliberately minimal (centers,
//! counts, assignments); the `emd` crate wraps it into its `Signature`
//! type for distance computation.

pub mod histogram;
pub mod kmeans;
pub mod kmedoids;
pub mod lvq;
pub mod select_k;

pub use histogram::{
    histogram_1d, histogram_grid, histogram_grid_with, HistogramScratch, HistogramSpec,
};
pub use kmeans::{kmeans, kmeans_with, KMeansConfig};
pub use kmedoids::{kmedoids, kmedoids_with, KMedoidsConfig};
pub use lvq::{lvq_quantize, lvq_quantize_with, LvqConfig};
pub use select_k::{mean_silhouette, select_k, KCriterion};

/// Result of quantizing a bag: representative centers with member counts.
#[derive(Debug, Clone, PartialEq)]
pub struct Quantization {
    /// Cluster representatives `u_k` (rows of length `d`).
    pub centers: Vec<Vec<f64>>,
    /// Number of bag members assigned to each center (`w_k`). Same length
    /// as `centers`.
    pub counts: Vec<u64>,
    /// For each input point, the index of its center.
    pub assignments: Vec<usize>,
}

impl Quantization {
    /// Number of clusters with at least one member.
    pub fn num_nonempty(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Total mass (sum of counts) — equals the bag size.
    pub fn total_count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Drop empty clusters, compacting `centers`/`counts` and remapping
    /// `assignments`.
    pub fn drop_empty(mut self) -> Quantization {
        let mut remap = vec![usize::MAX; self.centers.len()];
        let mut centers = Vec::with_capacity(self.centers.len());
        let mut counts = Vec::with_capacity(self.counts.len());
        for (k, (center, &count)) in self.centers.iter().zip(&self.counts).enumerate() {
            if count > 0 {
                remap[k] = centers.len();
                centers.push(center.clone());
                counts.push(count);
            }
        }
        for a in &mut self.assignments {
            *a = remap[*a];
            debug_assert_ne!(*a, usize::MAX, "assignment pointed at empty cluster");
        }
        Quantization {
            centers,
            counts,
            assignments: self.assignments,
        }
    }
}

/// Reusable working state for the scratch-backed quantizer builds
/// ([`kmeans_with`], [`kmedoids_with`], [`lvq_quantize_with`]):
/// assignment/count/index buffers plus a pool of recycled center-sized
/// rows. One scratch serves every build of a stream (or a whole worker
/// shard); once its buffers have grown to the workload's high-water mark
/// a build performs no heap allocation at all.
#[derive(Debug, Clone, Default)]
pub struct ClusterScratch {
    /// Per-point cluster assignments.
    pub(crate) assignments: Vec<usize>,
    /// Per-cluster member counts.
    pub(crate) counts: Vec<u64>,
    /// Per-cluster coordinate sums (k-means update step).
    pub(crate) sums: Vec<Vec<f64>>,
    /// Free pool of recycled center-sized rows.
    pub(crate) pool: Vec<Vec<f64>>,
    /// Working center for the k-means movement computation.
    pub(crate) tmp: Vec<f64>,
    /// Index permutation (k-medoids/LVQ initialization).
    pub(crate) idx: Vec<usize>,
    /// LVQ per-epoch presentation order.
    pub(crate) order: Vec<usize>,
    /// k-medoids per-cluster member list.
    pub(crate) members: Vec<usize>,
    /// k-medoids medoid indices.
    pub(crate) medoids: Vec<usize>,
    /// k-means++ squared distances to the nearest chosen center.
    pub(crate) d2: Vec<f64>,
}

impl ClusterScratch {
    /// Empty scratch; buffers grow to the workload's shape on first use.
    pub fn new() -> Self {
        ClusterScratch::default()
    }

    /// Return center vectors — typically the points of a retired
    /// signature — to the pool for the next build to reuse.
    pub fn recycle_centers(&mut self, centers: impl IntoIterator<Item = Vec<f64>>) {
        self.pool.extend(centers);
    }
}

/// Write `values` into row `at` of `centers`, appending a recycled row
/// from `pool` when the buffer is short.
pub(crate) fn set_row(
    centers: &mut Vec<Vec<f64>>,
    pool: &mut Vec<Vec<f64>>,
    at: usize,
    values: &[f64],
) {
    if at == centers.len() {
        centers.push(pool.pop().unwrap_or_default());
    }
    let row = &mut centers[at];
    row.clear();
    row.extend_from_slice(values);
}

/// Shared tail of the scratch-backed builds: keep the non-empty clusters
/// of `centers[..used]` in stable order (the order
/// [`Quantization::drop_empty`] produces), fill `weights` with their
/// counts as `f64`, and return surplus rows to `pool`.
pub(crate) fn compact_non_empty(
    centers: &mut Vec<Vec<f64>>,
    used: usize,
    counts: &[u64],
    pool: &mut Vec<Vec<f64>>,
    weights: &mut Vec<f64>,
) {
    weights.clear();
    let mut kept = 0usize;
    for (k, &count) in counts.iter().enumerate().take(used) {
        if count == 0 {
            continue;
        }
        centers.swap(kept, k);
        weights.push(count as f64);
        kept += 1;
    }
    pool.extend(centers.drain(kept..));
}

/// Index of the center nearest to `point` (squared Euclidean).
///
/// # Panics
/// Panics if `centers` is empty.
pub(crate) fn nearest_center(point: &[f64], centers: &[Vec<f64>]) -> (usize, f64) {
    assert!(!centers.is_empty(), "nearest_center: no centers");
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (k, c) in centers.iter().enumerate() {
        let d = sq_dist(point, c);
        if d < best_d {
            best_d = d;
            best = k;
        }
    }
    (best, best_d)
}

/// Squared Euclidean distance (local copy to keep this crate
/// dependency-free).
#[inline]
pub(crate) fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantization_helpers() {
        let q = Quantization {
            centers: vec![vec![0.0], vec![1.0], vec![2.0]],
            counts: vec![3, 0, 2],
            assignments: vec![0, 0, 0, 2, 2],
        };
        assert_eq!(q.num_nonempty(), 2);
        assert_eq!(q.total_count(), 5);
        let q = q.drop_empty();
        assert_eq!(q.centers.len(), 2);
        assert_eq!(q.counts, vec![3, 2]);
        assert_eq!(q.assignments, vec![0, 0, 0, 1, 1]);
    }

    #[test]
    fn nearest_center_picks_closest() {
        let centers = vec![vec![0.0, 0.0], vec![10.0, 0.0]];
        let (k, d) = nearest_center(&[9.0, 0.0], &centers);
        assert_eq!(k, 1);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn nearest_center_ties_take_first() {
        let centers = vec![vec![-1.0], vec![1.0]];
        let (k, _) = nearest_center(&[0.0], &centers);
        assert_eq!(k, 0);
    }
}
