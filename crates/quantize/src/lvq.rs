//! Unsupervised learning vector quantization (competitive learning).
//!
//! The paper cites Kohonen's LVQ as one of the quantizers usable for
//! signature construction. Without class labels the appropriate variant
//! is plain competitive learning ("VQ"/"SOM without neighborhood"): for
//! each presented point the winning prototype moves toward the point by a
//! decaying learning rate.

use crate::{compact_non_empty, nearest_center, set_row, ClusterScratch, Quantization};
use rand::seq::SliceRandom;
use rand::Rng;

/// Configuration for [`lvq_quantize`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LvqConfig {
    /// Number of prototypes.
    pub k: usize,
    /// Number of passes over the bag.
    pub epochs: usize,
    /// Initial learning rate, decayed linearly to zero over training.
    pub learning_rate: f64,
}

impl Default for LvqConfig {
    fn default() -> Self {
        LvqConfig {
            k: 8,
            epochs: 20,
            learning_rate: 0.3,
        }
    }
}

impl LvqConfig {
    /// Convenience constructor fixing only `k`.
    pub fn with_k(k: usize) -> Self {
        LvqConfig {
            k,
            ..LvqConfig::default()
        }
    }
}

/// Quantize a bag with competitive-learning VQ.
///
/// Prototypes are seeded from random distinct bag members, then trained
/// with a linearly decaying learning rate; presentation order is
/// reshuffled every epoch.
///
/// # Panics
/// Panics if `points` is empty, `cfg.k == 0`, or dimensions disagree.
pub fn lvq_quantize(points: &[Vec<f64>], cfg: &LvqConfig, rng: &mut impl Rng) -> Quantization {
    assert!(!points.is_empty(), "lvq: empty bag");
    assert!(cfg.k > 0, "lvq: k must be > 0");
    let d = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == d),
        "lvq: inconsistent point dimensions"
    );
    let n = points.len();
    let k = cfg.k.min(n);

    // Seed prototypes from distinct random members.
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let mut prototypes: Vec<Vec<f64>> = idx[..k].iter().map(|&i| points[i].clone()).collect();

    let total_steps = (cfg.epochs * n).max(1);
    let mut step = 0usize;
    let mut order: Vec<usize> = (0..n).collect();
    for _ in 0..cfg.epochs {
        order.shuffle(rng);
        for &i in &order {
            let rate = cfg.learning_rate * (1.0 - step as f64 / total_steps as f64);
            step += 1;
            let (w, _) = nearest_center(&points[i], &prototypes);
            let proto = &mut prototypes[w];
            for (pj, &xj) in proto.iter_mut().zip(&points[i]) {
                *pj += rate * (xj - *pj);
            }
        }
    }

    let mut counts = vec![0u64; prototypes.len()];
    let mut assignments = vec![0usize; n];
    for (a, p) in assignments.iter_mut().zip(points) {
        *a = nearest_center(p, &prototypes).0;
        counts[*a] += 1;
    }

    Quantization {
        centers: prototypes,
        counts,
        assignments,
    }
    .drop_empty()
}

/// As [`lvq_quantize`], but training prototypes inside caller-kept
/// buffers through the scratch's recycled rows. Consumes the RNG exactly
/// like [`lvq_quantize`], so centers and weights are bit-identical to its
/// `centers` / `counts as f64`. Once warm, a build performs zero heap
/// allocations.
///
/// Assignments are not produced — this is the signature-build fast path,
/// which never needs them.
///
/// # Panics
/// As [`lvq_quantize`].
pub fn lvq_quantize_with(
    points: &[Vec<f64>],
    cfg: &LvqConfig,
    rng: &mut impl Rng,
    scratch: &mut ClusterScratch,
    centers: &mut Vec<Vec<f64>>,
    weights: &mut Vec<f64>,
) {
    assert!(!points.is_empty(), "lvq: empty bag");
    assert!(cfg.k > 0, "lvq: k must be > 0");
    let d = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == d),
        "lvq: inconsistent point dimensions"
    );
    let n = points.len();
    let k = cfg.k.min(n);

    // Seed prototypes from distinct random members — the draw of
    // `lvq_quantize`, verbatim.
    scratch.idx.clear();
    scratch.idx.extend(0..n);
    scratch.idx.shuffle(rng);
    for (at, &i) in scratch.idx[..k].iter().enumerate() {
        set_row(centers, &mut scratch.pool, at, &points[i]);
    }
    scratch.pool.extend(centers.drain(k..));

    let total_steps = (cfg.epochs * n).max(1);
    let mut step = 0usize;
    scratch.order.clear();
    scratch.order.extend(0..n);
    for _ in 0..cfg.epochs {
        scratch.order.shuffle(rng);
        for &i in scratch.order.iter() {
            let rate = cfg.learning_rate * (1.0 - step as f64 / total_steps as f64);
            step += 1;
            let (w, _) = nearest_center(&points[i], centers);
            let proto = &mut centers[w];
            for (pj, &xj) in proto.iter_mut().zip(&points[i]) {
                *pj += rate * (xj - *pj);
            }
        }
    }

    scratch.counts.clear();
    scratch.counts.resize(k, 0);
    for p in points {
        scratch.counts[nearest_center(p, centers).0] += 1;
    }
    compact_non_empty(centers, k, &scratch.counts, &mut scratch.pool, weights);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kmeans::wcss;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn two_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..40 {
            let j = (i % 10) as f64 * 0.05;
            pts.push(vec![-3.0 + j, j]);
            pts.push(vec![3.0 - j, 5.0 - j]);
        }
        pts
    }

    #[test]
    fn prototypes_move_into_blobs() {
        let pts = two_blobs();
        let q = lvq_quantize(&pts, &LvqConfig::with_k(2), &mut rng(1));
        assert_eq!(q.centers.len(), 2);
        let mut xs: Vec<f64> = q.centers.iter().map(|c| c[0]).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(xs[0] < 0.0, "left prototype at {}", xs[0]);
        assert!(xs[1] > 0.0, "right prototype at {}", xs[1]);
    }

    #[test]
    fn objective_comparable_to_kmeans() {
        // LVQ is stochastic but should land within 3x of the k-means WCSS
        // on an easy dataset.
        let pts = two_blobs();
        let lvq = lvq_quantize(&pts, &LvqConfig::with_k(4), &mut rng(2));
        let km = crate::kmeans::kmeans(&pts, &crate::KMeansConfig::with_k(4), &mut rng(2));
        assert!(wcss(&pts, &lvq) < 3.0 * wcss(&pts, &km) + 1e-9);
    }

    #[test]
    fn counts_and_assignments_consistent() {
        let pts = two_blobs();
        let q = lvq_quantize(&pts, &LvqConfig::with_k(3), &mut rng(3));
        let mut recount = vec![0u64; q.centers.len()];
        for &a in &q.assignments {
            recount[a] += 1;
        }
        assert_eq!(recount, q.counts);
        assert_eq!(q.total_count() as usize, pts.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = two_blobs();
        let a = lvq_quantize(&pts, &LvqConfig::with_k(3), &mut rng(4));
        let b = lvq_quantize(&pts, &LvqConfig::with_k(3), &mut rng(4));
        assert_eq!(a, b);
    }

    #[test]
    fn with_matches_allocating_lvq_bit_for_bit() {
        let mut scratch = ClusterScratch::new();
        let mut centers = Vec::new();
        let mut weights = Vec::new();
        for (k, seed) in [(2usize, 1u64), (3, 2), (8, 3), (50, 4)] {
            let pts = two_blobs();
            let cfg = LvqConfig::with_k(k);
            let q = lvq_quantize(&pts, &cfg, &mut rng(seed));
            lvq_quantize_with(
                &pts,
                &cfg,
                &mut rng(seed),
                &mut scratch,
                &mut centers,
                &mut weights,
            );
            assert_eq!(centers, q.centers, "centers diverge at k={k}");
            assert_eq!(weights.len(), q.counts.len());
            for (w, &c) in weights.iter().zip(&q.counts) {
                assert_eq!(w.to_bits(), (c as f64).to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty bag")]
    fn empty_bag_panics() {
        lvq_quantize(&[], &LvqConfig::default(), &mut rng(5));
    }
}
