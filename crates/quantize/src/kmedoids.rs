//! k-medoids by Voronoi iteration (Park & Jun style).
//!
//! Medoids are actual bag members, which makes the signature robust to
//! outliers and meaningful for ground distances that are not Euclidean.
//! The paper lists k-medoids as an alternative quantizer for §3.1.

use crate::{compact_non_empty, set_row, sq_dist, ClusterScratch, Quantization};
use rand::seq::SliceRandom;
use rand::Rng;

/// Configuration for [`kmedoids`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMedoidsConfig {
    /// Number of medoids requested.
    pub k: usize,
    /// Maximum swap iterations.
    pub max_iters: usize,
}

impl Default for KMedoidsConfig {
    fn default() -> Self {
        KMedoidsConfig {
            k: 8,
            max_iters: 50,
        }
    }
}

impl KMedoidsConfig {
    /// Convenience constructor fixing only `k`.
    pub fn with_k(k: usize) -> Self {
        KMedoidsConfig {
            k,
            ..KMedoidsConfig::default()
        }
    }
}

/// Run k-medoids on `points` (squared-Euclidean dissimilarity).
///
/// Uses Voronoi iteration: assign each point to its nearest medoid, then
/// within each cluster pick the member minimizing total dissimilarity to
/// the cluster. Deterministic given the RNG.
///
/// # Panics
/// Panics if `points` is empty, `cfg.k == 0`, or dimensions disagree.
pub fn kmedoids(points: &[Vec<f64>], cfg: &KMedoidsConfig, rng: &mut impl Rng) -> Quantization {
    assert!(!points.is_empty(), "kmedoids: empty bag");
    assert!(cfg.k > 0, "kmedoids: k must be > 0");
    let d = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == d),
        "kmedoids: inconsistent point dimensions"
    );
    let n = points.len();
    let k = cfg.k.min(n);

    // Random distinct initial medoids.
    let mut idx: Vec<usize> = (0..n).collect();
    idx.shuffle(rng);
    let mut medoids: Vec<usize> = idx[..k].to_vec();
    let mut assignments = vec![0usize; n];

    for _ in 0..cfg.max_iters {
        // Assign points to nearest medoid.
        for (a, p) in assignments.iter_mut().zip(points) {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (m, &mi) in medoids.iter().enumerate() {
                let dist = sq_dist(p, &points[mi]);
                if dist < best_d {
                    best_d = dist;
                    best = m;
                }
            }
            *a = best;
        }
        // Recompute each cluster's medoid.
        let mut changed = false;
        #[allow(clippy::needless_range_loop)] // m indexes both medoids and assignments
        for m in 0..medoids.len() {
            let members: Vec<usize> = (0..n).filter(|&i| assignments[i] == m).collect();
            if members.is_empty() {
                continue;
            }
            let mut best = medoids[m];
            let mut best_cost = f64::INFINITY;
            for &cand in &members {
                let cost: f64 = members
                    .iter()
                    .map(|&j| sq_dist(&points[cand], &points[j]))
                    .sum();
                if cost < best_cost {
                    best_cost = cost;
                    best = cand;
                }
            }
            if best != medoids[m] {
                medoids[m] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Final assignment pass.
    let mut counts = vec![0u64; medoids.len()];
    for (a, p) in assignments.iter_mut().zip(points) {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (m, &mi) in medoids.iter().enumerate() {
            let dist = sq_dist(p, &points[mi]);
            if dist < best_d {
                best_d = dist;
                best = m;
            }
        }
        *a = best;
        counts[*a] += 1;
    }

    Quantization {
        centers: medoids.iter().map(|&i| points[i].clone()).collect(),
        counts,
        assignments,
    }
    .drop_empty()
}

/// As [`kmedoids`], but writing the non-empty medoids (stable order) and
/// their member counts as `f64` into caller-kept buffers through the
/// scratch's recycled rows. Consumes the RNG exactly like [`kmedoids`],
/// so centers and weights are bit-identical to its `centers` /
/// `counts as f64`. Once warm, a build performs zero heap allocations.
///
/// Assignments are not produced — this is the signature-build fast path,
/// which never needs them.
///
/// # Panics
/// As [`kmedoids`].
pub fn kmedoids_with(
    points: &[Vec<f64>],
    cfg: &KMedoidsConfig,
    rng: &mut impl Rng,
    scratch: &mut ClusterScratch,
    centers: &mut Vec<Vec<f64>>,
    weights: &mut Vec<f64>,
) {
    assert!(!points.is_empty(), "kmedoids: empty bag");
    assert!(cfg.k > 0, "kmedoids: k must be > 0");
    let d = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == d),
        "kmedoids: inconsistent point dimensions"
    );
    let n = points.len();
    let k = cfg.k.min(n);

    // Split borrows: each buffer is an independent field of the scratch.
    let ClusterScratch {
        assignments,
        counts,
        idx,
        members,
        medoids,
        pool,
        ..
    } = scratch;

    // Random distinct initial medoids — the draw of `kmedoids`, verbatim.
    idx.clear();
    idx.extend(0..n);
    idx.shuffle(rng);
    medoids.clear();
    medoids.extend_from_slice(&idx[..k]);
    assignments.clear();
    assignments.resize(n, 0);

    for _ in 0..cfg.max_iters {
        // Assign points to nearest medoid.
        for (a, p) in assignments.iter_mut().zip(points) {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (m, &mi) in medoids.iter().enumerate() {
                let dist = sq_dist(p, &points[mi]);
                if dist < best_d {
                    best_d = dist;
                    best = m;
                }
            }
            *a = best;
        }
        // Recompute each cluster's medoid.
        let mut changed = false;
        #[allow(clippy::needless_range_loop)] // m indexes both medoids and assignments
        for m in 0..medoids.len() {
            members.clear();
            members.extend((0..n).filter(|&i| assignments[i] == m));
            if members.is_empty() {
                continue;
            }
            let mut best = medoids[m];
            let mut best_cost = f64::INFINITY;
            for &cand in members.iter() {
                let cost: f64 = members
                    .iter()
                    .map(|&j| sq_dist(&points[cand], &points[j]))
                    .sum();
                if cost < best_cost {
                    best_cost = cost;
                    best = cand;
                }
            }
            if best != medoids[m] {
                medoids[m] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Final counts, then materialize medoid points and compact the
    // non-empty clusters (the `drop_empty` order).
    counts.clear();
    counts.resize(medoids.len(), 0);
    for p in points {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (m, &mi) in medoids.iter().enumerate() {
            let dist = sq_dist(p, &points[mi]);
            if dist < best_d {
                best_d = dist;
                best = m;
            }
        }
        counts[best] += 1;
    }
    for (m, &mi) in medoids.iter().enumerate() {
        set_row(centers, pool, m, &points[mi]);
    }
    compact_non_empty(centers, medoids.len(), counts, pool, weights);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn medoids_are_input_points() {
        let pts: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, (i % 7) as f64]).collect();
        let q = kmedoids(&pts, &KMedoidsConfig::with_k(4), &mut rng(1));
        for c in &q.centers {
            assert!(
                pts.iter().any(|p| p == c),
                "medoid {c:?} is not an input point"
            );
        }
    }

    #[test]
    fn separates_two_blobs() {
        let mut pts = Vec::new();
        for i in 0..20 {
            pts.push(vec![0.0 + i as f64 * 0.01]);
            pts.push(vec![100.0 - i as f64 * 0.01]);
        }
        let q = kmedoids(&pts, &KMedoidsConfig::with_k(2), &mut rng(2));
        assert_eq!(q.centers.len(), 2);
        let mut centers: Vec<f64> = q.centers.iter().map(|c| c[0]).collect();
        centers.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(centers[0] < 1.0);
        assert!(centers[1] > 99.0);
        assert_eq!(q.counts, vec![20, 20]);
    }

    #[test]
    fn robust_to_outlier() {
        // One extreme outlier should not drag a medoid the way it drags a
        // k-means center.
        let mut pts: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 * 0.1]).collect();
        pts.push(vec![1000.0]);
        let q = kmedoids(&pts, &KMedoidsConfig::with_k(1), &mut rng(3));
        assert!(
            q.centers[0][0] < 2.0,
            "medoid dragged to {}",
            q.centers[0][0]
        );
    }

    #[test]
    fn counts_match_assignments() {
        let pts: Vec<Vec<f64>> = (0..25).map(|i| vec![(i * i % 13) as f64]).collect();
        let q = kmedoids(&pts, &KMedoidsConfig::with_k(3), &mut rng(4));
        let mut recount = vec![0u64; q.centers.len()];
        for &a in &q.assignments {
            recount[a] += 1;
        }
        assert_eq!(recount, q.counts);
    }

    #[test]
    fn k_clamped_to_n() {
        let pts = vec![vec![1.0], vec![2.0]];
        let q = kmedoids(&pts, &KMedoidsConfig::with_k(5), &mut rng(5));
        assert!(q.centers.len() <= 2);
        assert_eq!(q.total_count(), 2);
    }

    #[test]
    fn with_matches_allocating_kmedoids_bit_for_bit() {
        use crate::ClusterScratch;
        let mut scratch = ClusterScratch::new();
        let mut centers = Vec::new();
        let mut weights = Vec::new();
        for (n, k, seed) in [(30, 4, 1u64), (9, 3, 2), (60, 6, 3), (2, 5, 4)] {
            let pts: Vec<Vec<f64>> = (0..n)
                .map(|i| vec![((i * i) % 17) as f64, (i % 5) as f64 * 0.5])
                .collect();
            let cfg = KMedoidsConfig::with_k(k);
            let q = kmedoids(&pts, &cfg, &mut rng(seed));
            kmedoids_with(
                &pts,
                &cfg,
                &mut rng(seed),
                &mut scratch,
                &mut centers,
                &mut weights,
            );
            assert_eq!(centers, q.centers, "centers diverge at n={n} k={k}");
            assert_eq!(weights.len(), q.counts.len());
            for (w, &c) in weights.iter().zip(&q.counts) {
                assert_eq!(w.to_bits(), (c as f64).to_bits());
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty bag")]
    fn empty_bag_panics() {
        kmedoids(&[], &KMedoidsConfig::default(), &mut rng(6));
    }
}
