#![allow(clippy::needless_range_loop)] // index-driven geometric checks
//! Property-based tests for the quantizers: every method must conserve
//! mass, produce valid assignments, and summarize within the bag's
//! bounding box.

use proptest::prelude::*;
use quantize::{
    histogram_grid, kmeans, kmedoids, lvq_quantize, HistogramSpec, KMeansConfig, KMedoidsConfig,
    LvqConfig, Quantization,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a bag of 2-D points.
fn bag_2d(max_len: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 1..=max_len)
        .prop_map(|pts| pts.into_iter().map(|(x, y)| vec![x, y]).collect())
}

/// Shared invariants of any quantization of `points`.
fn check_invariants(points: &[Vec<f64>], q: &Quantization) -> Result<(), TestCaseError> {
    // Mass conservation.
    prop_assert_eq!(q.total_count() as usize, points.len());
    // Assignments valid and consistent with counts.
    prop_assert_eq!(q.assignments.len(), points.len());
    let mut recount = vec![0u64; q.centers.len()];
    for &a in &q.assignments {
        prop_assert!(a < q.centers.len());
        recount[a] += 1;
    }
    prop_assert_eq!(&recount, &q.counts);
    // No empty clusters after drop_empty.
    prop_assert!(q.counts.iter().all(|&c| c > 0));
    Ok(())
}

/// Centers lie inside the bag's bounding box (true for k-means centroids
/// and k-medoids members; histograms use bin centers which may exceed
/// the box by half a bin).
fn check_bounding_box(
    points: &[Vec<f64>],
    q: &Quantization,
    slack: f64,
) -> Result<(), TestCaseError> {
    for d in 0..2 {
        let min = points.iter().map(|p| p[d]).fold(f64::INFINITY, f64::min);
        let max = points
            .iter()
            .map(|p| p[d])
            .fold(f64::NEG_INFINITY, f64::max);
        for c in &q.centers {
            prop_assert!(
                c[d] >= min - slack && c[d] <= max + slack,
                "center {c:?} outside [{min}, {max}] + {slack}"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kmeans_invariants(points in bag_2d(60), k in 1usize..10, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = kmeans(&points, &KMeansConfig::with_k(k), &mut rng);
        check_invariants(&points, &q)?;
        check_bounding_box(&points, &q, 1e-9)?;
        prop_assert!(q.centers.len() <= k.min(points.len()));
    }

    #[test]
    fn kmedoids_invariants(points in bag_2d(40), k in 1usize..8, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = kmedoids(&points, &KMedoidsConfig::with_k(k), &mut rng);
        check_invariants(&points, &q)?;
        // Medoids are actual members.
        for c in &q.centers {
            prop_assert!(points.iter().any(|p| p == c));
        }
    }

    #[test]
    fn lvq_invariants(points in bag_2d(40), k in 1usize..8, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let q = lvq_quantize(&points, &LvqConfig::with_k(k), &mut rng);
        check_invariants(&points, &q)?;
        // Prototypes are convex-ish combinations of members: inside the
        // bounding box.
        check_bounding_box(&points, &q, 1e-9)?;
    }

    #[test]
    fn histogram_invariants(points in bag_2d(60), width in 0.5..20.0f64) {
        let q = histogram_grid(&points, &HistogramSpec::uniform(2, 0.0, width));
        check_invariants(&points, &q)?;
        // Bin centers are within half a bin of the box.
        check_bounding_box(&points, &q, width / 2.0 + 1e-9)?;
        // Every point falls inside its assigned bin.
        for (p, &a) in points.iter().zip(&q.assignments) {
            for d in 0..2 {
                prop_assert!((p[d] - q.centers[a][d]).abs() <= width / 2.0 + 1e-9);
            }
        }
    }

    /// Histograms are deterministic and permutation-insensitive up to
    /// cluster relabeling: total mass per bin center matches.
    #[test]
    fn histogram_permutation_stable(mut points in bag_2d(30), width in 0.5..10.0f64) {
        let spec = HistogramSpec::uniform(2, 0.0, width);
        let q1 = histogram_grid(&points, &spec);
        points.reverse();
        let q2 = histogram_grid(&points, &spec);
        let to_map = |q: &Quantization| {
            let mut m: std::collections::HashMap<(i64, i64), u64> = std::collections::HashMap::new();
            for (c, &w) in q.centers.iter().zip(&q.counts) {
                m.insert(((c[0] * 1e6) as i64, (c[1] * 1e6) as i64), w);
            }
            m
        };
        prop_assert_eq!(to_map(&q1), to_map(&q2));
    }
}
