//! Item-level scanning on top of the lexer: code tokens annotated with
//! the enclosing function, `#[cfg(test)]` membership, and attribute
//! context, plus `// lint:allow(…)` suppression comments.
//!
//! This is deliberately not a parser. It tracks just enough structure
//! for the lints: brace nesting, `mod`/`fn` item names, whether a
//! `#[cfg(test)]` (or `#[cfg(any/all(… test …))]`) attribute covers the
//! current position, and which attributes immediately precede a
//! `struct`/`enum` declaration.

use crate::lexer::{lex, Class, Span};

/// One code token: a word (identifier/keyword/number) or a single
/// punctuation byte.
#[derive(Debug, Clone, Copy)]
pub struct Tok<'a> {
    /// The token text.
    pub text: &'a str,
    /// Byte offset into the file.
    pub offset: usize,
    /// Whether this is a word (vs punctuation).
    pub word: bool,
    /// 1-indexed line number.
    pub line: u32,
    /// Whether a `#[cfg(test)]` region covers this token.
    pub in_test: bool,
    /// Index into [`Scanned::fns`] of the innermost enclosing function.
    pub func: Option<u32>,
}

/// A `// lint:allow(LINT_ID, reason)` suppression.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// The suppressed lint id.
    pub lint: String,
    /// The justification after the comma (empty if missing).
    pub reason: String,
    /// Line the comment sits on.
    pub line: u32,
    /// First line of code the suppression covers (the comment's own
    /// line, or the next line holding code when the comment stands
    /// alone).
    pub covers_line: u32,
}

/// A `pub struct`/`pub enum` declaration with its immediate attributes.
#[derive(Debug, Clone)]
pub struct TypeDecl {
    /// The type name.
    pub name: String,
    /// Line of the declaration.
    pub line: u32,
    /// Attribute words seen since the previous item boundary (e.g.
    /// `must_use`, `derive`, `cfg`).
    pub attrs: Vec<String>,
    /// Whether the declaration is `pub`.
    pub public: bool,
}

/// A fully scanned source file.
#[derive(Debug)]
pub struct Scanned<'a> {
    /// The source text.
    pub src: &'a str,
    /// Lexer spans covering every byte (for coverage tests).
    pub spans: Vec<Span>,
    /// Code tokens in order, with context.
    pub toks: Vec<Tok<'a>>,
    /// Function names, `module::path::fn` style, indexed by [`Tok::func`].
    pub fns: Vec<String>,
    /// Suppression comments found anywhere in the file.
    pub suppressions: Vec<Suppression>,
    /// Struct/enum declarations with attribute context.
    pub types: Vec<TypeDecl>,
    /// Byte offsets of line starts (line N starts at `lines[N-1]`).
    lines: Vec<usize>,
}

impl Scanned<'_> {
    /// 1-indexed line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> u32 {
        match self.lines.binary_search(&offset) {
            Ok(i) => i as u32 + 1,
            Err(i) => i as u32,
        }
    }
}

/// One entry on the brace-scope stack.
#[derive(Debug)]
struct Scope {
    /// `Some(name)` for `mod name { … }`.
    module: Option<String>,
    /// `Some(index into fns)` for a function body.
    func: Option<u32>,
    /// Whether this scope (or an enclosing one) is `#[cfg(test)]`.
    test: bool,
}

/// Scan `src` into classified tokens with item context.
pub fn scan(src: &str) -> Scanned<'_> {
    let spans = lex(src);
    let mut lines = vec![0usize];
    for (i, b) in src.bytes().enumerate() {
        if b == b'\n' {
            lines.push(i + 1);
        }
    }
    let line_of = |offset: usize, lines: &[usize]| -> u32 {
        match lines.binary_search(&offset) {
            Ok(i) => i as u32 + 1,
            Err(i) => i as u32,
        }
    };

    // Pass 1: raw code tokens (no context yet) + suppressions.
    let mut raw: Vec<(usize, usize, bool)> = Vec::new(); // (start, end, word)
    let mut suppressions = Vec::new();
    for span in &spans {
        match span.class {
            Class::Code => {
                let bytes = src.as_bytes();
                let mut i = span.start;
                while i < span.end {
                    let b = bytes[i];
                    if b.is_ascii_whitespace() {
                        i += 1;
                    } else if is_word_byte(b) {
                        let start = i;
                        while i < span.end && is_word_byte(bytes[i]) {
                            i += 1;
                        }
                        raw.push((start, i, true));
                    } else {
                        raw.push((i, i + 1, false));
                        i += 1;
                    }
                }
            }
            Class::LineComment | Class::BlockComment | Class::DocComment => {
                let text = &src[span.start..span.end];
                if let Some(pos) = text.find("lint:allow(") {
                    let after = &text[pos + "lint:allow(".len()..];
                    if let Some(close) = after.find(')') {
                        let inner = &after[..close];
                        let (lint, reason) = match inner.split_once(',') {
                            Some((l, r)) => (l.trim().to_string(), r.trim().to_string()),
                            None => (inner.trim().to_string(), String::new()),
                        };
                        suppressions.push(Suppression {
                            lint,
                            reason,
                            line: line_of(span.start + pos, &lines),
                            covers_line: 0, // fixed up below
                        });
                    }
                }
            }
            _ => {}
        }
    }

    // Pass 2: context. Walk the raw tokens tracking scopes.
    let mut toks: Vec<Tok<'_>> = Vec::with_capacity(raw.len());
    let mut fns: Vec<String> = Vec::new();
    let mut types: Vec<TypeDecl> = Vec::new();
    let mut stack: Vec<Scope> = Vec::new();

    // Pending item state between an item keyword and its `{` or `;`.
    let mut pending_mod: Option<String> = None;
    let mut pending_fn: Option<String> = None;
    // `#[cfg(test)]` seen since the last item boundary.
    let mut pending_test = false;
    // Attribute words since the last item boundary (for `must_use`).
    let mut pending_attrs: Vec<String> = Vec::new();
    // Attribute bracket tracking: inside `#[ … ]`.
    let mut attr_depth = 0usize;
    let mut attr_has_cfg = false;
    let mut attr_words: Vec<String> = Vec::new();
    // Keywords expecting a name next.
    let mut expect: Option<&'static str> = None;
    let mut last_was_pub = false;
    let mut pending_pub = false;

    let mut i = 0usize;
    while i < raw.len() {
        let (start, end, word) = raw[i];
        let text = &src[start..end];
        let in_test = pending_test || stack.iter().any(|s| s.test);
        let func = stack.iter().rev().find_map(|s| s.func);
        toks.push(Tok {
            text,
            offset: start,
            word,
            line: line_of(start, &lines),
            in_test,
            func,
        });

        if attr_depth > 0 {
            // Inside `#[…]`: collect words, watch for `cfg` + `test`.
            if word {
                attr_words.push(text.to_string());
                if text == "cfg" {
                    attr_has_cfg = true;
                }
            } else if text == "[" || text == "(" {
                attr_depth += 1;
            } else if text == "]" || text == ")" {
                attr_depth -= 1;
                if attr_depth == 0 {
                    let is_cfg_test = attr_has_cfg && attr_words.iter().any(|w| w == "test");
                    // A bare `#[test]` (or `#[bench]`) marks test code too.
                    let is_test_attr = matches!(
                        attr_words.first().map(String::as_str),
                        Some("test" | "bench")
                    );
                    if is_cfg_test || is_test_attr {
                        pending_test = true;
                    }
                    pending_attrs.append(&mut attr_words);
                    attr_has_cfg = false;
                }
            }
            i += 1;
            continue;
        }

        match (word, text) {
            (false, "#") => {
                // Attribute opener if followed by `[` (or `![`, which we
                // treat the same — inner attrs are rare and harmless).
                let mut j = i + 1;
                if j < raw.len() && src[raw[j].0..raw[j].1].eq("!") {
                    j += 1;
                }
                if j < raw.len() && src[raw[j].0..raw[j].1].eq("[") {
                    attr_depth = 1;
                    attr_words.clear();
                    attr_has_cfg = false;
                    // Emit the skipped tokens with current context.
                    for &(s, e, w) in &raw[i + 1..=j] {
                        toks.push(Tok {
                            text: &src[s..e],
                            offset: s,
                            word: w,
                            line: line_of(s, &lines),
                            in_test,
                            func,
                        });
                    }
                    i = j + 1;
                    continue;
                }
            }
            (true, "pub") => {
                last_was_pub = true;
                i += 1;
                continue;
            }
            (true, "mod") => expect = Some("mod"),
            (true, "fn") => expect = Some("fn"),
            (true, "struct") | (true, "enum") => {
                expect = Some("type");
                pending_pub = last_was_pub;
            }
            (true, name) if expect.is_some() => match expect.take() {
                Some("mod") => pending_mod = Some(name.to_string()),
                Some("fn") => {
                    let path: Vec<&str> = stack
                        .iter()
                        .filter_map(|s| s.module.as_deref())
                        .chain(std::iter::once(name))
                        .collect();
                    pending_fn = Some(path.join("::"));
                }
                Some("type") => {
                    types.push(TypeDecl {
                        name: name.to_string(),
                        line: line_of(start, &lines),
                        attrs: pending_attrs.clone(),
                        public: pending_pub,
                    });
                }
                _ => {}
            },
            (false, "{") => {
                let scope_test = pending_test;
                let func_idx = pending_fn.take().map(|name| {
                    fns.push(name);
                    (fns.len() - 1) as u32
                });
                stack.push(Scope {
                    module: pending_mod.take(),
                    func: func_idx,
                    test: scope_test,
                });
                pending_test = false;
                pending_attrs.clear();
                expect = None;
            }
            (false, "}") => {
                stack.pop();
            }
            // A non-word right after `mod`/`fn` means it was not an item
            // declaration (`fn(i32)` pointer types, macro fragments).
            (false, _) if matches!(expect, Some("mod") | Some("fn")) => {
                expect = None;
                pending_fn = None;
                pending_mod = None;
            }
            (false, ";") => {
                // Item ended without a body (`mod foo;`, trait fn, …).
                pending_mod = None;
                pending_fn = None;
                pending_test = false;
                pending_attrs.clear();
                expect = None;
            }
            _ => {}
        }
        if !(word && text == "pub") {
            last_was_pub = false;
        }
        i += 1;
    }

    // Fix up suppression coverage: a suppression covers its own line,
    // or — when no code token shares that line — the next line that has
    // a code token.
    for sup in &mut suppressions {
        let own_line_code = toks.iter().any(|t| t.line == sup.line);
        sup.covers_line = if own_line_code {
            sup.line
        } else {
            toks.iter()
                .map(|t| t.line)
                .filter(|&l| l > sup.line)
                .min()
                .unwrap_or(sup.line + 1)
        };
    }

    Scanned {
        src,
        spans,
        toks,
        fns,
        suppressions,
        types,
        lines,
    }
}

fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_regions_are_marked() {
        let src = r#"
fn lib_code() { x.unwrap(); }
#[cfg(test)]
mod tests {
    fn t() { y.unwrap(); }
}
fn more_lib() { z.unwrap(); }
"#;
        let s = scan(src);
        let unwraps: Vec<_> = s.toks.iter().filter(|t| t.text == "unwrap").collect();
        assert_eq!(unwraps.len(), 3);
        assert!(!unwraps[0].in_test);
        assert!(unwraps[1].in_test);
        assert!(!unwraps[2].in_test);
    }

    #[test]
    fn cfg_all_test_is_marked() {
        let src = "#[cfg(all(test, feature = \"x\"))]\nmod t { fn f() { a.unwrap(); } }";
        let s = scan(src);
        assert!(s
            .toks
            .iter()
            .filter(|t| t.text == "unwrap")
            .all(|t| t.in_test));
    }

    #[test]
    fn function_paths_include_modules() {
        let src = "mod outer { mod inner { fn target_with() { vec.push(1); } } }";
        let s = scan(src);
        let push = s.toks.iter().find(|t| t.text == "push").unwrap();
        let f = push.func.unwrap();
        assert_eq!(s.fns[f as usize], "outer::inner::target_with");
    }

    #[test]
    fn suppressions_are_parsed_with_reason_and_coverage() {
        let src = "// lint:allow(NO_PANIC_SURFACE, poisoning is unrecoverable)\nlet x = a.unwrap();\nlet y = b.unwrap(); // lint:allow(NO_PANIC_SURFACE, same line)\n";
        let s = scan(src);
        assert_eq!(s.suppressions.len(), 2);
        assert_eq!(s.suppressions[0].lint, "NO_PANIC_SURFACE");
        assert_eq!(s.suppressions[0].reason, "poisoning is unrecoverable");
        assert_eq!(s.suppressions[0].covers_line, 2);
        assert_eq!(s.suppressions[1].covers_line, 3);
    }

    #[test]
    fn type_decls_capture_attributes() {
        let src = "#[must_use]\n#[derive(Debug)]\npub struct PipelineBuilder { x: u32 }\npub struct Bare;";
        let s = scan(src);
        assert_eq!(s.types.len(), 2);
        assert!(s.types[0].attrs.iter().any(|a| a == "must_use"));
        assert!(s.types[1].attrs.is_empty());
        assert!(s.types[1].public);
    }

    #[test]
    fn attribute_cfg_not_test_does_not_mark() {
        let src = "#[cfg(feature = \"extra\")]\nfn f() { a.unwrap(); }";
        let s = scan(src);
        assert!(s
            .toks
            .iter()
            .filter(|t| t.text == "unwrap")
            .all(|t| !t.in_test));
    }
}
