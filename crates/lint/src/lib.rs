//! `bagscpd-lint`: offline static analysis enforcing this workspace's
//! runtime invariants before the code ever runs.
//!
//! The detector's online/streaming claims rest on contracts that used
//! to be enforced only dynamically (the counting-allocator guard test,
//! golden output tests) or socially (review):
//!
//! | lint | invariant |
//! |------|-----------|
//! | `NO_ALLOC_HOT_PATH` | configured hot-path functions (the `*_with` scratch APIs) contain no allocation tokens |
//! | `NO_PANIC_SURFACE` | no `unwrap()`/`expect(`/`panic!`/`unreachable!`/`todo!` in library code of the runtime crates |
//! | `NO_RAW_OUTPUT` | no `println!`/`eprintln!`/`print!`/`dbg!` in library crates — operator output flows through `Event`/`Sink`/telemetry |
//! | `TELEMETRY_DOC_DRIFT` | every registered metric name appears in the `src/README.md` table, and vice versa |
//! | `SNAPSHOT_VERSION_GUARD` | the serialized-layout regions of `snapshot.rs`/`checkpoint.rs` cannot change without a version bump |
//! | `MUST_USE_GUARD` | builder/handle types that are silently droppable carry `#[must_use]` |
//!
//! Findings print as `file:line: [LINT_ID] message`. Legacy findings
//! are pinned in the `[baseline]` section of `lint.toml` (counts can
//! only shrink); intentional sites carry
//! `// lint:allow(LINT_ID, reason)` with a mandatory reason.

pub mod config;
pub mod lexer;
pub mod lints;
pub mod scan;

use config::Toml;
use std::collections::BTreeMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the run unconditionally.
    Error,
    /// Fails the run under `--deny-warnings`.
    Warning,
}

/// One finding, rendered as `file:line: [LINT_ID] message`.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Root-relative path with forward slashes.
    pub file: String,
    /// 1-indexed line (0 for file-level findings).
    pub line: u32,
    /// Stable machine-readable lint id.
    pub lint: &'static str,
    /// Human explanation.
    pub message: String,
    /// Error or warning.
    pub severity: Severity,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Run options from the CLI.
#[derive(Debug, Default, Clone)]
pub struct Options {
    /// Treat warnings as fatal.
    pub deny_warnings: bool,
    /// Re-bless the snapshot-layout fingerprints instead of checking
    /// them.
    pub update_fingerprints: bool,
}

/// What a check run produced.
#[derive(Debug)]
pub struct CheckReport {
    /// Findings that survived suppressions and baselines, sorted.
    pub findings: Vec<Finding>,
    /// Source files scanned.
    pub files_scanned: usize,
    /// Findings absorbed by `[baseline]` entries.
    pub baselined: usize,
    /// Findings absorbed by `lint:allow` comments.
    pub suppressed: usize,
}

impl CheckReport {
    /// Error-severity findings.
    pub fn errors(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .count()
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
            .count()
    }

    /// Whether the run should fail.
    pub fn failed(&self, opts: &Options) -> bool {
        self.errors() > 0 || (opts.deny_warnings && self.warnings() > 0)
    }
}

/// Lint ids that participate in suppression and baselining (the
/// per-site code lints — drift and fingerprint findings are global
/// facts a comment cannot wave away).
const SUPPRESSIBLE: &[&str] = &[
    lints::NO_ALLOC_HOT_PATH,
    lints::NO_PANIC_SURFACE,
    lints::NO_RAW_OUTPUT,
    lints::MUST_USE_GUARD,
];

/// Run every configured lint under `root`.
///
/// # Errors
/// I/O failures reading sources or writing fingerprints; config shape
/// errors surface as findings, not `Err`.
pub fn run_check(root: &Path, cfg: &Toml, opts: &Options) -> io::Result<CheckReport> {
    let mut raw_findings: Vec<Finding> = Vec::new();
    let mut files: BTreeMap<String, String> = BTreeMap::new(); // rel path -> source

    // Gather every file any lint wants, deduplicated.
    let mut wanted: Vec<String> = Vec::new();
    for dir in cfg
        .strings(lints::SECTION_PANIC, "include")
        .iter()
        .chain(cfg.strings(lints::SECTION_RAW_OUTPUT, "include").iter())
    {
        collect_rs_files(root, Path::new(dir), &mut wanted)?;
    }
    for glob in cfg
        .strings(lints::SECTION_ALLOC, "files")
        .iter()
        .chain(cfg.strings(lints::SECTION_MUST_USE, "files").iter())
    {
        // File globs are explicit paths or `dir/*.rs` patterns.
        expand_file_glob(root, glob, &mut wanted)?;
    }
    if let Some(reg) = cfg
        .section(lints::SECTION_DRIFT)
        .get("registry")
        .and_then(|v| v.as_str().map(String::from))
    {
        wanted.push(reg);
    }
    for file in cfg.section(lints::SECTION_SNAPSHOT).keys() {
        wanted.push(file.clone());
    }
    wanted.sort();
    wanted.dedup();
    for rel in &wanted {
        let path = root.join(rel);
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                files.insert(rel.clone(), text);
            }
            Err(e) => raw_findings.push(Finding {
                file: rel.clone(),
                line: 0,
                lint: lints::CONFIG,
                message: format!("cannot read configured file: {e}"),
                severity: Severity::Error,
            }),
        }
    }

    // Scan once per file, then run the per-file lints.
    let mut suppressions: Vec<(String, scan::Suppression)> = Vec::new();
    for (rel, text) in &files {
        let scanned = scan::scan(text);
        for sup in &scanned.suppressions {
            suppressions.push((rel.clone(), sup.clone()));
        }
        lints::alloc_hot_path(cfg, rel, &scanned, &mut raw_findings);
        lints::panic_surface(cfg, rel, &scanned, &mut raw_findings);
        lints::raw_output(cfg, rel, &scanned, &mut raw_findings);
        lints::must_use_guard(cfg, rel, &scanned, &mut raw_findings);
    }

    // Global lints.
    lints::telemetry_doc_drift(root, cfg, &files, &mut raw_findings);
    lints::snapshot_version_guard(root, cfg, &files, opts, &mut raw_findings)?;

    // Apply suppressions, then baselines.
    let mut suppressed = 0usize;
    let mut used = vec![false; suppressions.len()];
    raw_findings.retain(|f| {
        if !SUPPRESSIBLE.contains(&f.lint) {
            return true;
        }
        for (i, (file, sup)) in suppressions.iter().enumerate() {
            if file == &f.file && sup.lint == f.lint && sup.covers_line == f.line {
                if sup.reason.is_empty() {
                    continue; // reasonless suppressions do not count
                }
                used[i] = true;
                suppressed += 1;
                return false;
            }
        }
        true
    });
    for (i, (file, sup)) in suppressions.iter().enumerate() {
        if sup.reason.is_empty() {
            raw_findings.push(Finding {
                file: file.clone(),
                line: sup.line,
                lint: lints::SUPPRESSION,
                message: format!(
                    "lint:allow({}) needs a reason: `// lint:allow({}, why this is sound)`",
                    sup.lint, sup.lint
                ),
                severity: Severity::Warning,
            });
        } else if !used[i] && SUPPRESSIBLE.contains(&sup.lint.as_str()) {
            raw_findings.push(Finding {
                file: file.clone(),
                line: sup.line,
                lint: lints::SUPPRESSION,
                message: format!(
                    "unused suppression for {} (nothing fires on line {})",
                    sup.lint, sup.covers_line
                ),
                severity: Severity::Warning,
            });
        }
    }

    // Baseline: pinned legacy counts per `LINT:file`, shrink-only.
    let baseline = cfg.section(lints::SECTION_BASELINE);
    let mut counts: BTreeMap<(&'static str, String), u32> = BTreeMap::new();
    for f in &raw_findings {
        if SUPPRESSIBLE.contains(&f.lint) {
            *counts.entry((f.lint, f.file.clone())).or_default() += 1;
        }
    }
    let mut baselined = 0usize;
    let mut findings: Vec<Finding> = Vec::new();
    for f in raw_findings {
        let key = format!("{}:{}", f.lint, f.file);
        match baseline.get(&key).and_then(config::Value::as_int) {
            Some(pinned) if SUPPRESSIBLE.contains(&f.lint) => {
                let actual = counts.get(&(f.lint, f.file.clone())).copied().unwrap_or(0) as i64;
                if actual <= pinned {
                    baselined += 1;
                } else {
                    findings.push(Finding {
                        message: format!(
                            "{} ({actual} findings exceed the pinned baseline of {pinned})",
                            f.message
                        ),
                        ..f
                    });
                }
            }
            _ => findings.push(f),
        }
    }
    // Stale baselines (actual < pinned, including 0) must shrink.
    for (key, value) in &baseline {
        let Some(pinned) = value.as_int() else {
            continue;
        };
        let Some((lint, file)) = key.split_once(':') else {
            findings.push(Finding {
                file: "lint.toml".into(),
                line: 0,
                lint: lints::CONFIG,
                message: format!("malformed baseline key {key:?}: expected \"LINT_ID:path\""),
                severity: Severity::Warning,
            });
            continue;
        };
        let actual = counts
            .iter()
            .find(|((l, f), _)| *l == lint && f == file)
            .map(|(_, &c)| c as i64)
            .unwrap_or(0);
        if actual < pinned {
            findings.push(Finding {
                file: "lint.toml".into(),
                line: 0,
                lint: lints::BASELINE,
                message: format!(
                    "stale baseline {key:?}: pinned {pinned}, found {actual} — lower it so the count can only shrink"
                ),
                severity: Severity::Warning,
            });
        }
    }

    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.lint).cmp(&(b.file.as_str(), b.line, b.lint)));
    Ok(CheckReport {
        findings,
        files_scanned: files.len(),
        baselined,
        suppressed,
    })
}

/// Directory names never scanned: test/bench/example/binary/fixture
/// code is allowed to panic and print.
const EXCLUDED_DIRS: &[&str] = &["tests", "benches", "examples", "bin", "fixtures", "target"];

/// Recursively collect `.rs` files under `root/dir` (root-relative,
/// forward slashes), skipping [`EXCLUDED_DIRS`].
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let full = root.join(dir);
    if !full.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&full)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if EXCLUDED_DIRS.contains(&name) {
                continue;
            }
            collect_rs_files(root, &dir.join(name), out)?;
        } else if name.ends_with(".rs") {
            out.push(rel_string(&dir.join(name)));
        }
    }
    Ok(())
}

/// Expand a config file glob: a literal path, or `dir/*.rs`.
fn expand_file_glob(root: &Path, glob: &str, out: &mut Vec<String>) -> io::Result<()> {
    match glob.split_once('*') {
        None => {
            if root.join(glob).is_file() {
                out.push(glob.to_string());
            }
            Ok(())
        }
        Some((prefix, suffix)) => {
            let dir = Path::new(prefix.trim_end_matches('/'));
            let mut all = Vec::new();
            collect_rs_files(root, dir, &mut all)?;
            out.extend(
                all.into_iter()
                    .filter(|p| p.starts_with(prefix) && p.ends_with(suffix)),
            );
            Ok(())
        }
    }
}

/// A path as a root-relative forward-slash string.
fn rel_string(path: &Path) -> String {
    let s = path.to_string_lossy().replace('\\', "/");
    s.strip_prefix("./").unwrap_or(&s).to_string()
}
