//! `cargo run -p lint -- check`: run the workspace lints.

use lint::config::Toml;
use lint::{run_check, Options};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
bagscpd-lint: offline static analysis for this workspace

USAGE:
    cargo run -p lint -- check [OPTIONS]

OPTIONS:
    --deny-warnings          fail on warning-severity findings too
    --update-fingerprints    re-bless the serialized-layout fingerprints
    --config <PATH>          lint config (default: <root>/lint.toml)
    --root <PATH>            workspace root (default: ancestor of this crate)

EXIT CODES:
    0  clean
    1  findings
    2  usage or configuration error
";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(command) = args.next() else {
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    if command == "--help" || command == "-h" || command == "help" {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if command != "check" {
        eprintln!("unknown command {command:?}\n");
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }

    let mut opts = Options::default();
    let mut root: Option<PathBuf> = None;
    let mut config: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--deny-warnings" => opts.deny_warnings = true,
            "--update-fingerprints" => opts.update_fingerprints = true,
            "--config" => match args.next() {
                Some(p) => config = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--config needs a path");
                    return ExitCode::from(2);
                }
            },
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown option {other:?}\n");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    // Default root: the workspace containing this crate, so the tool
    // works from any cwd inside the repo.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap_or_else(|_| PathBuf::from("."))
    });
    let config_path = config.unwrap_or_else(|| root.join("lint.toml"));

    let text = match std::fs::read_to_string(&config_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };
    let cfg = match Toml::parse(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{}: {e}", config_path.display());
            return ExitCode::from(2);
        }
    };

    let report = match run_check(&root, &cfg, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint run failed: {e}");
            return ExitCode::from(2);
        }
    };
    for finding in &report.findings {
        println!("{finding}");
    }
    let verdict = if report.failed(&opts) { "FAIL" } else { "ok" };
    println!(
        "lint: {} — {} files scanned, {} errors, {} warnings, {} suppressed, {} baselined",
        verdict,
        report.files_scanned,
        report.errors(),
        report.warnings(),
        report.suppressed,
        report.baselined,
    );
    if report.failed(&opts) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
