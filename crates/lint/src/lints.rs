//! The lint implementations.
//!
//! Per-file code lints ([`alloc_hot_path`], [`panic_surface`],
//! [`raw_output`], [`must_use_guard`]) run over a [`scan::Scanned`]
//! view and honor `lint:allow` suppressions and `[baseline]` pins (the
//! driver in [`crate::run_check`] applies both). Global lints
//! ([`telemetry_doc_drift`], [`snapshot_version_guard`]) compare whole
//! artifacts and cannot be suppressed inline.

use crate::config::{glob_match, Toml};
use crate::lexer::Class;
use crate::scan::{self, Scanned};
use crate::{Finding, Options, Severity};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// Allocation tokens in configured hot-path functions.
pub const NO_ALLOC_HOT_PATH: &str = "NO_ALLOC_HOT_PATH";
/// Panic tokens in library code of the runtime crates.
pub const NO_PANIC_SURFACE: &str = "NO_PANIC_SURFACE";
/// Raw stdout/stderr macros in library crates.
pub const NO_RAW_OUTPUT: &str = "NO_RAW_OUTPUT";
/// Registered metrics vs. documented metrics.
pub const TELEMETRY_DOC_DRIFT: &str = "TELEMETRY_DOC_DRIFT";
/// Serialized-layout fingerprint vs. version constants.
pub const SNAPSHOT_VERSION_GUARD: &str = "SNAPSHOT_VERSION_GUARD";
/// Droppable builder/handle types missing `#[must_use]`.
pub const MUST_USE_GUARD: &str = "MUST_USE_GUARD";
/// Malformed or unused `lint:allow` comments.
pub const SUPPRESSION: &str = "SUPPRESSION";
/// Stale `[baseline]` pins.
pub const BASELINE: &str = "BASELINE";
/// Configuration problems.
pub const CONFIG: &str = "CONFIG";

/// `lint.toml` section names.
pub const SECTION_ALLOC: &str = "alloc_hot_path";
/// See [`SECTION_ALLOC`].
pub const SECTION_PANIC: &str = "panic_surface";
/// See [`SECTION_ALLOC`].
pub const SECTION_RAW_OUTPUT: &str = "raw_output";
/// See [`SECTION_ALLOC`].
pub const SECTION_DRIFT: &str = "telemetry_drift";
/// See [`SECTION_ALLOC`].
pub const SECTION_SNAPSHOT: &str = "snapshot_guard";
/// See [`SECTION_ALLOC`].
pub const SECTION_MUST_USE: &str = "must_use";
/// See [`SECTION_ALLOC`].
pub const SECTION_BASELINE: &str = "baseline";

/// Default allocation tokens for `NO_ALLOC_HOT_PATH` (overridable via
/// the section's `tokens` key).
const DEFAULT_ALLOC_TOKENS: &[&str] = &[
    "Vec::new",
    "vec!",
    "Box::new",
    "String::new",
    "String::from",
    "format!",
    "with_capacity",
    "to_vec",
    "to_string",
    "to_owned",
    "collect",
    "clone",
    "Arc::new",
    "Rc::new",
    "HashMap::new",
    "BTreeMap::new",
];

/// Panic tokens for `NO_PANIC_SURFACE`.
const PANIC_TOKENS: &[&str] = &[
    "unwrap(",
    "expect(",
    "panic!",
    "unreachable!",
    "todo!",
    "unimplemented!",
];

/// Output macros for `NO_RAW_OUTPUT`.
const OUTPUT_TOKENS: &[&str] = &["println!", "eprintln!", "print!", "eprint!", "dbg!"];

/// A compiled token-sequence pattern (words and single punctuation
/// characters, matched against consecutive code tokens).
struct Pattern {
    /// The original spec, for messages.
    spec: String,
    /// The token texts to match in order.
    toks: Vec<String>,
}

/// Compile `spec` ("Vec::new", ".collect(", "vec!") into a token
/// sequence using the scanner's own tokenization rules.
fn compile(spec: &str) -> Pattern {
    let mut toks = Vec::new();
    let bytes = spec.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_whitespace() {
            i += 1;
        } else if b.is_ascii_alphanumeric() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            toks.push(spec[start..i].to_string());
        } else {
            toks.push(spec[i..i + 1].to_string());
            i += 1;
        }
    }
    Pattern {
        spec: spec.to_string(),
        toks,
    }
}

/// Find every match of `patterns` in non-test code tokens, calling
/// `hit(pattern_spec, line)` for each.
fn match_patterns(scanned: &Scanned<'_>, patterns: &[Pattern], mut hit: impl FnMut(&str, u32)) {
    let toks = &scanned.toks;
    for i in 0..toks.len() {
        if toks[i].in_test {
            continue;
        }
        for p in patterns {
            let k = p.toks.len();
            if k == 0 || i + k > toks.len() {
                continue;
            }
            if p.toks.iter().zip(&toks[i..i + k]).all(|(a, b)| a == b.text) {
                hit(&p.spec, toks[i].line);
            }
        }
    }
}

/// Is `rel` under one of the configured directories?
fn included(rel: &str, dirs: &[String]) -> bool {
    dirs.iter()
        .any(|d| rel == d || rel.starts_with(&format!("{}/", d.trim_end_matches('/'))))
}

/// `NO_ALLOC_HOT_PATH`: configured hot-path functions must not contain
/// allocation tokens — the static complement of the runtime
/// counting-allocator guard.
pub fn alloc_hot_path(cfg: &Toml, rel: &str, scanned: &Scanned<'_>, out: &mut Vec<Finding>) {
    let file_globs = cfg.strings(SECTION_ALLOC, "files");
    if !file_globs.iter().any(|g| glob_match(g, rel)) {
        return;
    }
    let fn_globs = cfg.strings(SECTION_ALLOC, "functions");
    let token_specs = {
        let configured = cfg.strings(SECTION_ALLOC, "tokens");
        if configured.is_empty() {
            DEFAULT_ALLOC_TOKENS.iter().map(|s| s.to_string()).collect()
        } else {
            configured
        }
    };
    let patterns: Vec<Pattern> = token_specs.iter().map(|s| compile(s)).collect();

    // Which function indices are hot? Match globs against the final
    // path segment (`push_with` of `online::push_with`).
    let hot: Vec<bool> = scanned
        .fns
        .iter()
        .map(|path| {
            let name = path.rsplit("::").next().unwrap_or(path);
            fn_globs.iter().any(|g| glob_match(g, name))
        })
        .collect();

    let toks = &scanned.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        if t.in_test {
            continue;
        }
        let Some(f) = t.func else { continue };
        if !hot[f as usize] {
            continue;
        }
        for p in &patterns {
            let k = p.toks.len();
            if k == 0 || i + k > toks.len() {
                continue;
            }
            if p.toks.iter().zip(&toks[i..i + k]).all(|(a, b)| a == b.text) {
                out.push(Finding {
                    file: rel.to_string(),
                    line: t.line,
                    lint: NO_ALLOC_HOT_PATH,
                    message: format!(
                        "allocation token `{}` in hot-path fn `{}` — use the scratch-backed \
                         zero-alloc form or justify with `// lint:allow({NO_ALLOC_HOT_PATH}, …)`",
                        p.spec, scanned.fns[f as usize]
                    ),
                    severity: Severity::Error,
                });
            }
        }
    }
}

/// `NO_PANIC_SURFACE`: no panic tokens in library (non-test) code of
/// the configured crates.
pub fn panic_surface(cfg: &Toml, rel: &str, scanned: &Scanned<'_>, out: &mut Vec<Finding>) {
    if !included(rel, &cfg.strings(SECTION_PANIC, "include")) {
        return;
    }
    let patterns: Vec<Pattern> = PANIC_TOKENS.iter().map(|s| compile(s)).collect();
    match_patterns(scanned, &patterns, |spec, line| {
        out.push(Finding {
            file: rel.to_string(),
            line,
            lint: NO_PANIC_SURFACE,
            message: format!(
                "`{spec}` on the library panic surface — propagate a Result, restructure, \
                 or justify with `// lint:allow({NO_PANIC_SURFACE}, …)`",
            ),
            severity: Severity::Error,
        });
    });
}

/// `NO_RAW_OUTPUT`: no stdout/stderr macros in library crates — all
/// operator-facing output flows through `Event`/`Sink`/telemetry.
pub fn raw_output(cfg: &Toml, rel: &str, scanned: &Scanned<'_>, out: &mut Vec<Finding>) {
    if !included(rel, &cfg.strings(SECTION_RAW_OUTPUT, "include")) {
        return;
    }
    let patterns: Vec<Pattern> = OUTPUT_TOKENS.iter().map(|s| compile(s)).collect();
    match_patterns(scanned, &patterns, |spec, line| {
        out.push(Finding {
            file: rel.to_string(),
            line,
            lint: NO_RAW_OUTPUT,
            message: format!(
                "`{spec}` in library code — emit an `Event` through a `Sink` \
                 (`Event::Note`/`StderrAlertSink`) instead",
            ),
            severity: Severity::Error,
        });
    });
}

/// `MUST_USE_GUARD`: configured builder/handle types must carry
/// `#[must_use]` so dropping them silently is a compiler warning.
pub fn must_use_guard(cfg: &Toml, rel: &str, scanned: &Scanned<'_>, out: &mut Vec<Finding>) {
    let file_globs = cfg.strings(SECTION_MUST_USE, "files");
    if !file_globs.iter().any(|g| glob_match(g, rel)) {
        return;
    }
    let type_globs = cfg.strings(SECTION_MUST_USE, "types");
    for decl in &scanned.types {
        if !type_globs.iter().any(|g| glob_match(g, &decl.name)) {
            continue;
        }
        if decl.attrs.iter().any(|a| a == "must_use") {
            continue;
        }
        out.push(Finding {
            file: rel.to_string(),
            line: decl.line,
            lint: MUST_USE_GUARD,
            message: format!(
                "type `{}` is silently droppable — add `#[must_use]` so an unused \
                 builder/handle is a compiler warning",
                decl.name
            ),
            severity: Severity::Warning,
        });
    }
}

/// `TELEMETRY_DOC_DRIFT`: every metric name registered in the telemetry
/// module must appear in the documented metrics table, and vice versa.
pub fn telemetry_doc_drift(
    root: &Path,
    cfg: &Toml,
    files: &BTreeMap<String, String>,
    out: &mut Vec<Finding>,
) {
    let section = cfg.section(SECTION_DRIFT);
    let (Some(reg_path), Some(doc_path)) = (
        section.get("registry").and_then(|v| v.as_str()),
        section.get("doc").and_then(|v| v.as_str()),
    ) else {
        return;
    };
    let prefix = section
        .get("prefix")
        .and_then(|v| v.as_str())
        .unwrap_or("bagscpd_");

    // Registered names: string literals in the registry source that are
    // exactly a metric name (prefix + [a-z0-9_]).
    let Some(reg_src) = files.get(reg_path) else {
        return; // unreadable: already reported by the driver
    };
    let scanned = scan::scan(reg_src);
    let mut registered: BTreeMap<String, u32> = BTreeMap::new();
    for span in &scanned.spans {
        if span.class != Class::Str {
            continue;
        }
        let text = reg_src[span.start..span.end]
            .trim_start_matches(['b', 'c'])
            .trim_matches('"');
        if text.starts_with(prefix)
            && text
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            registered
                .entry(text.to_string())
                .or_insert(scanned.line_of(span.start));
        }
    }

    // Documented names: `name` occurrences in table rows (`| … |`),
    // label suffixes (`{worker=}`) stripped.
    let doc_text = match std::fs::read_to_string(root.join(doc_path)) {
        Ok(t) => t,
        Err(e) => {
            out.push(Finding {
                file: doc_path.to_string(),
                line: 0,
                lint: CONFIG,
                message: format!("cannot read metrics doc: {e}"),
                severity: Severity::Error,
            });
            return;
        }
    };
    let mut documented: BTreeMap<String, u32> = BTreeMap::new();
    for (idx, line) in doc_text.lines().enumerate() {
        if !line.trim_start().starts_with('|') {
            continue;
        }
        let mut rest = line;
        while let Some(pos) = rest.find('`') {
            rest = &rest[pos + 1..];
            let Some(close) = rest.find('`') else { break };
            let name = &rest[..close];
            rest = &rest[close + 1..];
            let base = name.split('{').next().unwrap_or(name);
            if base.starts_with(prefix) {
                documented.entry(base.to_string()).or_insert(idx as u32 + 1);
            }
        }
    }

    for (name, line) in &registered {
        if !documented.contains_key(name) {
            out.push(Finding {
                file: reg_path.to_string(),
                line: *line,
                lint: TELEMETRY_DOC_DRIFT,
                message: format!(
                    "metric `{name}` is registered here but missing from the {doc_path} metrics table"
                ),
                severity: Severity::Error,
            });
        }
    }
    for (name, line) in &documented {
        if !registered.contains_key(name) {
            out.push(Finding {
                file: doc_path.to_string(),
                line: *line,
                lint: TELEMETRY_DOC_DRIFT,
                message: format!(
                    "metric `{name}` is documented here but not registered in {reg_path}"
                ),
                severity: Severity::Error,
            });
        }
    }
}

/// FNV-1a 64-bit.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The canonical content of a `.fingerprint` file.
fn fingerprint_content(rel: &str, hash: u64, versions: &[(String, String)]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# bagscpd-lint serialized-layout fingerprint for {rel}\n\
         # regenerate after a deliberate layout change (with its version bump):\n\
         #   cargo run -p lint -- check --update-fingerprints\n\
         layout-fnv64 = \"{hash:016x}\"\n"
    ));
    for (name, decl) in versions {
        out.push_str(&format!("version {name} = {decl:?}\n"));
    }
    out
}

/// Extract `// lint:fingerprint-begin(…)` … `-end(…)` regions; returns
/// `(region name, content)` pairs in order.
fn fingerprint_regions(src: &str) -> Vec<(String, String)> {
    let mut regions = Vec::new();
    let mut current: Option<(String, usize)> = None;
    let mut offset = 0usize;
    for line in src.split_inclusive('\n') {
        if let Some(pos) = line.find("lint:fingerprint-begin(") {
            let name = line[pos + "lint:fingerprint-begin(".len()..]
                .split(')')
                .next()
                .unwrap_or("")
                .to_string();
            current = Some((name, offset + line.len()));
        } else if line.contains("lint:fingerprint-end(") {
            if let Some((name, start)) = current.take() {
                regions.push((name, src[start..offset].to_string()));
            }
        }
        offset += line.len();
    }
    regions
}

/// `SNAPSHOT_VERSION_GUARD`: a content fingerprint over the
/// serialized-layout regions of each guarded file, stored beside the
/// source as `<file>.fingerprint`, fails when the layout changes
/// without its version constant(s) changing too.
///
/// # Errors
/// Only fingerprint-file writes under `--update-fingerprints`.
pub fn snapshot_version_guard(
    root: &Path,
    cfg: &Toml,
    files: &BTreeMap<String, String>,
    opts: &Options,
    out: &mut Vec<Finding>,
) -> io::Result<()> {
    for (rel, value) in cfg.section(SECTION_SNAPSHOT) {
        let version_names: Vec<String> =
            value.as_array().map(<[String]>::to_vec).unwrap_or_default();
        let Some(src) = files.get(&rel) else {
            continue; // unreadable: already reported by the driver
        };
        let regions = fingerprint_regions(src);
        if regions.is_empty() {
            out.push(Finding {
                file: rel.clone(),
                line: 0,
                lint: SNAPSHOT_VERSION_GUARD,
                message: "no `lint:fingerprint-begin(…)`/`-end(…)` markers around the \
                          serialized-layout code"
                    .into(),
                severity: Severity::Error,
            });
            continue;
        }
        let mut hashed = String::new();
        for (name, content) in &regions {
            hashed.push_str(name);
            hashed.push('\0');
            hashed.push_str(content);
        }
        let hash = fnv64(hashed.as_bytes());

        // The version constants' declaration lines, verbatim.
        let mut versions: Vec<(String, String)> = Vec::new();
        for name in &version_names {
            let needle = format!("const {name}:");
            match src.lines().find(|l| l.contains(&needle)) {
                Some(line) => versions.push((name.clone(), line.trim().to_string())),
                None => out.push(Finding {
                    file: rel.clone(),
                    line: 0,
                    lint: SNAPSHOT_VERSION_GUARD,
                    message: format!("version constant `{name}` not found in this file"),
                    severity: Severity::Error,
                }),
            }
        }

        let expected = fingerprint_content(&rel, hash, &versions);
        let fp_path = root.join(format!("{rel}.fingerprint"));
        if opts.update_fingerprints {
            std::fs::write(&fp_path, expected)?;
            continue;
        }
        let stored = match std::fs::read_to_string(&fp_path) {
            Ok(s) => s,
            Err(_) => {
                out.push(Finding {
                    file: rel.clone(),
                    line: 0,
                    lint: SNAPSHOT_VERSION_GUARD,
                    message: format!(
                        "missing fingerprint file {rel}.fingerprint — \
                         run `cargo run -p lint -- check --update-fingerprints` and commit it"
                    ),
                    severity: Severity::Error,
                });
                continue;
            }
        };
        if stored == expected {
            continue;
        }
        // Distinguish "layout changed, version forgotten" from
        // "deliberate change awaiting a re-bless".
        let stored_versions: Vec<&str> = stored
            .lines()
            .filter(|l| l.starts_with("version "))
            .collect();
        let current_versions: Vec<String> = versions
            .iter()
            .map(|(name, decl)| format!("version {name} = {decl:?}"))
            .collect();
        let version_changed = stored_versions.len() != current_versions.len()
            || stored_versions
                .iter()
                .zip(&current_versions)
                .any(|(a, b)| *a != b);
        let message = if version_changed {
            format!(
                "serialized layout and version constants changed — if deliberate, re-bless with \
                 `cargo run -p lint -- check --update-fingerprints` and commit {rel}.fingerprint"
            )
        } else {
            let names = version_names.join("`, `");
            format!(
                "serialized layout changed but `{names}` did not — readers of old snapshots will \
                 misparse; bump the version, keep a migration path, then re-bless the fingerprint"
            )
        };
        out.push(Finding {
            file: rel.clone(),
            line: 0,
            lint: SNAPSHOT_VERSION_GUARD,
            message,
            severity: Severity::Error,
        });
    }
    Ok(())
}
