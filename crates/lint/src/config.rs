//! `lint.toml` parsing: a hand-rolled subset of TOML (this tool is
//! dependency-free by design).
//!
//! Supported syntax — everything the config actually needs:
//!
//! - `[section]` headers (dotted names treated as opaque strings);
//! - `key = "string"`, `key = 123`, `key = true`;
//! - `key = ["a", "b"]`, including multi-line arrays;
//! - quoted keys (`"crates/stream/src/engine.rs" = 3`);
//! - `#` comments and blank lines.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A quoted string.
    Str(String),
    /// An integer.
    Int(i64),
    /// `true` / `false`.
    Bool(bool),
    /// An array of strings.
    StrArray(Vec<String>),
}

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The array payload, if this is an array of strings.
    pub fn as_array(&self) -> Option<&[String]> {
        match self {
            Value::StrArray(a) => Some(a),
            _ => None,
        }
    }
}

/// One `[section]`: ordered key → value pairs.
pub type Section = BTreeMap<String, Value>;

/// The whole parsed file: section name → entries. Keys outside any
/// section land in the `""` section.
#[derive(Debug, Default)]
pub struct Toml {
    /// Sections in declaration order.
    pub sections: BTreeMap<String, Section>,
}

/// A parse failure with its line number.
#[derive(Debug)]
pub struct ParseError {
    /// 1-indexed line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl Toml {
    /// Parse `text`.
    pub fn parse(text: &str) -> Result<Toml, ParseError> {
        let mut toml = Toml::default();
        let mut current = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let lineno = idx + 1;
            let line = strip_comment(raw).trim();
            if line.is_empty() {
                continue;
            }
            if let Some(name) = line.strip_prefix('[') {
                let name = name.strip_suffix(']').ok_or_else(|| ParseError {
                    line: lineno,
                    message: format!("unterminated section header: {raw:?}"),
                })?;
                current = name.trim().trim_matches('"').to_string();
                toml.sections.entry(current.clone()).or_default();
                continue;
            }
            let (key, rest) = split_key(line).ok_or_else(|| ParseError {
                line: lineno,
                message: format!("expected `key = value`: {raw:?}"),
            })?;
            // Multi-line arrays: keep consuming lines until brackets
            // balance outside of strings.
            let mut value_text = rest.to_string();
            while !balanced(&value_text) {
                match lines.next() {
                    Some((_, more)) => {
                        value_text.push('\n');
                        value_text.push_str(strip_comment(more));
                    }
                    None => {
                        return Err(ParseError {
                            line: lineno,
                            message: "unterminated array".into(),
                        })
                    }
                }
            }
            let value = parse_value(value_text.trim()).map_err(|message| ParseError {
                line: lineno,
                message,
            })?;
            toml.sections
                .entry(current.clone())
                .or_default()
                .insert(key, value);
        }
        Ok(toml)
    }

    /// A section by name (empty if absent).
    pub fn section(&self, name: &str) -> Section {
        self.sections.get(name).cloned().unwrap_or_default()
    }

    /// A string-array key inside a section (empty if absent).
    pub fn strings(&self, section: &str, key: &str) -> Vec<String> {
        self.sections
            .get(section)
            .and_then(|s| s.get(key))
            .and_then(|v| v.as_array().map(<[String]>::to_vec))
            .unwrap_or_default()
    }
}

/// Strip a `#` comment not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        escaped = false;
    }
    line
}

/// Split `key = value`, handling quoted keys.
fn split_key(line: &str) -> Option<(String, &str)> {
    let line = line.trim_start();
    if let Some(rest) = line.strip_prefix('"') {
        let close = rest.find('"')?;
        let key = rest[..close].to_string();
        let after = rest[close + 1..].trim_start();
        let value = after.strip_prefix('=')?;
        Some((key, value.trim_start()))
    } else {
        let eq = line.find('=')?;
        let key = line[..eq].trim().to_string();
        if key.is_empty() || key.contains(char::is_whitespace) {
            return None;
        }
        Some((key, line[eq + 1..].trim_start()))
    }
}

/// Are `[` / `]` balanced outside strings?
fn balanced(text: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    let mut escaped = false;
    for c in text.chars() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth -= 1,
            _ => {}
        }
        escaped = false;
    }
    depth <= 0
}

/// Parse one value: string, int, bool, or string array.
fn parse_value(text: &str) -> Result<Value, String> {
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| format!("unterminated array: {text:?}"))?;
        let mut items = Vec::new();
        for piece in split_array_items(inner) {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            match parse_value(piece)? {
                Value::Str(s) => items.push(s),
                other => return Err(format!("only string arrays are supported, got {other:?}")),
            }
        }
        return Ok(Value::StrArray(items));
    }
    if let Some(rest) = text.strip_prefix('"') {
        let mut out = String::new();
        let mut chars = rest.chars();
        loop {
            match chars.next() {
                Some('\\') => match chars.next() {
                    Some('n') => out.push('\n'),
                    Some('t') => out.push('\t'),
                    Some(c) => out.push(c),
                    None => return Err("dangling escape".into()),
                },
                Some('"') => return Ok(Value::Str(out)),
                Some(c) => out.push(c),
                None => return Err(format!("unterminated string: {text:?}")),
            }
        }
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    text.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("unrecognized value: {text:?}"))
}

/// Split array items on commas outside strings.
fn split_array_items(inner: &str) -> Vec<&str> {
    let mut items = Vec::new();
    let mut start = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in inner.char_indices() {
        match c {
            '\\' if in_str && !escaped => {
                escaped = true;
                continue;
            }
            '"' if !escaped => in_str = !in_str,
            ',' if !in_str => {
                items.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        escaped = false;
    }
    items.push(&inner[start..]);
    items
}

/// Match `name` against a glob with at most one `*` (prefix, suffix,
/// infix, or bare `*`).
pub fn glob_match(pattern: &str, name: &str) -> bool {
    match pattern.split_once('*') {
        None => pattern == name,
        Some((pre, post)) => {
            name.len() >= pre.len() + post.len() && name.starts_with(pre) && name.ends_with(post)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_keys_and_arrays() {
        let text = r#"
# top comment
[alpha]
name = "x" # trailing
count = 42
flag = true
items = ["a", "b"]

[beta]
"quoted/key.rs" = 3
multi = [
    "one",
    "two",  # comment inside
]
"#;
        let t = Toml::parse(text).unwrap();
        assert_eq!(t.section("alpha")["name"], Value::Str("x".into()));
        assert_eq!(t.section("alpha")["count"], Value::Int(42));
        assert_eq!(t.section("alpha")["flag"], Value::Bool(true));
        assert_eq!(t.strings("alpha", "items"), vec!["a", "b"]);
        assert_eq!(t.section("beta")["quoted/key.rs"], Value::Int(3));
        assert_eq!(t.strings("beta", "multi"), vec!["one", "two"]);
    }

    #[test]
    fn hash_inside_string_is_not_comment() {
        let t = Toml::parse("[s]\nk = \"a#b\"").unwrap();
        assert_eq!(t.section("s")["k"], Value::Str("a#b".into()));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = Toml::parse("[s]\nbad line here").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn globs() {
        assert!(glob_match("*_with", "push_with"));
        assert!(glob_match("solve*", "solve_core"));
        assert!(glob_match("*", "anything"));
        assert!(glob_match("exact", "exact"));
        assert!(!glob_match("*_with", "with_scratch"));
    }
}
