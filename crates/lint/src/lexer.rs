//! A minimal Rust lexer that classifies every byte of a source file.
//!
//! The lints only need one question answered reliably: *is this byte
//! code, or is it inert* (a comment, a string, a char literal)? Banned
//! tokens inside strings, raw strings, comments, and doc comments must
//! never fire. The lexer therefore does not tokenize expressions; it
//! partitions the file into contiguous [`Span`]s and guarantees:
//!
//! - spans cover the file exactly (contiguous, in order, no gaps);
//! - it never panics, even on malformed or truncated input —
//!   unterminated constructs simply extend to end of file;
//! - nested block comments, raw strings with any number of `#`s, byte
//!   and C strings, char literals, and lifetimes are classified the way
//!   rustc classifies them.

/// What a span of bytes is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Executable source, including whitespace and punctuation.
    Code,
    /// `// …` (not a doc comment).
    LineComment,
    /// `/* … */`, nesting respected (not a doc comment).
    BlockComment,
    /// `/// …`, `//! …`, `/** … */`, or `/*! … */`.
    DocComment,
    /// `"…"`, `b"…"`, or `c"…"` with escapes.
    Str,
    /// `r"…"`, `r#"…"#`, `br#"…"#`, … with any hash depth.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'` — but not lifetimes, which stay [`Class::Code`].
    CharLit,
}

impl Class {
    /// Whether banned-token scanning applies to this span.
    pub fn is_code(self) -> bool {
        self == Class::Code
    }

    /// Whether this span is any kind of comment.
    pub fn is_comment(self) -> bool {
        matches!(
            self,
            Class::LineComment | Class::BlockComment | Class::DocComment
        )
    }
}

/// One classified byte range (`start..end` into the source).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// First byte, inclusive.
    pub start: usize,
    /// Past-the-end byte.
    pub end: usize,
    /// Classification of every byte in the range.
    pub class: Class,
}

/// Is `b` part of an identifier (ASCII view — multibyte identifier
/// chars are all non-delimiters, so they never change classification)?
fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Partition `src` into classified spans covering every byte.
pub fn lex(src: &str) -> Vec<Span> {
    let b = src.as_bytes();
    let len = b.len();
    let mut spans: Vec<Span> = Vec::new();
    let mut code_start = 0usize;
    let mut i = 0usize;
    // Whether the previous *code* byte could end an identifier: an `r`
    // right after one (`bar"…`) is part of that identifier, not a raw
    // string prefix.
    let mut prev_ident = false;

    macro_rules! flush_code {
        ($upto:expr) => {
            if code_start < $upto {
                spans.push(Span {
                    start: code_start,
                    end: $upto,
                    class: Class::Code,
                });
            }
        };
    }

    while i < len {
        let c = b[i];
        match c {
            b'/' if i + 1 < len && b[i + 1] == b'/' => {
                flush_code!(i);
                // `///` is doc unless `////…`; `//!` is inner doc.
                let doc = (b.get(i + 2) == Some(&b'/') && b.get(i + 3) != Some(&b'/'))
                    || b.get(i + 2) == Some(&b'!');
                let mut j = i + 2;
                while j < len && b[j] != b'\n' {
                    j += 1;
                }
                // Leave the newline to the following code span.
                spans.push(Span {
                    start: i,
                    end: j,
                    class: if doc {
                        Class::DocComment
                    } else {
                        Class::LineComment
                    },
                });
                code_start = j;
                i = j;
                prev_ident = false;
            }
            b'/' if i + 1 < len && b[i + 1] == b'*' => {
                flush_code!(i);
                // `/**` is doc unless `/**/` (empty) or `/***`; `/*!` is doc.
                let doc = (b.get(i + 2) == Some(&b'*')
                    && b.get(i + 3) != Some(&b'*')
                    && b.get(i + 3) != Some(&b'/'))
                    || b.get(i + 2) == Some(&b'!');
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < len && depth > 0 {
                    if j + 1 < len && b[j] == b'/' && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if j + 1 < len && b[j] == b'*' && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                if depth > 0 {
                    j = len; // unterminated: comment to EOF
                }
                spans.push(Span {
                    start: i,
                    end: j,
                    class: if doc {
                        Class::DocComment
                    } else {
                        Class::BlockComment
                    },
                });
                code_start = j;
                i = j;
                prev_ident = false;
            }
            b'"' => {
                flush_code!(i);
                let j = scan_string(b, i + 1);
                spans.push(Span {
                    start: i,
                    end: j,
                    class: Class::Str,
                });
                code_start = j;
                i = j;
                prev_ident = false;
            }
            b'r' | b'b' | b'c' if !prev_ident => {
                // Candidate prefixed literal: r"…", r#"…"#, b"…", br#"…"#,
                // c"…", b'x'. Anything else falls through as code.
                if let Some(lit) = prefixed_literal(b, i) {
                    flush_code!(i);
                    let (j, class) = match lit {
                        Prefixed::Char(q) => (scan_char_body(b, q + 1), Class::CharLit),
                        Prefixed::Raw(q, hashes) => {
                            (scan_raw_string(b, q + 1, hashes), Class::RawStr)
                        }
                        Prefixed::Plain(q) => (scan_string(b, q + 1), Class::Str),
                    };
                    spans.push(Span {
                        start: i,
                        end: j,
                        class,
                    });
                    code_start = j;
                    i = j;
                    prev_ident = false;
                } else {
                    prev_ident = true;
                    i += 1;
                }
            }
            b'\'' => {
                // Char literal or lifetime. `'\…'` and `'<char>'` are
                // char literals; `'ident` (no closing quote) is a
                // lifetime and stays code.
                if let Some(j) = char_literal_end(src, b, i) {
                    flush_code!(i);
                    spans.push(Span {
                        start: i,
                        end: j,
                        class: Class::CharLit,
                    });
                    code_start = j;
                    i = j;
                    prev_ident = false;
                } else {
                    i += 1;
                    prev_ident = false;
                }
            }
            _ => {
                prev_ident = is_ident_byte(c);
                i += 1;
            }
        }
    }
    flush_code!(len);
    spans
}

/// A recognized prefixed literal; the payload is the index of the
/// opening quote (and hash depth for raw strings).
enum Prefixed {
    /// `b'x'`.
    Char(usize),
    /// `r"…"`, `r#"…"#`, `br#"…"#`.
    Raw(usize, usize),
    /// `b"…"`, `c"…"`.
    Plain(usize),
}

/// If `b[i..]` starts a prefixed literal, classify it.
fn prefixed_literal(b: &[u8], i: usize) -> Option<Prefixed> {
    let len = b.len();
    let mut j = i;
    match b[i] {
        b'r' => {
            j += 1;
            // `r#ident` is a raw identifier, `r#"` a raw string.
            let mut hashes = 0usize;
            while j < len && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            if j < len && b[j] == b'"' {
                Some(Prefixed::Raw(j, hashes))
            } else {
                None
            }
        }
        b'b' => {
            j += 1;
            if j < len && b[j] == b'\'' {
                return Some(Prefixed::Char(j)); // b'x'
            }
            if j < len && b[j] == b'"' {
                return Some(Prefixed::Plain(j)); // b"…"
            }
            if j < len && b[j] == b'r' {
                j += 1;
                let mut hashes = 0usize;
                while j < len && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                if j < len && b[j] == b'"' {
                    return Some(Prefixed::Raw(j, hashes)); // br#"…"#
                }
            }
            None
        }
        b'c' => {
            j += 1;
            if j < len && b[j] == b'"' {
                Some(Prefixed::Plain(j)) // c"…"
            } else {
                None
            }
        }
        _ => None,
    }
}

/// Scan a non-raw string body starting after the opening quote; returns
/// the index past the closing quote (or EOF if unterminated).
fn scan_string(b: &[u8], mut j: usize) -> usize {
    let len = b.len();
    while j < len {
        match b[j] {
            b'\\' => j = (j + 2).min(len),
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    len
}

/// Scan a raw string body (after the opening quote) closed by `"`
/// followed by `hashes` `#`s; returns the index past the full closer.
fn scan_raw_string(b: &[u8], mut j: usize, hashes: usize) -> usize {
    let len = b.len();
    while j < len {
        if b[j] == b'"' {
            let mut k = 0usize;
            while k < hashes && b.get(j + 1 + k) == Some(&b'#') {
                k += 1;
            }
            if k == hashes {
                return j + 1 + hashes;
            }
        }
        j += 1;
    }
    len
}

/// Scan a char-literal body starting after the opening quote; returns
/// the index past the closing quote (or EOF).
fn scan_char_body(b: &[u8], mut j: usize) -> usize {
    let len = b.len();
    while j < len {
        match b[j] {
            b'\\' => j = (j + 2).min(len),
            b'\'' => return j + 1,
            _ => j += 1,
        }
    }
    len
}

/// If the `'` at `i` opens a char literal, return the index past its
/// closing quote; `None` means it is a lifetime (or stray quote) and
/// stays code.
fn char_literal_end(src: &str, b: &[u8], i: usize) -> Option<usize> {
    let next = *b.get(i + 1)?;
    if next == b'\\' {
        return Some(scan_char_body(b, i + 1));
    }
    // Decode exactly one char after the quote.
    let c = src[i + 1..].chars().next()?;
    let after = i + 1 + c.len_utf8();
    if b.get(after) == Some(&b'\'') {
        // `'x'` — but `''` has no char, handled by chars() returning `'`
        // which would make after point past the closer; guard:
        if c == '\'' {
            return Some(after); // `''` — degenerate, consume both quotes
        }
        return Some(after + 1);
    }
    // `'ident…` with no closing quote: lifetime or loop label.
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classes(src: &str) -> Vec<(Class, &str)> {
        lex(src)
            .into_iter()
            .filter(|s| s.start < s.end)
            .map(|s| (s.class, &src[s.start..s.end]))
            .collect()
    }

    #[test]
    fn covers_every_byte_in_order() {
        let src = "fn main() { let s = \"vec![]\"; } // unwrap()\n/* panic! */";
        let spans = lex(src);
        let mut pos = 0;
        for s in &spans {
            assert_eq!(s.start, pos);
            assert!(s.end >= s.start);
            pos = s.end;
        }
        assert_eq!(pos, src.len());
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let src = r#"let a = "unwrap()"; // expect(
let b = 'p'; /* todo! */ let c = r"panic!";"#;
        for (class, text) in classes(src) {
            if class.is_code() {
                for banned in ["unwrap", "expect", "todo", "panic"] {
                    assert!(
                        !text.contains(banned),
                        "{banned:?} leaked into code: {text:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r###"let s = r#"with "quotes" and vec![]"#; s.len()"###;
        let got = classes(src);
        assert!(got
            .iter()
            .any(|(c, t)| *c == Class::RawStr && t.contains("vec![]")));
        assert!(got.iter().any(|(c, t)| c.is_code() && t.contains("len")));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still comment */ b";
        let got = classes(src);
        assert_eq!(got.len(), 3);
        assert!(got[1].0.is_comment());
        assert!(got[1].1.contains("still comment"));
        assert!(got[2].1.contains('b'));
    }

    #[test]
    fn doc_comments_are_distinguished() {
        let src = "/// docs with unwrap()\n//! inner\n//// not doc\n// plain\ncode";
        let got = classes(src);
        let docs: Vec<_> = got
            .iter()
            .filter(|(c, _)| *c == Class::DocComment)
            .collect();
        assert_eq!(docs.len(), 2, "{got:?}");
        let line: Vec<_> = got
            .iter()
            .filter(|(c, _)| *c == Class::LineComment)
            .collect();
        assert_eq!(line.len(), 2, "{got:?}");
    }

    #[test]
    fn lifetimes_stay_code_char_literals_do_not() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }";
        let got = classes(src);
        let code: String = got
            .iter()
            .filter(|(c, _)| c.is_code())
            .map(|(_, t)| *t)
            .collect();
        assert!(code.contains("'a>"), "{code}");
        assert!(!code.contains("'x'"), "{code}");
        let chars: Vec<_> = got.iter().filter(|(c, _)| *c == Class::CharLit).collect();
        assert_eq!(chars.len(), 2, "{got:?}");
    }

    #[test]
    fn byte_and_c_strings() {
        let src = "let m = b\"BCPDSNAP\"; let c = c\"x\"; let r = br#\"y\"#; let ch = b'z';";
        let got = classes(src);
        assert_eq!(
            got.iter().filter(|(c, _)| *c == Class::Str).count(),
            2,
            "{got:?}"
        );
        assert_eq!(
            got.iter().filter(|(c, _)| *c == Class::RawStr).count(),
            1,
            "{got:?}"
        );
        assert_eq!(
            got.iter().filter(|(c, _)| *c == Class::CharLit).count(),
            1,
            "{got:?}"
        );
    }

    #[test]
    fn raw_identifiers_are_code() {
        let src = "let r#type = 1; r#match(r#type)";
        for (class, _) in classes(src) {
            assert!(class.is_code());
        }
    }

    #[test]
    fn ident_trailing_r_is_not_raw_prefix() {
        let src = "bar\"still a plain string\"";
        let got = classes(src);
        assert!(got.iter().any(|(c, _)| *c == Class::Str));
        assert!(!got.iter().any(|(c, _)| *c == Class::RawStr));
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'\\", "b\"x", "let a = 'x"] {
            let spans = lex(src);
            assert_eq!(spans.last().map(|s| s.end), Some(src.len()));
        }
    }
}
