//! Seeded NO_PANIC_SURFACE violations: exactly 5 findings, plus one
//! suppressed site and several non-findings.

/// 5 panic tokens in library code.
pub fn fragile(input: Option<u32>) -> u32 {
    let a = input.unwrap(); // finding 1
    let b = Some(a).expect("present"); // finding 2
    if b > 100 {
        panic!("too big"); // finding 3
    }
    match b {
        0 => unreachable!("zero was filtered"), // finding 4
        1 => todo!("ones are not supported"), // finding 5
        _ => b,
    }
}

/// A reviewed site: suppressed with a reason, so it is not a finding
/// (but counts as `suppressed`).
pub fn reviewed(input: Option<u32>) -> u32 {
    // lint:allow(NO_PANIC_SURFACE, fixture exercising suppression coverage)
    input.unwrap()
}

/// Panic tokens in non-code positions never fire.
pub fn red_herrings() -> &'static str {
    // a comment saying unwrap() and panic! is fine
    "unwrap() expect( panic! unreachable! todo!"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_panics_are_exempt() {
        super::fragile(Some(2_u32.checked_add(3).unwrap()));
    }
}
