//! Fixture telemetry registry for TELEMETRY_DOC_DRIFT: registers
//! `fix_metric_a_total` (documented) and `fix_metric_b_total`
//! (undocumented — finding 1); the doc also lists `fix_metric_c_total`
//! which is not here (finding 2).

/// Documented metric.
pub const METRIC_A: &str = "fix_metric_a_total";
/// Undocumented metric: drift finding at this line.
pub const METRIC_B: &str = "fix_metric_b_total";

/// A string that merely mentions a name with extra content is not a
/// registration.
pub const NOT_A_NAME: &str = "fix_metric_a_total{stream=\"x\"} 3";

#[cfg(test)]
mod tests {
    #[test]
    fn registry_is_nonempty() {
        assert_eq!(super::METRIC_A.len(), 18);
    }
}
