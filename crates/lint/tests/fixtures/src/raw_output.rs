//! Seeded NO_RAW_OUTPUT violations: exactly 3 findings.

/// 3 output macros in library code.
pub fn chatty(x: u64) {
    println!("x = {x}"); // finding 1
    eprintln!("x = {x}"); // finding 2
    let _ = dbg!(x); // finding 3
}

/// `write!` to an explicit destination is fine — that is what sinks do.
pub fn disciplined(out: &mut String, x: u64) {
    use std::fmt::Write;
    let _ = write!(out, "x = {x}");
}

/// Output macros in non-code positions never fire.
pub fn red_herrings() -> &'static str {
    // println! in a comment is fine
    "println! eprintln! dbg!"
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_prints_are_exempt() {
        println!("tests may print");
        super::chatty(1);
    }
}
