//! Fixture for SNAPSHOT_VERSION_GUARD: the checked-in `.fingerprint`
//! was taken from an older layout, and `VERSION` was not bumped — so
//! the guard reports exactly 1 finding ("layout changed but VERSION
//! did not").

/// Serialization format version.
pub const VERSION: u32 = 1;

// lint:fingerprint-begin(layout)
/// Encode a record: tag byte then payload.
pub fn encode(payload: u8) -> [u8; 2] {
    [0xAB, payload]
}
// lint:fingerprint-end(layout)
