//! Seeded MUST_USE_GUARD violation: exactly 1 finding.

/// Carries the attribute: no finding.
#[must_use = "a builder does nothing until built"]
pub struct GoodBuilder {
    pub steps: usize,
}

/// Missing the attribute: finding 1.
#[derive(Debug, Clone)]
pub struct BadReport {
    pub done: bool,
}

/// Name matches no configured glob: no finding even without the
/// attribute.
pub struct Unrelated {
    pub x: u8,
}
