//! Seeded NO_ALLOC_HOT_PATH violations: exactly 3 findings, all inside
//! the hot `score_with` function.

/// Hot path (matches the `*_with` glob): 3 banned tokens.
pub fn score_with(scratch: &mut Vec<f64>) -> usize {
    let extra = Vec::new(); // finding 1
    let owned = vec![1.0, 2.0]; // finding 2
    let label = format!("{}", owned.len()); // finding 3
    scratch.extend(extra);
    label.len()
}

/// Cold path: allocations here are fine.
pub fn setup() -> Vec<f64> {
    let mut v = Vec::new();
    v.push(1.0);
    v
}

/// Banned tokens in non-code positions never fire.
pub fn red_herrings_with() -> &'static str {
    // Vec::new() in a comment is not a finding.
    "vec![Vec::new, format!]" // and not in a string either
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_allocs_are_exempt() {
        let _ = vec![super::score_with(&mut Vec::new())];
    }
}
