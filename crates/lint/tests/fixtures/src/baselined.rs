//! Two legacy panic sites absorbed by the fixture `[baseline]` pin of
//! exactly 2.

/// Legacy site 1 (baselined).
pub fn legacy_a(x: Option<u8>) -> u8 {
    x.unwrap()
}

/// Legacy site 2 (baselined).
pub fn legacy_b(x: Option<u8>) -> u8 {
    x.expect("legacy")
}
