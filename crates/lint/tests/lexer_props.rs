//! Property tests of the lexer: banned tokens hidden inside strings,
//! raw strings, and comments never surface as code; and lexing
//! arbitrary input (including every `.rs` file in this repository)
//! never panics and classifies every byte exactly once.

use lint::lexer::lex;
use lint::scan::scan;
use proptest::prelude::*;
use std::path::{Path, PathBuf};

/// Words whose appearance as a *code* token would trip a lint.
const BANNED_WORDS: &[&str] = &[
    "unwrap",
    "expect",
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "println",
    "eprintln",
    "print",
    "eprint",
    "dbg",
    "vec",
    "format",
    "with_capacity",
    "to_vec",
    "collect",
];

/// Every span boundary is tight: starts at 0, ends at len, no gaps, no
/// overlaps, and each span is non-empty.
fn assert_full_coverage(src: &str) {
    let spans = lex(src);
    let mut pos = 0usize;
    for span in &spans {
        assert_eq!(span.start, pos, "gap or overlap at byte {pos} in {src:?}");
        assert!(span.end > span.start, "empty span at {pos} in {src:?}");
        pos = span.end;
    }
    assert_eq!(pos, src.len(), "trailing bytes unclassified in {src:?}");
}

/// Wrap a banned token in the container selected by `kind`.
fn embed(kind: u8, token: &str, out: &mut String) {
    match kind % 6 {
        0 => out.push_str(&format!("let a = \"{token}()\";\n")),
        1 => out.push_str(&format!("let b = r#\"{token}!\"#;\n")),
        2 => out.push_str(&format!("// a comment about {token}() calls\n")),
        3 => out.push_str(&format!("/* block: {token}!(...) */ let c = 1;\n")),
        4 => out.push_str(&format!(
            "/// docs mention {token}() freely\nfn ok() {{}}\n"
        )),
        _ => out.push_str(&format!("let d = b\"{token}\";\n")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// However banned tokens are buried in strings/comments, no code
    /// token ever carries a banned word — zero false positives by
    /// construction.
    #[test]
    fn banned_tokens_in_non_code_never_surface(
        picks in prop::collection::vec((0u8..6, 0usize..BANNED_WORDS.len()), 1..20),
    ) {
        let mut src = String::new();
        for (kind, idx) in &picks {
            embed(*kind, BANNED_WORDS[*idx], &mut src);
        }
        assert_full_coverage(&src);
        let scanned = scan(&src);
        for tok in &scanned.toks {
            assert!(
                !(tok.word && BANNED_WORDS.contains(&tok.text)),
                "banned word {:?} leaked into code at line {} of:\n{src}",
                tok.text,
                tok.line,
            );
        }
    }

    /// Lexing arbitrary bytes (valid UTF-8, all classes of quote and
    /// comment openers included) never panics and always classifies
    /// every byte.
    #[test]
    fn arbitrary_input_is_totally_classified(
        bytes in prop::collection::vec(0u8..128, 0..300),
    ) {
        let src: String = bytes
            .iter()
            .map(|&b| if b.is_ascii() { b as char } else { ' ' })
            .collect();
        assert_full_coverage(&src);
        let _ = scan(&src); // the item scanner must not panic either
    }

    /// Unterminated constructs truncated at arbitrary points still
    /// classify fully (no panics on mid-token EOF).
    #[test]
    fn truncation_never_panics(cut in 0usize..120) {
        let whole = "fn f() { let s = r##\"raw\"##; /* nested /* deep */ */ let c = 'x'; } // tail";
        let src = &whole[..cut.min(whole.len())];
        if whole.is_char_boundary(cut.min(whole.len())) {
            assert_full_coverage(src);
            let _ = scan(src);
        }
    }
}

/// Recursively collect every `.rs` file in the repository.
fn collect_repo_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name == ".git" {
                continue;
            }
            collect_repo_sources(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Round-trip over the real codebase: every `.rs` file in this
/// repository (vendor crates and fixtures included) lexes without
/// panicking, with every byte classified exactly once.
#[test]
fn entire_workspace_lexes_with_full_coverage() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut files = Vec::new();
    collect_repo_sources(&root, &mut files);
    assert!(
        files.len() > 50,
        "expected a real workspace, found {} files",
        files.len()
    );
    for path in files {
        let src = std::fs::read_to_string(&path).unwrap();
        let spans = lex(&src);
        let mut pos = 0usize;
        for span in &spans {
            assert_eq!(span.start, pos, "gap at {pos} in {}", path.display());
            pos = span.end;
        }
        assert_eq!(pos, src.len(), "unclassified tail in {}", path.display());
        let scanned = scan(&src); // item scanner is total, too
        for tok in scanned.toks {
            assert!(tok.offset < src.len().max(1));
        }
    }
}
