//! End-to-end lint runs over the seeded-violation fixtures: every lint
//! demonstrably fires, with exact counts, and the clean path is clean.

use lint::config::Toml;
use lint::{lints, run_check, CheckReport, Options, Severity};
use std::path::{Path, PathBuf};

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_report() -> CheckReport {
    let root = fixture_root();
    let text = std::fs::read_to_string(root.join("lint.toml")).unwrap();
    let cfg = Toml::parse(&text).unwrap();
    run_check(&root, &cfg, &Options::default()).unwrap()
}

fn count(report: &CheckReport, lint: &str) -> usize {
    report.findings.iter().filter(|f| f.lint == lint).count()
}

#[test]
fn every_lint_fires_with_exact_counts() {
    let report = fixture_report();
    assert_eq!(count(&report, lints::NO_ALLOC_HOT_PATH), 3);
    assert_eq!(count(&report, lints::NO_PANIC_SURFACE), 5);
    assert_eq!(count(&report, lints::NO_RAW_OUTPUT), 3);
    assert_eq!(count(&report, lints::MUST_USE_GUARD), 1);
    assert_eq!(count(&report, lints::TELEMETRY_DOC_DRIFT), 2);
    assert_eq!(count(&report, lints::SNAPSHOT_VERSION_GUARD), 1);
    assert_eq!(report.findings.len(), 15, "{:#?}", report.findings);
    assert_eq!(
        report.suppressed, 1,
        "one reasoned lint:allow in panic_surface.rs"
    );
    assert_eq!(report.baselined, 2, "two pinned sites in baselined.rs");
    assert!(report.failed(&Options::default()));
}

#[test]
fn findings_are_machine_readable_and_sorted() {
    let report = fixture_report();
    for f in &report.findings {
        let rendered = f.to_string();
        // file:line: [LINT_ID] message
        let (location, rest) = rendered.split_once(": [").unwrap();
        let (file, line) = location.rsplit_once(':').unwrap();
        assert!(!file.is_empty());
        line.parse::<u32>().unwrap();
        let (id, message) = rest.split_once("] ").unwrap();
        assert!(id.chars().all(|c| c.is_ascii_uppercase() || c == '_'));
        assert!(!message.is_empty());
    }
    let keys: Vec<_> = report
        .findings
        .iter()
        .map(|f| (f.file.clone(), f.line))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}

#[test]
fn drift_findings_point_at_both_sides() {
    let report = fixture_report();
    let drift: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.lint == lints::TELEMETRY_DOC_DRIFT)
        .collect();
    assert!(drift
        .iter()
        .any(|f| f.file == "src/drift_registry.rs" && f.message.contains("fix_metric_b_total")));
    assert!(drift
        .iter()
        .any(|f| f.file == "doc.md" && f.message.contains("fix_metric_c_total")));
}

#[test]
fn fingerprint_mismatch_names_the_version_constant() {
    let report = fixture_report();
    let fp = report
        .findings
        .iter()
        .find(|f| f.lint == lints::SNAPSHOT_VERSION_GUARD)
        .unwrap();
    assert_eq!(fp.file, "src/fp_layout.rs");
    assert_eq!(fp.severity, Severity::Error);
    assert!(fp.message.contains("`VERSION` did not"), "{}", fp.message);
}

#[test]
fn blessed_fingerprint_then_clean_layout_passes() {
    // A scratch copy of the fingerprint fixture: bless, check, mutate
    // the layout, check again.
    let dir = std::env::temp_dir().join(format!("lint-fp-{}", std::process::id()));
    let src_dir = dir.join("src");
    std::fs::create_dir_all(&src_dir).unwrap();
    let layout = std::fs::read_to_string(fixture_root().join("src/fp_layout.rs")).unwrap();
    std::fs::write(src_dir.join("fp_layout.rs"), &layout).unwrap();
    std::fs::write(
        dir.join("lint.toml"),
        "[snapshot_guard]\n\"src/fp_layout.rs\" = [\"VERSION\"]\n",
    )
    .unwrap();
    let cfg = Toml::parse(&std::fs::read_to_string(dir.join("lint.toml")).unwrap()).unwrap();

    // Missing fingerprint file: one error prompting --update-fingerprints.
    let report = run_check(&dir, &cfg, &Options::default()).unwrap();
    assert_eq!(report.findings.len(), 1);
    assert!(report.findings[0].message.contains("--update-fingerprints"));

    // Bless, then the same layout passes.
    let bless = Options {
        update_fingerprints: true,
        ..Options::default()
    };
    run_check(&dir, &cfg, &bless).unwrap();
    let report = run_check(&dir, &cfg, &Options::default()).unwrap();
    assert!(report.findings.is_empty(), "{:#?}", report.findings);

    // Change the layout without a version bump: the guard fires again.
    std::fs::write(
        src_dir.join("fp_layout.rs"),
        layout.replace("[0xAB, payload]", "[0xCD, payload]"),
    )
    .unwrap();
    let report = run_check(&dir, &cfg, &Options::default()).unwrap();
    assert_eq!(report.findings.len(), 1);
    assert!(report.findings[0].message.contains("`VERSION` did not"));

    // Bump the version too: the message flips to "re-bless".
    std::fs::write(
        src_dir.join("fp_layout.rs"),
        layout
            .replace("[0xAB, payload]", "[0xCD, payload]")
            .replace("VERSION: u32 = 1", "VERSION: u32 = 2"),
    )
    .unwrap();
    let report = run_check(&dir, &cfg, &Options::default()).unwrap();
    assert_eq!(report.findings.len(), 1);
    assert!(report.findings[0].message.contains("re-bless"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exceeding_a_baseline_pin_fires_everything_and_shrinking_warns() {
    let dir = std::env::temp_dir().join(format!("lint-base-{}", std::process::id()));
    let src_dir = dir.join("src");
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::write(
        src_dir.join("lib.rs"),
        "pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
         pub fn g(x: Option<u8>) -> u8 { x.expect(\"g\") }\n",
    )
    .unwrap();
    let base = "[panic_surface]\ninclude = [\"src\"]\n\n[baseline]\n";

    // Pin of 1 < actual 2: all findings fire, annotated.
    let cfg = Toml::parse(&format!("{base}\"NO_PANIC_SURFACE:src/lib.rs\" = 1\n")).unwrap();
    let report = run_check(&dir, &cfg, &Options::default()).unwrap();
    assert_eq!(report.errors(), 2);
    assert!(report.findings[0]
        .message
        .contains("exceed the pinned baseline of 1"));

    // Pin of 2 == actual 2: absorbed.
    let cfg = Toml::parse(&format!("{base}\"NO_PANIC_SURFACE:src/lib.rs\" = 2\n")).unwrap();
    let report = run_check(&dir, &cfg, &Options::default()).unwrap();
    assert_eq!(report.findings.len(), 0);
    assert_eq!(report.baselined, 2);

    // Pin of 3 > actual 2: stale-baseline warning (shrink-only).
    let cfg = Toml::parse(&format!("{base}\"NO_PANIC_SURFACE:src/lib.rs\" = 3\n")).unwrap();
    let report = run_check(&dir, &cfg, &Options::default()).unwrap();
    assert_eq!(report.errors(), 0);
    assert_eq!(report.warnings(), 1);
    assert!(report.findings[0].message.contains("stale baseline"));
    assert!(report.failed(&Options {
        deny_warnings: true,
        ..Options::default()
    }));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reasonless_and_unused_suppressions_warn() {
    let dir = std::env::temp_dir().join(format!("lint-sup-{}", std::process::id()));
    let src_dir = dir.join("src");
    std::fs::create_dir_all(&src_dir).unwrap();
    std::fs::write(
        src_dir.join("lib.rs"),
        "// lint:allow(NO_PANIC_SURFACE)\n\
         pub fn f(x: Option<u8>) -> u8 { x.unwrap() }\n\
         // lint:allow(NO_RAW_OUTPUT, nothing on the next line prints)\n\
         pub fn g() -> u8 { 7 }\n",
    )
    .unwrap();
    let cfg =
        Toml::parse("[panic_surface]\ninclude = [\"src\"]\n[raw_output]\ninclude = [\"src\"]\n")
            .unwrap();
    let report = run_check(&dir, &cfg, &Options::default()).unwrap();
    // The reasonless allow does not suppress: the unwrap still fires,
    // plus two SUPPRESSION warnings (no reason; unused).
    assert_eq!(count(&report, lints::NO_PANIC_SURFACE), 1);
    let sups: Vec<_> = report
        .findings
        .iter()
        .filter(|f| f.lint == lints::SUPPRESSION)
        .collect();
    assert_eq!(sups.len(), 2);
    assert!(sups.iter().any(|f| f.message.contains("needs a reason")));
    assert!(sups
        .iter()
        .any(|f| f.message.contains("unused suppression")));

    std::fs::remove_dir_all(&dir).ok();
}
