//! Kernels for the one-class SVM baseline.

/// Gaussian radial basis function kernel
/// `k(x, y) = exp(-||x - y||^2 / (2 sigma^2))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RbfKernel {
    /// Bandwidth σ.
    pub sigma: f64,
}

impl RbfKernel {
    /// Construct with bandwidth σ.
    ///
    /// # Panics
    /// Panics unless `sigma` is finite and > 0.
    pub fn new(sigma: f64) -> Self {
        assert!(
            sigma.is_finite() && sigma > 0.0,
            "RbfKernel: sigma must be finite and > 0"
        );
        RbfKernel { sigma }
    }

    /// Evaluate the kernel.
    #[inline]
    pub fn eval(&self, x: &[f64], y: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), y.len());
        let sq: f64 = x.iter().zip(y).map(|(a, b)| (a - b) * (a - b)).sum();
        (-sq / (2.0 * self.sigma * self.sigma)).exp()
    }

    /// Median-heuristic bandwidth: median pairwise distance of the data
    /// (a standard automatic choice). Falls back to 1.0 for degenerate
    /// data.
    pub fn median_heuristic(points: &[Vec<f64>]) -> Self {
        let mut dists = Vec::new();
        let n = points.len();
        for i in 0..n {
            for j in (i + 1)..n {
                let d: f64 = points[i]
                    .iter()
                    .zip(&points[j])
                    .map(|(a, b)| (a - b) * (a - b))
                    .sum::<f64>()
                    .sqrt();
                if d > 0.0 {
                    dists.push(d);
                }
            }
        }
        if dists.is_empty() {
            return RbfKernel::new(1.0);
        }
        dists.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
        RbfKernel::new(dists[dists.len() / 2])
    }

    /// Gram matrix of a point set (row-major `n x n`).
    pub fn gram(&self, points: &[Vec<f64>]) -> Vec<f64> {
        let n = points.len();
        let mut g = vec![0.0; n * n];
        for i in 0..n {
            g[i * n + i] = 1.0;
            for j in (i + 1)..n {
                let k = self.eval(&points[i], &points[j]);
                g[i * n + j] = k;
                g[j * n + i] = k;
            }
        }
        g
    }

    /// Cross-Gram matrix between two point sets (`a.len() x b.len()`).
    pub fn cross_gram(&self, a: &[Vec<f64>], b: &[Vec<f64>]) -> Vec<f64> {
        let mut g = Vec::with_capacity(a.len() * b.len());
        for x in a {
            for y in b {
                g.push(self.eval(x, y));
            }
        }
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_properties() {
        let k = RbfKernel::new(1.0);
        let x = [0.0, 0.0];
        let y = [1.0, 1.0];
        assert_eq!(k.eval(&x, &x), 1.0);
        assert!(k.eval(&x, &y) < 1.0);
        assert!(k.eval(&x, &y) > 0.0);
        assert_eq!(k.eval(&x, &y), k.eval(&y, &x));
    }

    #[test]
    fn bandwidth_controls_decay() {
        let narrow = RbfKernel::new(0.1);
        let wide = RbfKernel::new(10.0);
        let x = [0.0];
        let y = [1.0];
        assert!(narrow.eval(&x, &y) < wide.eval(&x, &y));
    }

    #[test]
    fn gram_is_symmetric_with_unit_diagonal() {
        let pts = vec![vec![0.0], vec![1.0], vec![3.0]];
        let k = RbfKernel::new(1.0);
        let g = k.gram(&pts);
        for i in 0..3 {
            assert_eq!(g[i * 3 + i], 1.0);
            for j in 0..3 {
                assert_eq!(g[i * 3 + j], g[j * 3 + i]);
            }
        }
    }

    #[test]
    fn median_heuristic_reasonable() {
        let pts = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let k = RbfKernel::median_heuristic(&pts);
        // Pairwise distances: 1,1,1,2,2,3 -> median ~ 1.5 (index 3 of 6).
        assert!(k.sigma >= 1.0 && k.sigma <= 3.0, "sigma {}", k.sigma);
    }

    #[test]
    fn median_heuristic_degenerate_data() {
        let pts = vec![vec![2.0], vec![2.0]];
        let k = RbfKernel::median_heuristic(&pts);
        assert_eq!(k.sigma, 1.0);
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn zero_sigma_panics() {
        RbfKernel::new(0.0);
    }
}
