//! Relative density-ratio change detection (RuLSIF — Liu, Yamada,
//! Collier & Sugiyama, *Neural Networks* 2013; the paper's reference
//! \[12\]).
//!
//! The relative density ratio
//! `r_α(x) = p(x) / (α p(x) + (1-α) q(x))`
//! is modeled as a kernel expansion `g(x) = Σ_l θ_l K(x, c_l)` with
//! Gaussian kernels centered on the test-window samples. The coefficients
//! solve the ridge-regularized least-squares system
//! `(Ĥ + λI) θ = ĥ`, after which the α-relative Pearson divergence
//!
//! `PE_α = -α/2 Ê_p[g²] - (1-α)/2 Ê_q[g²] + Ê_p[g] - 1/2`
//!
//! serves as the change score; the symmetrized version
//! `PE(p, q) + PE(q, p)` is what the change-detection literature plots.

use crate::kernel::RbfKernel;
use linalg::{solve, Matrix};

/// Configuration of the RuLSIF estimator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RulsifConfig {
    /// Relative parameter α in [0, 1). α = 0 recovers the plain density
    /// ratio (uLSIF); α ≈ 0.1–0.5 bounds the ratio and stabilizes
    /// estimation.
    pub alpha: f64,
    /// Ridge regularization λ.
    pub lambda: f64,
    /// Maximum number of kernel centers (subsampled from the test
    /// window).
    pub max_centers: usize,
    /// RBF bandwidth; `None` uses the median heuristic over both windows.
    pub sigma: Option<f64>,
}

impl Default for RulsifConfig {
    fn default() -> Self {
        RulsifConfig {
            alpha: 0.1,
            lambda: 0.1,
            max_centers: 50,
            sigma: None,
        }
    }
}

impl RulsifConfig {
    /// Check parameters.
    ///
    /// # Errors
    /// Returns a description of the problem.
    pub fn validate(&self) -> Result<(), String> {
        if !(0.0..1.0).contains(&self.alpha) {
            return Err("alpha must be in [0, 1)".into());
        }
        if !(self.lambda.is_finite() && self.lambda > 0.0) {
            return Err("lambda must be finite and > 0".into());
        }
        if self.max_centers == 0 {
            return Err("max_centers must be >= 1".into());
        }
        if let Some(s) = self.sigma {
            if !(s.is_finite() && s > 0.0) {
                return Err("sigma must be finite and > 0".into());
            }
        }
        Ok(())
    }
}

/// The RuLSIF change detector.
#[derive(Debug, Clone)]
pub struct Rulsif {
    cfg: RulsifConfig,
}

impl Rulsif {
    /// Construct, validating the configuration.
    ///
    /// # Panics
    /// Panics on invalid configuration.
    pub fn new(cfg: RulsifConfig) -> Self {
        cfg.validate().expect("invalid RuLSIF config");
        Rulsif { cfg }
    }

    /// One-directional α-relative Pearson divergence estimate
    /// `PE_α(p || q)`, with `p` the "numerator" window.
    pub fn pearson_divergence(&self, p: &[Vec<f64>], q: &[Vec<f64>]) -> f64 {
        assert!(!p.is_empty() && !q.is_empty(), "rulsif: empty window");
        let kernel = match self.cfg.sigma {
            Some(s) => RbfKernel::new(s),
            None => {
                let mut all = p.to_vec();
                all.extend_from_slice(q);
                RbfKernel::median_heuristic(&all)
            }
        };
        // Kernel centers: the first max_centers samples of p (the
        // numerator window), as in the reference implementation.
        let centers: Vec<Vec<f64>> = p.iter().take(self.cfg.max_centers).cloned().collect();
        let b = centers.len();
        let np = p.len() as f64;
        let nq = q.len() as f64;
        let alpha = self.cfg.alpha;

        // Design matrices: Phi_p[i][l] = K(p_i, c_l), Phi_q[j][l].
        let phi_p = kernel.cross_gram(p, &centers);
        let phi_q = kernel.cross_gram(q, &centers);

        // H = alpha/np Phi_p^T Phi_p + (1-alpha)/nq Phi_q^T Phi_q + lambda I
        let mut h = Matrix::zeros(b, b);
        accumulate_gram(&mut h, &phi_p, p.len(), b, alpha / np);
        accumulate_gram(&mut h, &phi_q, q.len(), b, (1.0 - alpha) / nq);
        for l in 0..b {
            h[(l, l)] += self.cfg.lambda;
        }
        // h_vec = 1/np Phi_p^T 1
        let mut h_vec = vec![0.0; b];
        for i in 0..p.len() {
            for l in 0..b {
                h_vec[l] += phi_p[i * b + l];
            }
        }
        for v in &mut h_vec {
            *v /= np;
        }

        let theta = solve(&h, &h_vec).expect("ridge system is SPD hence solvable");

        // g evaluated on both windows.
        let g_p: Vec<f64> = (0..p.len())
            .map(|i| dot_row(&phi_p, i, b, &theta))
            .collect();
        let g_q: Vec<f64> = (0..q.len())
            .map(|j| dot_row(&phi_q, j, b, &theta))
            .collect();

        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        let mean_sq = |v: &[f64]| v.iter().map(|x| x * x).sum::<f64>() / v.len() as f64;
        -0.5 * alpha * mean_sq(&g_p) - 0.5 * (1.0 - alpha) * mean_sq(&g_q) + mean(&g_p) - 0.5
    }

    /// Symmetrized change score `PE(p||q) + PE(q||p)`.
    pub fn change_score(&self, past: &[Vec<f64>], future: &[Vec<f64>]) -> f64 {
        self.pearson_divergence(past, future) + self.pearson_divergence(future, past)
    }

    /// Score a vector series with split windows of length `window` on
    /// each side; returns `(t, score)` for each valid split point.
    pub fn score_series(&self, xs: &[Vec<f64>], window: usize) -> Vec<(usize, f64)> {
        assert!(window >= 2, "rulsif: window must be >= 2");
        if xs.len() < 2 * window {
            return Vec::new();
        }
        (window..=xs.len() - window)
            .map(|t| {
                let past = &xs[t - window..t];
                let future = &xs[t..t + window];
                (t, self.change_score(past, future))
            })
            .collect()
    }
}

/// `target += scale * Phi^T Phi` for a row-major `rows x b` design
/// matrix.
fn accumulate_gram(target: &mut Matrix, phi: &[f64], rows: usize, b: usize, scale: f64) {
    for i in 0..rows {
        let row = &phi[i * b..(i + 1) * b];
        for l in 0..b {
            let rl = row[l];
            if rl == 0.0 {
                continue;
            }
            for m in l..b {
                let v = scale * rl * row[m];
                target[(l, m)] += v;
                if m != l {
                    target[(m, l)] += v;
                }
            }
        }
    }
}

#[inline]
fn dot_row(phi: &[f64], row: usize, b: usize, theta: &[f64]) -> f64 {
    phi[row * b..(row + 1) * b]
        .iter()
        .zip(theta)
        .map(|(x, t)| x * t)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(center: f64, n: usize, spread: f64) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![center + ((i * 29 % 17) as f64 - 8.0) * spread / 8.0])
            .collect()
    }

    #[test]
    fn identical_windows_score_near_zero() {
        let w = cluster(0.0, 30, 1.0);
        let r = Rulsif::new(RulsifConfig::default());
        let s = r.change_score(&w, &w);
        assert!(s.abs() < 0.1, "self-score {s}");
    }

    #[test]
    fn separated_windows_score_high() {
        let a = cluster(0.0, 30, 1.0);
        let b = cluster(8.0, 30, 1.0);
        let r = Rulsif::new(RulsifConfig::default());
        let same = r.change_score(&a, &a);
        let diff = r.change_score(&a, &b);
        assert!(diff > same + 0.5, "diff {diff} vs same {same}");
    }

    #[test]
    fn divergence_ordering_with_distance() {
        let a = cluster(0.0, 25, 1.0);
        let near = cluster(1.0, 25, 1.0);
        let far = cluster(6.0, 25, 1.0);
        let r = Rulsif::new(RulsifConfig::default());
        assert!(r.change_score(&a, &far) > r.change_score(&a, &near));
    }

    #[test]
    fn series_peaks_at_change() {
        let mut xs = cluster(0.0, 40, 1.0);
        xs.extend(cluster(7.0, 40, 1.0));
        let r = Rulsif::new(RulsifConfig::default());
        let scores = r.score_series(&xs, 15);
        let (peak_t, _) = scores
            .iter()
            .cloned()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty");
        assert!(
            (peak_t as i64 - 40).unsigned_abs() <= 4,
            "peak at {peak_t}, expected near 40"
        );
    }

    #[test]
    fn alpha_zero_is_plain_ulsif() {
        // With alpha = 0 the divergence can be larger (unbounded ratio);
        // both must remain finite.
        let a = cluster(0.0, 20, 1.0);
        let b = cluster(4.0, 20, 1.0);
        let r0 = Rulsif::new(RulsifConfig {
            alpha: 0.0,
            ..Default::default()
        });
        let r5 = Rulsif::new(RulsifConfig {
            alpha: 0.5,
            ..Default::default()
        });
        assert!(r0.change_score(&a, &b).is_finite());
        assert!(r5.change_score(&a, &b).is_finite());
    }

    #[test]
    fn short_series_yields_empty() {
        let r = Rulsif::new(RulsifConfig::default());
        assert!(r.score_series(&cluster(0.0, 10, 1.0), 6).is_empty());
    }

    #[test]
    fn config_validation() {
        assert!(RulsifConfig {
            alpha: 1.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(RulsifConfig {
            lambda: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(RulsifConfig::default().validate().is_ok());
    }
}
