//! Baseline change-point detectors the paper compares against (Fig. 1).
//!
//! Both baselines operate on a *single vector per time step* — exactly
//! the limitation the paper's bags-of-data method removes. Fig. 1 applies
//! them to the sample-mean sequence of the bags and shows they miss
//! distribution-shape changes entirely.
//!
//! - [`ChangeFinder`]: the unifying outlier/change-point framework of
//!   Takeuchi & Yamanishi (TKDE 2006), built on two stages of
//!   sequentially discounting auto-regressive (SDAR) model estimation
//!   with logarithmic loss scoring.
//! - [`KernelChangeDetector`]: the online kernel change detection of
//!   Desobry, Davy & Doncarli (IEEE TSP 2005): one-class SVMs trained on
//!   the reference and test windows, compared by the angle between their
//!   feature-space regions.
//!
//! Two more detectors from the paper's related-work list are included
//! for completeness of the comparison suite:
//!
//! - [`Rulsif`]: relative density-ratio estimation (Liu et al., Neural
//!   Networks 2013 — reference \[12\]);
//! - [`SsaDetector`]: singular-spectrum-analysis subspace change
//!   detection (Moskvina & Zhigljavsky 2003 — reference \[10\]).

pub mod changefinder;
pub mod kcd;
pub mod kernel;
pub mod ocsvm;
pub mod rulsif;
pub mod sdar;
pub mod ssa;

pub use changefinder::{ChangeFinder, ChangeFinderConfig};
pub use kcd::{KcdConfig, KernelChangeDetector};
pub use kernel::RbfKernel;
pub use ocsvm::{OneClassSvm, OneClassSvmConfig};
pub use rulsif::{Rulsif, RulsifConfig};
pub use sdar::{Sdar, SdarConfig};
pub use ssa::{SsaConfig, SsaDetector};
