//! One-class SVM (ν-formulation) trained by projected gradient descent
//! on the dual.
//!
//! Dual problem: `min ½ αᵀKα` subject to `0 ≤ α_i ≤ 1/(νn)` and
//! `Σ α_i = 1`. The feasible set is a capped simplex; projection onto it
//! reduces to a one-dimensional root-find (bisection on the shift), so
//! plain projected gradient converges reliably for the window sizes the
//! KCD baseline uses (tens of points).

use crate::kernel::RbfKernel;

/// Configuration of the one-class SVM trainer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OneClassSvmConfig {
    /// ν in (0, 1]: upper-bounds the outlier fraction, lower-bounds the
    /// support-vector fraction.
    pub nu: f64,
    /// Maximum gradient iterations.
    pub max_iters: usize,
    /// Convergence tolerance on the iterate change (L∞).
    pub tol: f64,
}

impl Default for OneClassSvmConfig {
    fn default() -> Self {
        OneClassSvmConfig {
            nu: 0.2,
            max_iters: 500,
            tol: 1e-8,
        }
    }
}

impl OneClassSvmConfig {
    /// Check parameters.
    ///
    /// # Errors
    /// Returns a description of the problem.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.nu > 0.0 && self.nu <= 1.0) {
            return Err("nu must be in (0, 1]".into());
        }
        if self.max_iters == 0 {
            return Err("max_iters must be >= 1".into());
        }
        Ok(())
    }
}

/// A trained one-class SVM.
#[derive(Debug, Clone)]
pub struct OneClassSvm {
    points: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    rho: f64,
    kernel: RbfKernel,
    norm_w: f64,
}

impl OneClassSvm {
    /// Train on a window of points.
    ///
    /// # Panics
    /// Panics on an empty window or invalid configuration.
    pub fn train(points: &[Vec<f64>], kernel: RbfKernel, cfg: &OneClassSvmConfig) -> Self {
        cfg.validate().expect("invalid OneClassSvm config");
        assert!(!points.is_empty(), "OneClassSvm: empty training window");
        let n = points.len();
        let cap = 1.0 / (cfg.nu * n as f64);
        let gram = kernel.gram(points);

        // Start at the analytic center of the feasible set.
        let mut alpha = vec![1.0 / n as f64; n];
        // Step size: 1 / Lipschitz bound (max row sum of K).
        let lip = (0..n)
            .map(|i| gram[i * n..(i + 1) * n].iter().sum::<f64>())
            .fold(1.0f64, f64::max);
        let step = 1.0 / lip;

        let mut grad = vec![0.0; n];
        for _ in 0..cfg.max_iters {
            // grad = K alpha
            for i in 0..n {
                grad[i] = gram[i * n..(i + 1) * n]
                    .iter()
                    .zip(&alpha)
                    .map(|(k, a)| k * a)
                    .sum();
            }
            let mut next: Vec<f64> = alpha.iter().zip(&grad).map(|(a, g)| a - step * g).collect();
            project_capped_simplex(&mut next, cap);
            let delta = alpha
                .iter()
                .zip(&next)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            alpha = next;
            if delta < cfg.tol {
                break;
            }
        }

        // rho: decision value at the margin. For free support vectors
        // (0 < alpha < cap), (K alpha)_i = rho exactly at optimality;
        // take their median for robustness.
        for i in 0..n {
            grad[i] = gram[i * n..(i + 1) * n]
                .iter()
                .zip(&alpha)
                .map(|(k, a)| k * a)
                .sum();
        }
        let mut free: Vec<f64> = alpha
            .iter()
            .zip(&grad)
            .filter(|(&a, _)| a > 1e-9 && a < cap - 1e-9)
            .map(|(_, &g)| g)
            .collect();
        let rho = if free.is_empty() {
            // Fall back to the mean decision value over support vectors.
            let sv: Vec<f64> = alpha
                .iter()
                .zip(&grad)
                .filter(|(&a, _)| a > 1e-9)
                .map(|(_, &g)| g)
                .collect();
            sv.iter().sum::<f64>() / sv.len().max(1) as f64
        } else {
            free.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            free[free.len() / 2]
        };

        let norm_w = alpha
            .iter()
            .enumerate()
            .map(|(i, &ai)| ai * grad[i])
            .sum::<f64>()
            .max(0.0)
            .sqrt();

        OneClassSvm {
            points: points.to_vec(),
            alpha,
            rho,
            kernel,
            norm_w,
        }
    }

    /// Decision function `f(x) = Σ α_i k(x_i, x) - ρ` (≥ 0 inside the
    /// learned region).
    pub fn decision(&self, x: &[f64]) -> f64 {
        let s: f64 = self
            .points
            .iter()
            .zip(&self.alpha)
            .map(|(p, &a)| a * self.kernel.eval(p, x))
            .sum();
        s - self.rho
    }

    /// Dual weights α.
    pub fn alpha(&self) -> &[f64] {
        &self.alpha
    }

    /// Margin offset ρ.
    pub fn rho(&self) -> f64 {
        self.rho
    }

    /// `||w||` in feature space.
    pub fn norm_w(&self) -> f64 {
        self.norm_w
    }

    /// Training points (borrowed).
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }

    /// Feature-space inner product `⟨w_self, w_other⟩` via the
    /// cross-Gram matrix.
    pub fn inner_product(&self, other: &OneClassSvm) -> f64 {
        let cross = self.kernel.cross_gram(&self.points, &other.points);
        let m = other.points.len();
        let mut acc = 0.0;
        for (i, &ai) in self.alpha.iter().enumerate() {
            if ai == 0.0 {
                continue;
            }
            for (j, &bj) in other.alpha.iter().enumerate() {
                acc += ai * bj * cross[i * m + j];
            }
        }
        acc
    }
}

/// Euclidean projection onto `{0 <= a_i <= cap, Σ a_i = 1}` by bisection
/// on the Lagrangian shift.
fn project_capped_simplex(a: &mut [f64], cap: f64) {
    let n = a.len();
    debug_assert!(cap * n as f64 >= 1.0 - 1e-12, "infeasible capped simplex");
    let mut lo = a.iter().cloned().fold(f64::INFINITY, f64::min) - cap - 1.0;
    let mut hi = a.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + 1.0;
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        let total: f64 = a.iter().map(|&x| (x - mid).clamp(0.0, cap)).sum();
        if total > 1.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let shift = 0.5 * (lo + hi);
    for x in a.iter_mut() {
        *x = (*x - shift).clamp(0.0, cap);
    }
    // Exact renormalization of the residual bisection error.
    let total: f64 = a.iter().sum();
    if total > 0.0 {
        for x in a.iter_mut() {
            *x /= total;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(center: f64, n: usize) -> Vec<Vec<f64>> {
        (0..n)
            .map(|i| vec![center + ((i * 17 % 13) as f64 - 6.0) * 0.05])
            .collect()
    }

    #[test]
    fn alpha_is_feasible() {
        let pts = cluster(0.0, 20);
        let cfg = OneClassSvmConfig::default();
        let svm = OneClassSvm::train(&pts, RbfKernel::new(1.0), &cfg);
        let cap = 1.0 / (cfg.nu * 20.0);
        let sum: f64 = svm.alpha().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
        assert!(svm
            .alpha()
            .iter()
            .all(|&a| (-1e-12..=cap + 1e-12).contains(&a)));
    }

    #[test]
    fn inliers_score_higher_than_outliers() {
        let pts = cluster(0.0, 25);
        let svm = OneClassSvm::train(&pts, RbfKernel::new(0.5), &OneClassSvmConfig::default());
        let inlier = svm.decision(&[0.0]);
        let outlier = svm.decision(&[10.0]);
        assert!(
            inlier > outlier,
            "inlier {inlier} should exceed outlier {outlier}"
        );
        assert!(outlier < 0.0, "a far outlier must fall outside the region");
    }

    #[test]
    fn self_inner_product_is_norm_squared() {
        let pts = cluster(1.0, 15);
        let svm = OneClassSvm::train(&pts, RbfKernel::new(1.0), &OneClassSvmConfig::default());
        let ip = svm.inner_product(&svm);
        assert!((ip - svm.norm_w() * svm.norm_w()).abs() < 1e-9);
    }

    #[test]
    fn similar_windows_align_in_feature_space() {
        let a = OneClassSvm::train(&cluster(0.0, 20), RbfKernel::new(1.0), &Default::default());
        let b = OneClassSvm::train(&cluster(0.1, 20), RbfKernel::new(1.0), &Default::default());
        let c = OneClassSvm::train(&cluster(8.0, 20), RbfKernel::new(1.0), &Default::default());
        let cos_ab = a.inner_product(&b) / (a.norm_w() * b.norm_w());
        let cos_ac = a.inner_product(&c) / (a.norm_w() * c.norm_w());
        assert!(
            cos_ab > cos_ac,
            "similar windows cos {cos_ab} vs dissimilar {cos_ac}"
        );
        assert!(cos_ab > 0.9);
    }

    #[test]
    fn projection_respects_constraints() {
        let mut a = vec![0.9, 0.8, -0.5, 0.1];
        project_capped_simplex(&mut a, 0.5);
        let sum: f64 = a.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(a.iter().all(|&x| (0.0..=0.5 + 1e-9).contains(&x)));
    }

    #[test]
    fn projection_identity_when_feasible() {
        let mut a = vec![0.25; 4];
        project_capped_simplex(&mut a, 0.5);
        for &x in &a {
            assert!((x - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn nu_one_forces_uniform_alpha() {
        // cap = 1/n: the only feasible point is uniform.
        let pts = cluster(0.0, 10);
        let svm = OneClassSvm::train(
            &pts,
            RbfKernel::new(1.0),
            &OneClassSvmConfig {
                nu: 1.0,
                ..Default::default()
            },
        );
        for &a in svm.alpha() {
            assert!((a - 0.1).abs() < 1e-6, "alpha {a}");
        }
    }

    #[test]
    fn config_validation() {
        assert!(OneClassSvmConfig {
            nu: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(OneClassSvmConfig {
            nu: 1.5,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(OneClassSvmConfig::default().validate().is_ok());
    }
}
