//! Kernel change detection (Desobry, Davy & Doncarli, IEEE TSP 2005).
//!
//! At each time `t`, two one-class SVMs are trained independently on the
//! immediate past window and the immediate future window. Each learns a
//! region on the unit hypersphere in feature space; the dissimilarity
//! index compares the arc between the two region centers `w_1, w_2`
//! against the widths of the regions themselves:
//!
//! ```text
//!            arc(w_1, w_2)
//! KCD_t = -------------------------------------
//!         arc(w_1, margin_1) + arc(w_2, margin_2)
//! ```
//!
//! with `arc(w_i, margin_i) = arccos(ρ_i / ||w_i||)`. An index well above
//! 1 means the two windows' regions do not overlap — a change.

use crate::kernel::RbfKernel;
use crate::ocsvm::{OneClassSvm, OneClassSvmConfig};

/// Configuration of the KCD baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KcdConfig {
    /// Past/future window length (same for both, as in the original).
    pub window: usize,
    /// One-class SVM settings.
    pub svm: OneClassSvmConfig,
    /// RBF bandwidth; `None` selects the median heuristic per window
    /// pair.
    pub sigma: Option<f64>,
}

impl Default for KcdConfig {
    fn default() -> Self {
        KcdConfig {
            window: 25,
            svm: OneClassSvmConfig::default(),
            sigma: None,
        }
    }
}

impl KcdConfig {
    /// Check parameters.
    ///
    /// # Errors
    /// Returns a description of the problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.window < 2 {
            return Err("KCD window must be >= 2".into());
        }
        if let Some(s) = self.sigma {
            if !(s.is_finite() && s > 0.0) {
                return Err("KCD sigma must be finite and > 0".into());
            }
        }
        self.svm.validate()
    }
}

/// The KCD detector.
#[derive(Debug, Clone)]
pub struct KernelChangeDetector {
    cfg: KcdConfig,
}

impl KernelChangeDetector {
    /// Construct, validating the configuration.
    ///
    /// # Panics
    /// Panics on invalid configuration.
    pub fn new(cfg: KcdConfig) -> Self {
        cfg.validate().expect("invalid KCD config");
        KernelChangeDetector { cfg }
    }

    /// Dissimilarity index between two explicit windows.
    pub fn index(&self, past: &[Vec<f64>], future: &[Vec<f64>]) -> f64 {
        let kernel = match self.cfg.sigma {
            Some(s) => RbfKernel::new(s),
            None => {
                let mut all = past.to_vec();
                all.extend_from_slice(future);
                RbfKernel::median_heuristic(&all)
            }
        };
        let m1 = OneClassSvm::train(past, kernel, &self.cfg.svm);
        let m2 = OneClassSvm::train(future, kernel, &self.cfg.svm);

        let n1 = m1.norm_w().max(1e-12);
        let n2 = m2.norm_w().max(1e-12);
        let cos_centers = (m1.inner_product(&m2) / (n1 * n2)).clamp(-1.0, 1.0);
        let arc_centers = cos_centers.acos();

        let arc1 = (m1.rho() / n1).clamp(-1.0, 1.0).acos();
        let arc2 = (m2.rho() / n2).clamp(-1.0, 1.0).acos();
        arc_centers / (arc1 + arc2).max(1e-12)
    }

    /// Score a vector series: for each `t` with a full past and future
    /// window, the KCD index between them. Returns `(t, score)` pairs
    /// for `t` in `window .. n - window + 1` (the index marks the start
    /// of the future window).
    pub fn score_series(&self, xs: &[Vec<f64>]) -> Vec<(usize, f64)> {
        let w = self.cfg.window;
        if xs.len() < 2 * w {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(xs.len() - 2 * w + 1);
        for t in w..=(xs.len() - w) {
            let past = &xs[t - w..t];
            let future = &xs[t..t + w];
            out.push((t, self.index(past, future)));
        }
        out
    }

    /// Convenience for scalar series.
    pub fn score_scalar_series(&self, xs: &[f64]) -> Vec<(usize, f64)> {
        let vecs: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        self.score_series(&vecs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series_with_shift(n: usize, at: usize, delta: f64) -> Vec<f64> {
        (0..n)
            .map(|t| {
                let level = if t < at { 0.0 } else { delta };
                level + ((t * 31 % 17) as f64 - 8.0) * 0.03
            })
            .collect()
    }

    fn small_cfg() -> KcdConfig {
        KcdConfig {
            window: 10,
            ..Default::default()
        }
    }

    #[test]
    fn index_peaks_at_change() {
        let xs = series_with_shift(60, 30, 6.0);
        let det = KernelChangeDetector::new(small_cfg());
        let scores = det.score_scalar_series(&xs);
        let (peak_t, peak) = scores
            .iter()
            .cloned()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert!(
            (peak_t as i64 - 30).unsigned_abs() <= 3,
            "peak at {peak_t} (value {peak})"
        );
    }

    #[test]
    fn index_low_on_stationary_series() {
        let xs = series_with_shift(60, 1000, 0.0);
        let det = KernelChangeDetector::new(small_cfg());
        let scores = det.score_scalar_series(&xs);
        let change_xs = series_with_shift(60, 30, 6.0);
        let change_peak = det
            .score_scalar_series(&change_xs)
            .into_iter()
            .map(|(_, s)| s)
            .fold(0.0, f64::max);
        let stationary_peak = scores.iter().map(|&(_, s)| s).fold(0.0, f64::max);
        assert!(
            change_peak > 2.0 * stationary_peak,
            "change {change_peak} vs stationary {stationary_peak}"
        );
    }

    #[test]
    fn identical_windows_have_near_zero_index() {
        let window: Vec<Vec<f64>> = (0..12).map(|i| vec![(i % 5) as f64 * 0.1]).collect();
        let det = KernelChangeDetector::new(small_cfg());
        let idx = det.index(&window, &window);
        assert!(idx < 0.05, "identical windows index {idx}");
    }

    #[test]
    fn series_too_short_yields_empty() {
        let det = KernelChangeDetector::new(small_cfg());
        assert!(det.score_scalar_series(&[1.0; 19]).is_empty());
        assert_eq!(det.score_scalar_series(&[1.0; 20]).len(), 1);
    }

    #[test]
    fn fixed_sigma_respected() {
        let xs = series_with_shift(40, 20, 4.0);
        let det = KernelChangeDetector::new(KcdConfig {
            window: 10,
            sigma: Some(0.7),
            ..Default::default()
        });
        let scores = det.score_scalar_series(&xs);
        assert!(!scores.is_empty());
        assert!(scores.iter().all(|&(_, s)| s.is_finite() && s >= 0.0));
    }

    #[test]
    fn config_validation() {
        assert!(KcdConfig {
            window: 1,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(KcdConfig {
            sigma: Some(-1.0),
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(KcdConfig::default().validate().is_ok());
    }
}
