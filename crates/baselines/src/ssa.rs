//! Singular-spectrum-analysis change detection (Moskvina & Zhigljavsky,
//! *Communications in Statistics* 2003; the paper's reference \[10\]).
//!
//! A base window of the scalar series is lag-embedded into a trajectory
//! (Hankel) matrix; the leading `l` eigenvectors of its lag-covariance
//! matrix span the "signal subspace". The detection statistic compares
//! how well lagged vectors from the test window fit that subspace: the
//! normalized mean squared distance of test vectors to the subspace,
//! divided by the same quantity for the base window itself. Ratios well
//! above 1 indicate that the test window's dynamics left the base
//! subspace — a change.

use linalg::{jacobi_eigen, Matrix};

/// Configuration of the SSA detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SsaConfig {
    /// Base-window length `N` (how much history defines "normal").
    pub base_len: usize,
    /// Lag / embedding dimension `M` (must satisfy `M <= N/2` for a
    /// well-conditioned trajectory matrix).
    pub lag: usize,
    /// Number of leading eigenvectors spanning the signal subspace.
    pub components: usize,
    /// Test-window length `Q` (lagged vectors ahead of the split).
    pub test_len: usize,
}

impl Default for SsaConfig {
    fn default() -> Self {
        SsaConfig {
            base_len: 40,
            lag: 10,
            components: 3,
            test_len: 10,
        }
    }
}

impl SsaConfig {
    /// Check parameters.
    ///
    /// # Errors
    /// Returns a description of the problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.lag < 2 {
            return Err("lag must be >= 2".into());
        }
        if self.base_len < 2 * self.lag {
            return Err("base_len must be >= 2 * lag".into());
        }
        if self.components == 0 || self.components >= self.lag {
            return Err("components must be in 1..lag".into());
        }
        if self.test_len < self.lag {
            return Err("test_len must be >= lag".into());
        }
        Ok(())
    }
}

/// The SSA change detector.
#[derive(Debug, Clone)]
pub struct SsaDetector {
    cfg: SsaConfig,
}

impl SsaDetector {
    /// Construct, validating the configuration.
    ///
    /// # Panics
    /// Panics on invalid configuration.
    pub fn new(cfg: SsaConfig) -> Self {
        cfg.validate().expect("invalid SSA config");
        SsaDetector { cfg }
    }

    /// Detection statistic for an explicit base/test split.
    ///
    /// Returns `D_test / D_base` where `D` is the mean squared residual
    /// of lagged vectors against the base window's leading-eigenvector
    /// subspace. `D_base` is floored to avoid division blow-ups on
    /// noiseless bases.
    pub fn statistic(&self, base: &[f64], test: &[f64]) -> f64 {
        let m = self.cfg.lag;
        assert!(base.len() >= 2 * m, "ssa: base window too short");
        assert!(test.len() >= m, "ssa: test window too short");

        // Lag-covariance of the base trajectory matrix.
        let cols = base.len() - m + 1;
        let mut c = Matrix::zeros(m, m);
        for k in 0..cols {
            let v = &base[k..k + m];
            for i in 0..m {
                for j in i..m {
                    let add = v[i] * v[j] / cols as f64;
                    c[(i, j)] += add;
                    if i != j {
                        c[(j, i)] += add;
                    }
                }
            }
        }
        let eig = jacobi_eigen(&c, 1e-10, 100);
        // Basis: leading `components` eigenvectors as rows for cheap
        // projection.
        let l = self.cfg.components;
        let basis: Vec<Vec<f64>> = (0..l).map(|j| eig.vectors.col(j)).collect();

        let d_base = mean_residual(base, m, &basis);
        let d_test = mean_residual(test, m, &basis);
        d_test / d_base.max(1e-12)
    }

    /// Score a scalar series: for each split `t` with a full base window
    /// behind and test window ahead, the SSA statistic. Returns
    /// `(t, score)` pairs.
    pub fn score_series(&self, xs: &[f64]) -> Vec<(usize, f64)> {
        let n = self.cfg.base_len;
        let q = self.cfg.test_len;
        if xs.len() < n + q {
            return Vec::new();
        }
        (n..=xs.len() - q)
            .map(|t| (t, self.statistic(&xs[t - n..t], &xs[t..t + q])))
            .collect()
    }
}

/// Mean squared residual of all lagged vectors of `xs` against the
/// subspace spanned by `basis` (orthonormal rows).
fn mean_residual(xs: &[f64], m: usize, basis: &[Vec<f64>]) -> f64 {
    let cols = xs.len() - m + 1;
    let mut acc = 0.0;
    for k in 0..cols {
        let v = &xs[k..k + m];
        let norm2: f64 = v.iter().map(|x| x * x).sum();
        let proj2: f64 = basis
            .iter()
            .map(|b| {
                let p: f64 = b.iter().zip(v).map(|(bi, vi)| bi * vi).sum();
                p * p
            })
            .sum();
        acc += (norm2 - proj2).max(0.0);
    }
    acc / cols as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sine(n: usize, period: f64, amp: f64, offset: f64) -> Vec<f64> {
        (0..n)
            .map(|t| offset + amp * (2.0 * std::f64::consts::PI * t as f64 / period).sin())
            .collect()
    }

    #[test]
    fn stationary_sine_statistic_near_one() {
        let xs = sine(200, 16.0, 1.0, 0.0);
        let det = SsaDetector::new(SsaConfig::default());
        let scores = det.score_series(&xs);
        for &(t, s) in &scores {
            assert!(s < 5.0, "stationary statistic {s} at t={t}");
        }
    }

    #[test]
    fn frequency_change_spikes_statistic() {
        // Frequency halves at t = 150: the old signal subspace no longer
        // explains the new dynamics.
        let mut xs = sine(150, 16.0, 1.0, 0.0);
        xs.extend(sine(100, 5.0, 1.0, 0.0));
        let det = SsaDetector::new(SsaConfig::default());
        let scores = det.score_series(&xs);
        let baseline: f64 = scores
            .iter()
            .filter(|&&(t, _)| t < 140)
            .map(|&(_, s)| s)
            .fold(0.0, f64::max);
        let at_change: f64 = scores
            .iter()
            .filter(|&&(t, _)| (150..170).contains(&t))
            .map(|&(_, s)| s)
            .fold(0.0, f64::max);
        assert!(
            at_change > 3.0 * baseline.max(1e-6),
            "change {at_change} vs baseline {baseline}"
        );
    }

    #[test]
    fn level_shift_detected() {
        let mut xs = sine(150, 16.0, 1.0, 0.0);
        xs.extend(sine(100, 16.0, 1.0, 6.0));
        let det = SsaDetector::new(SsaConfig::default());
        let scores = det.score_series(&xs);
        let (peak_t, _) = scores
            .iter()
            .cloned()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("non-empty");
        assert!(
            (peak_t as i64 - 150).unsigned_abs() <= 12,
            "peak at {peak_t}"
        );
    }

    #[test]
    fn identical_windows_near_unity() {
        let xs = sine(80, 16.0, 1.0, 0.0);
        let det = SsaDetector::new(SsaConfig::default());
        let s = det.statistic(&xs[..40], &xs[40..]);
        assert!((0.0..3.0).contains(&s), "statistic {s}");
    }

    #[test]
    fn short_series_empty() {
        let det = SsaDetector::new(SsaConfig::default());
        assert!(det.score_series(&vec![0.0; 30]).is_empty());
    }

    #[test]
    fn config_validation() {
        assert!(SsaConfig {
            lag: 1,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SsaConfig {
            base_len: 10,
            lag: 10,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SsaConfig {
            components: 10,
            lag: 10,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(SsaConfig::default().validate().is_ok());
    }
}
