//! Sequentially discounting auto-regressive (SDAR) model estimation.
//!
//! The building block of ChangeFinder (Takeuchi & Yamanishi 2006): an
//! order-`k` scalar AR model whose sufficient statistics are updated with
//! exponential discounting factor `r`, so the model tracks gradual drift
//! while large one-step surprises show up as high logarithmic loss.

/// Configuration of an SDAR model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SdarConfig {
    /// AR order `k` (number of lagged terms).
    pub order: usize,
    /// Discounting factor `r` in (0, 1); smaller adapts more slowly.
    pub discount: f64,
}

impl Default for SdarConfig {
    fn default() -> Self {
        SdarConfig {
            order: 2,
            discount: 0.02,
        }
    }
}

impl SdarConfig {
    /// Check parameters.
    ///
    /// # Errors
    /// Returns a description of the problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.order == 0 {
            return Err("SDAR order must be >= 1".into());
        }
        if !(self.discount > 0.0 && self.discount < 1.0) {
            return Err("SDAR discount must be in (0, 1)".into());
        }
        Ok(())
    }
}

/// Online SDAR model over a scalar series.
#[derive(Debug, Clone)]
pub struct Sdar {
    cfg: SdarConfig,
    mean: f64,
    /// Autocovariances C_0 .. C_k (discounted estimates).
    cov: Vec<f64>,
    /// Recent centered observations, newest first (length <= k).
    history: Vec<f64>,
    /// Innovation variance estimate.
    sigma2: f64,
    /// Number of observations seen.
    seen: usize,
}

impl Sdar {
    /// Fresh model.
    ///
    /// # Panics
    /// Panics on invalid configuration.
    pub fn new(cfg: SdarConfig) -> Self {
        cfg.validate().expect("invalid SDAR config");
        Sdar {
            cfg,
            mean: 0.0,
            cov: vec![0.0; cfg.order + 1],
            history: Vec::with_capacity(cfg.order),
            sigma2: 1.0,
            seen: 0,
        }
    }

    /// Current mean estimate.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Current innovation variance estimate.
    pub fn sigma2(&self) -> f64 {
        self.sigma2
    }

    /// Consume one observation and return the logarithmic loss
    /// `-log p(x_t | past)` under the pre-update predictive Gaussian.
    pub fn update(&mut self, x: f64) -> f64 {
        let r = self.cfg.discount;
        let k = self.cfg.order;

        // Predict from current parameters before updating them.
        let coeffs = self.solve_ar();
        let mut pred = self.mean;
        for (j, c) in coeffs.iter().enumerate() {
            if let Some(&h) = self.history.get(j) {
                pred += c * h;
            }
        }
        let var = self.sigma2.max(1e-12);
        let resid = x - pred;
        let loss = 0.5 * ((2.0 * std::f64::consts::PI * var).ln() + resid * resid / var);

        // Update sufficient statistics.
        self.seen += 1;
        self.mean = (1.0 - r) * self.mean + r * x;
        let xc = x - self.mean;
        for j in 0..=k {
            let lagged = if j == 0 {
                Some(xc)
            } else {
                self.history.get(j - 1).copied()
            };
            if let Some(l) = lagged {
                self.cov[j] = (1.0 - r) * self.cov[j] + r * xc * l;
            }
        }
        self.sigma2 = (1.0 - r) * self.sigma2 + r * resid * resid;

        // Shift history (store centered values, newest first).
        self.history.insert(0, xc);
        self.history.truncate(k);

        loss
    }

    /// Solve the Yule–Walker system for the AR coefficients via
    /// Levinson–Durbin recursion on the current autocovariances.
    fn solve_ar(&self) -> Vec<f64> {
        let k = self.cfg.order;
        let c = &self.cov;
        if self.seen < 2 || c[0].abs() < 1e-12 {
            return vec![0.0; k];
        }
        // Levinson-Durbin.
        let mut a = vec![0.0; k];
        let mut e = c[0];
        for m in 0..k {
            let mut acc = c[m + 1];
            for j in 0..m {
                acc -= a[j] * c[m - j];
            }
            if e.abs() < 1e-12 {
                break;
            }
            let kappa = acc / e;
            // Update coefficients.
            let prev = a.clone();
            a[m] = kappa;
            for j in 0..m {
                a[j] = prev[j] - kappa * prev[m - 1 - j];
            }
            e *= 1.0 - kappa * kappa;
            if e <= 0.0 {
                e = 1e-12;
            }
        }
        // Clamp for stability under discounted (noisy) covariances.
        for ai in &mut a {
            *ai = ai.clamp(-0.999, 0.999);
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_series(xs: &[f64], cfg: SdarConfig) -> Vec<f64> {
        let mut m = Sdar::new(cfg);
        xs.iter().map(|&x| m.update(x)).collect()
    }

    #[test]
    fn constant_series_low_loss_after_warmup() {
        let xs = vec![5.0; 200];
        let losses = run_series(&xs, SdarConfig::default());
        // After adaptation the loss must drop well below the initial one.
        let early = losses[1];
        let late = losses[150..].iter().sum::<f64>() / 50.0;
        assert!(late < early, "late loss {late} vs early {early}");
        let mut m = Sdar::new(SdarConfig::default());
        for &x in &xs {
            m.update(x);
        }
        assert!((m.mean() - 5.0).abs() < 0.1);
    }

    #[test]
    fn level_shift_spikes_loss() {
        let mut xs = vec![0.0; 100];
        xs.extend(vec![10.0; 50]);
        // Perturb slightly so variance does not collapse to the floor.
        for (i, x) in xs.iter_mut().enumerate() {
            *x += ((i * 37 % 17) as f64 - 8.0) * 0.02;
        }
        let losses = run_series(&xs, SdarConfig::default());
        let before = losses[80..100].iter().cloned().fold(0.0, f64::max);
        let at_change = losses[100];
        assert!(
            at_change > before + 1.0,
            "loss at change {at_change} vs max before {before}"
        );
    }

    #[test]
    fn ar1_signal_is_learned() {
        // x_t = 0.8 x_{t-1} + small noise: prediction should beat the
        // mean-only model, i.e. losses settle low.
        let mut xs = Vec::with_capacity(400);
        let mut x = 0.0;
        for i in 0..400 {
            x = 0.8 * x + ((i * 31 % 13) as f64 - 6.0) * 0.05;
            xs.push(x);
        }
        let losses = run_series(
            &xs,
            SdarConfig {
                order: 1,
                discount: 0.05,
            },
        );
        let late = losses[300..].iter().sum::<f64>() / 100.0;
        assert!(late < 1.0, "late loss {late}");
    }

    #[test]
    fn losses_are_finite() {
        let xs: Vec<f64> = (0..300).map(|i| ((i * 7919) % 101) as f64 * 0.1).collect();
        for loss in run_series(&xs, SdarConfig::default()) {
            assert!(loss.is_finite());
        }
    }

    #[test]
    fn config_validation() {
        assert!(SdarConfig {
            order: 0,
            discount: 0.1
        }
        .validate()
        .is_err());
        assert!(SdarConfig {
            order: 1,
            discount: 1.0
        }
        .validate()
        .is_err());
        assert!(SdarConfig::default().validate().is_ok());
    }
}
