//! ChangeFinder (Takeuchi & Yamanishi, TKDE 2006).
//!
//! Two-stage SDAR: stage one scores each observation by logarithmic loss
//! under an online AR model (outlier score); a moving average of those
//! losses forms a smoothed series; stage two runs another SDAR over the
//! smoothed series, whose smoothed loss is the change-point score. The
//! two smoothing windows wash out isolated outliers so that sustained
//! shifts — change points — dominate.

use crate::sdar::{Sdar, SdarConfig};
use std::collections::VecDeque;

/// Configuration of the two-stage ChangeFinder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChangeFinderConfig {
    /// Stage-1 SDAR parameters (outlier model).
    pub stage1: SdarConfig,
    /// Stage-2 SDAR parameters (change model).
    pub stage2: SdarConfig,
    /// Smoothing window length `T` applied to each stage's losses.
    pub smoothing: usize,
}

impl Default for ChangeFinderConfig {
    fn default() -> Self {
        ChangeFinderConfig {
            stage1: SdarConfig {
                order: 2,
                discount: 0.02,
            },
            stage2: SdarConfig {
                order: 2,
                discount: 0.02,
            },
            smoothing: 5,
        }
    }
}

impl ChangeFinderConfig {
    /// Check parameters.
    ///
    /// # Errors
    /// Returns a description of the problem.
    pub fn validate(&self) -> Result<(), String> {
        self.stage1.validate()?;
        self.stage2.validate()?;
        if self.smoothing == 0 {
            return Err("smoothing window must be >= 1".into());
        }
        Ok(())
    }
}

/// Online two-stage change detector over a scalar series.
#[derive(Debug, Clone)]
pub struct ChangeFinder {
    cfg: ChangeFinderConfig,
    stage1: Sdar,
    stage2: Sdar,
    window1: VecDeque<f64>,
    window2: VecDeque<f64>,
}

impl ChangeFinder {
    /// Fresh detector.
    ///
    /// # Panics
    /// Panics on invalid configuration.
    pub fn new(cfg: ChangeFinderConfig) -> Self {
        cfg.validate().expect("invalid ChangeFinder config");
        ChangeFinder {
            cfg,
            stage1: Sdar::new(cfg.stage1),
            stage2: Sdar::new(cfg.stage2),
            window1: VecDeque::with_capacity(cfg.smoothing),
            window2: VecDeque::with_capacity(cfg.smoothing),
        }
    }

    /// Consume one observation, returning the change-point score.
    pub fn update(&mut self, x: f64) -> f64 {
        let loss1 = self.stage1.update(x);
        push_window(&mut self.window1, loss1, self.cfg.smoothing);
        let y = mean(&self.window1);

        let loss2 = self.stage2.update(y);
        push_window(&mut self.window2, loss2, self.cfg.smoothing);
        mean(&self.window2)
    }

    /// Score a whole series at once.
    pub fn score_series(cfg: ChangeFinderConfig, xs: &[f64]) -> Vec<f64> {
        let mut cf = ChangeFinder::new(cfg);
        xs.iter().map(|&x| cf.update(x)).collect()
    }
}

fn push_window(w: &mut VecDeque<f64>, v: f64, cap: usize) {
    if w.len() == cap {
        w.pop_front();
    }
    w.push_back(v);
}

fn mean(w: &VecDeque<f64>) -> f64 {
    w.iter().sum::<f64>() / w.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Noisy step series: level shifts at the given indices.
    fn step_series(n: usize, shifts: &[(usize, f64)]) -> Vec<f64> {
        (0..n)
            .map(|t| {
                let level: f64 = shifts
                    .iter()
                    .filter(|&&(at, _)| t >= at)
                    .map(|&(_, delta)| delta)
                    .sum();
                level + ((t * 127 % 31) as f64 - 15.0) * 0.02
            })
            .collect()
    }

    #[test]
    fn scores_spike_after_level_shift() {
        let xs = step_series(300, &[(150, 8.0)]);
        let scores = ChangeFinder::score_series(ChangeFinderConfig::default(), &xs);
        let baseline = scores[100..145]
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        let at_change = scores[150..170]
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            at_change > baseline,
            "change score {at_change} vs pre-change max {baseline}"
        );
    }

    #[test]
    fn stationary_series_scores_settle() {
        let xs = step_series(400, &[]);
        let scores = ChangeFinder::score_series(ChangeFinderConfig::default(), &xs);
        let early = scores[30..60].iter().sum::<f64>() / 30.0;
        let late = scores[350..].iter().sum::<f64>() / 50.0;
        assert!(late <= early + 1.0, "late {late} vs early {early}");
        assert!(scores.iter().all(|s| s.is_finite()));
    }

    #[test]
    fn smoothing_reduces_single_outlier_response() {
        // One isolated outlier should produce a smaller peak under heavy
        // smoothing than a sustained shift of the same magnitude.
        let mut outlier = step_series(300, &[]);
        outlier[150] += 8.0;
        let shift = step_series(300, &[(150, 8.0)]);
        let cfg = ChangeFinderConfig {
            smoothing: 9,
            ..Default::default()
        };
        let s_outlier = ChangeFinder::score_series(cfg, &outlier);
        let s_shift = ChangeFinder::score_series(cfg, &shift);
        let peak_outlier = s_outlier[150..180].iter().cloned().fold(0.0, f64::max);
        let peak_shift = s_shift[150..180].iter().cloned().fold(0.0, f64::max);
        assert!(
            peak_shift > peak_outlier,
            "sustained shift {peak_shift} should outscore isolated outlier {peak_outlier}"
        );
    }

    #[test]
    fn deterministic() {
        let xs = step_series(100, &[(50, 3.0)]);
        let a = ChangeFinder::score_series(ChangeFinderConfig::default(), &xs);
        let b = ChangeFinder::score_series(ChangeFinderConfig::default(), &xs);
        assert_eq!(a, b);
    }

    #[test]
    fn config_validation() {
        let bad = ChangeFinderConfig {
            smoothing: 0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        assert!(ChangeFinderConfig::default().validate().is_ok());
    }
}
