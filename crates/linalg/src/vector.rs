//! Free functions on `&[f64]` vectors.
//!
//! These are the hot inner-loop primitives shared by the quantizers, the
//! EMD ground distances and the statistical generators. They operate on
//! plain slices so callers never need to wrap data in a dedicated vector
//! type.

/// Dot product of two equal-length slices.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Element-wise difference `a - b` as a new vector.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// In-place scaled addition: `y += alpha * x`.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// In-place scaling: `x *= alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Squared Euclidean distance between two points.
///
/// # Panics
/// Panics if the slices have different lengths.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sq_dist: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two points.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    sq_dist(a, b).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn norm2_pythagorean() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn sub_elementwise() {
        assert_eq!(sub(&[3.0, 5.0], &[1.0, 2.0]), vec![2.0, 3.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[10.0, 20.0], &mut y);
        assert_eq!(y, vec![21.0, 41.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn euclidean_matches_norm_of_diff() {
        let a = [1.0, 2.0, 3.0];
        let b = [4.0, 6.0, 3.0];
        assert!((euclidean(&a, &b) - 5.0).abs() < 1e-12);
        assert!((sq_dist(&a, &b) - 25.0).abs() < 1e-12);
    }
}
