//! Cholesky factorization of symmetric positive-definite matrices.
//!
//! Used by the statistical substrate to sample from multivariate normal
//! distributions: if `Sigma = L L^T`, then `mu + L z` with `z ~ N(0, I)`
//! is distributed `N(mu, Sigma)`.

use crate::matrix::Matrix;

/// Failure modes of [`cholesky`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CholeskyError {
    /// Input matrix is not square.
    NotSquare,
    /// A pivot was not strictly positive, i.e. the matrix is not positive
    /// definite (up to numerical tolerance). Carries the failing column.
    NotPositiveDefinite(usize),
}

impl std::fmt::Display for CholeskyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CholeskyError::NotSquare => write!(f, "cholesky: matrix is not square"),
            CholeskyError::NotPositiveDefinite(j) => {
                write!(f, "cholesky: matrix is not positive definite (pivot {j})")
            }
        }
    }
}

impl std::error::Error for CholeskyError {}

/// Compute the lower-triangular Cholesky factor `L` with `A = L L^T`.
///
/// Only the lower triangle of `a` is read, so callers may pass a matrix
/// whose upper triangle is stale.
///
/// # Errors
/// Returns [`CholeskyError::NotSquare`] for rectangular input and
/// [`CholeskyError::NotPositiveDefinite`] when a pivot is `<= 0`.
pub fn cholesky(a: &Matrix) -> Result<Matrix, CholeskyError> {
    if !a.is_square() {
        return Err(CholeskyError::NotSquare);
    }
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        let mut diag = a[(j, j)];
        for k in 0..j {
            diag -= l[(j, k)] * l[(j, k)];
        }
        if diag <= 0.0 {
            return Err(CholeskyError::NotPositiveDefinite(j));
        }
        let ljj = diag.sqrt();
        l[(j, j)] = ljj;
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / ljj;
        }
    }
    Ok(l)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(l: &Matrix) -> Matrix {
        l.matmul(&l.transpose())
    }

    #[test]
    fn identity_factors_to_identity() {
        let l = cholesky(&Matrix::identity(4)).unwrap();
        assert_eq!(l, Matrix::identity(4));
    }

    #[test]
    fn known_3x3() {
        // Classic example: A = [[4,12,-16],[12,37,-43],[-16,-43,98]]
        // has L = [[2,0,0],[6,1,0],[-8,5,3]].
        let a = Matrix::from_rows(&[
            vec![4.0, 12.0, -16.0],
            vec![12.0, 37.0, -43.0],
            vec![-16.0, -43.0, 98.0],
        ]);
        let l = cholesky(&a).unwrap();
        let expected = Matrix::from_rows(&[
            vec![2.0, 0.0, 0.0],
            vec![6.0, 1.0, 0.0],
            vec![-8.0, 5.0, 3.0],
        ]);
        assert!(l.sub(&expected).max_abs() < 1e-12);
    }

    #[test]
    fn reconstruction_round_trip() {
        let a = Matrix::from_rows(&[
            vec![2.5, 0.3, 0.1],
            vec![0.3, 1.7, -0.2],
            vec![0.1, -0.2, 3.1],
        ]);
        let l = cholesky(&a).unwrap();
        assert!(reconstruct(&l).sub(&a).max_abs() < 1e-12);
    }

    #[test]
    fn rejects_rectangular() {
        assert_eq!(
            cholesky(&Matrix::zeros(2, 3)),
            Err(CholeskyError::NotSquare)
        );
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            cholesky(&a),
            Err(CholeskyError::NotPositiveDefinite(_))
        ));
    }

    #[test]
    fn rejects_zero_matrix() {
        assert!(matches!(
            cholesky(&Matrix::zeros(3, 3)),
            Err(CholeskyError::NotPositiveDefinite(0))
        ));
    }

    #[test]
    fn scaled_identity() {
        // Sigma = 15 * I_2, the covariance used by Dataset 1 of §5.1.
        let a = Matrix::identity(2).scaled(15.0);
        let l = cholesky(&a).unwrap();
        assert!((l[(0, 0)] - 15.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(l[(0, 1)], 0.0);
    }
}
