//! Small dense linear-algebra substrate for the bags-cpd workspace.
//!
//! The change-point detection pipeline of Koshijima, Hino & Murata (TKDE
//! 2015) needs only a handful of dense operations: matrix arithmetic for
//! feature transforms, a Cholesky factorization for sampling from
//! multivariate normal distributions (synthetic data generators), a
//! symmetric eigendecomposition (Jacobi rotations) and classical
//! multidimensional scaling for reproducing the center panels of Fig. 6.
//!
//! Everything here is implemented from scratch on a row-major [`Matrix`]
//! type; there is no external linear-algebra dependency.

pub mod cholesky;
pub mod eigen;
pub mod matrix;
pub mod mds;
pub mod solve;
pub mod vector;

pub use cholesky::{cholesky, CholeskyError};
pub use eigen::{jacobi_eigen, Eigen};
pub use matrix::Matrix;
pub use mds::{classical_mds, MdsError};
pub use solve::{solve, SolveError};
pub use vector::{axpy, dot, euclidean, norm2, scale, sq_dist, sub};
