//! Symmetric eigendecomposition by cyclic Jacobi rotations.
//!
//! Classical MDS (Fig. 6 center panels) needs the leading eigenpairs of a
//! double-centered squared-distance matrix. The matrices involved are
//! small (one row per bag, so ~20–300), where the Jacobi method is simple,
//! numerically robust, and plenty fast.

use crate::matrix::Matrix;

/// Result of [`jacobi_eigen`]: eigenvalues sorted in descending order with
/// matching eigenvectors as matrix columns.
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues, descending.
    pub values: Vec<f64>,
    /// `n x n` matrix whose column `j` is the eigenvector for `values[j]`.
    pub vectors: Matrix,
}

/// Eigendecomposition of a symmetric matrix by the cyclic Jacobi method.
///
/// Sweeps zero out off-diagonal entries until the off-diagonal Frobenius
/// norm falls below `tol * ||A||_F` or `max_sweeps` is reached (whichever
/// comes first); for symmetric input the method always converges.
///
/// # Panics
/// Panics if `a` is not square or not symmetric (tolerance `1e-9` relative
/// to the largest entry).
pub fn jacobi_eigen(a: &Matrix, tol: f64, max_sweeps: usize) -> Eigen {
    assert!(a.is_square(), "jacobi_eigen: matrix must be square");
    let scale = a.max_abs().max(1.0);
    assert!(
        a.is_symmetric(1e-9 * scale),
        "jacobi_eigen: matrix must be symmetric"
    );
    let n = a.rows();
    let mut m = a.clone();
    let mut v = Matrix::identity(n);
    let fro = a.frobenius().max(f64::MIN_POSITIVE);

    for _sweep in 0..max_sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if (2.0 * off).sqrt() <= tol * fro {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= f64::MIN_POSITIVE {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                // Stable computation of tan of the rotation angle.
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Apply rotation J(p, q, theta) on both sides: M <- J^T M J.
                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                // Accumulate eigenvectors: V <- V J.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Extract and sort eigenpairs by descending eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    let diag: Vec<f64> = (0..n).map(|i| m[(i, i)]).collect();
    order.sort_by(|&i, &j| diag[j].partial_cmp(&diag[i]).expect("NaN eigenvalue"));

    let values: Vec<f64> = order.iter().map(|&i| diag[i]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_j, &old_j) in order.iter().enumerate() {
        for i in 0..n {
            vectors[(i, new_j)] = v[(i, old_j)];
        }
    }
    Eigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_decomposition(a: &Matrix, e: &Eigen, tol: f64) {
        let n = a.rows();
        // A v_j = lambda_j v_j for every column.
        for j in 0..n {
            let vj = e.vectors.col(j);
            let av = a.matvec(&vj);
            for i in 0..n {
                assert!(
                    (av[i] - e.values[j] * vj[i]).abs() < tol,
                    "eigenpair {j} violated at row {i}: {} vs {}",
                    av[i],
                    e.values[j] * vj[i]
                );
            }
        }
    }

    #[test]
    fn diagonal_matrix() {
        let a = Matrix::from_rows(&[
            vec![3.0, 0.0, 0.0],
            vec![0.0, -1.0, 0.0],
            vec![0.0, 0.0, 7.0],
        ]);
        let e = jacobi_eigen(&a, 1e-12, 50);
        assert!((e.values[0] - 7.0).abs() < 1e-10);
        assert!((e.values[1] - 3.0).abs() < 1e-10);
        assert!((e.values[2] + 1.0).abs() < 1e-10);
        check_decomposition(&a, &e, 1e-8);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = jacobi_eigen(&a, 1e-12, 50);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        check_decomposition(&a, &e, 1e-9);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, -0.3],
            vec![0.5, -0.3, 2.0],
        ]);
        let e = jacobi_eigen(&a, 1e-12, 100);
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        assert!(vtv.sub(&Matrix::identity(3)).max_abs() < 1e-9);
        check_decomposition(&a, &e, 1e-8);
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = Matrix::from_rows(&[
            vec![1.0, 0.2, 0.3, 0.0],
            vec![0.2, 2.0, 0.1, 0.4],
            vec![0.3, 0.1, 3.0, 0.5],
            vec![0.0, 0.4, 0.5, 4.0],
        ]);
        let e = jacobi_eigen(&a, 1e-12, 100);
        let trace: f64 = (0..4).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-9);
    }

    #[test]
    fn rank_deficient_matrix_has_zero_eigenvalues() {
        // Outer product: rank-1 PSD matrix.
        let u = [1.0, 2.0, 3.0];
        let a = Matrix::from_fn(3, 3, |i, j| u[i] * u[j]);
        let e = jacobi_eigen(&a, 1e-12, 100);
        assert!((e.values[0] - 14.0).abs() < 1e-9); // |u|^2
        assert!(e.values[1].abs() < 1e-9);
        assert!(e.values[2].abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn rejects_asymmetric() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        jacobi_eigen(&a, 1e-10, 10);
    }
}
