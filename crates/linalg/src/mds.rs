//! Classical (Torgerson) multidimensional scaling.
//!
//! Fig. 6 of the paper visualizes the bags of each synthetic dataset by
//! embedding the pairwise-EMD matrix into the plane. Classical MDS does
//! exactly that: double-center the squared distance matrix, take the top
//! `k` eigenpairs, and scale the eigenvectors by the square roots of the
//! eigenvalues.

use crate::eigen::jacobi_eigen;
use crate::matrix::Matrix;

/// Failure modes of [`classical_mds`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MdsError {
    /// Distance matrix is not square.
    NotSquare,
    /// Requested embedding dimension is zero or exceeds the number of points.
    BadDimension,
    /// A distance entry was negative or NaN.
    InvalidDistance,
}

impl std::fmt::Display for MdsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MdsError::NotSquare => write!(f, "mds: distance matrix must be square"),
            MdsError::BadDimension => write!(f, "mds: embedding dimension out of range"),
            MdsError::InvalidDistance => write!(f, "mds: distances must be finite and >= 0"),
        }
    }
}

impl std::error::Error for MdsError {}

/// Embed `n` points described by a pairwise distance matrix into `R^k`.
///
/// Returns an `n x k` matrix of coordinates. Components with non-positive
/// eigenvalues (which appear when the distances are not exactly Euclidean,
/// as with EMD) are embedded as zeros, matching standard practice.
///
/// # Errors
/// See [`MdsError`].
pub fn classical_mds(dist: &Matrix, k: usize) -> Result<Matrix, MdsError> {
    if !dist.is_square() {
        return Err(MdsError::NotSquare);
    }
    let n = dist.rows();
    if k == 0 || k > n {
        return Err(MdsError::BadDimension);
    }
    for i in 0..n {
        for j in 0..n {
            let d = dist[(i, j)];
            if !d.is_finite() || d < 0.0 {
                return Err(MdsError::InvalidDistance);
            }
        }
    }

    // B = -1/2 J D^2 J with J = I - (1/n) 11^T (double centering).
    let d2 = Matrix::from_fn(n, n, |i, j| dist[(i, j)] * dist[(i, j)]);
    let row_mean: Vec<f64> = (0..n)
        .map(|i| d2.row(i).iter().sum::<f64>() / n as f64)
        .collect();
    let grand_mean: f64 = row_mean.iter().sum::<f64>() / n as f64;
    let b = Matrix::from_fn(n, n, |i, j| {
        -0.5 * (d2[(i, j)] - row_mean[i] - row_mean[j] + grand_mean)
    });

    let eig = jacobi_eigen(&b, 1e-12, 100);
    let mut coords = Matrix::zeros(n, k);
    for c in 0..k {
        let lambda = eig.values[c];
        if lambda <= 0.0 {
            continue; // negative/zero component: contributes nothing
        }
        let s = lambda.sqrt();
        for i in 0..n {
            coords[(i, c)] = s * eig.vectors[(i, c)];
        }
    }
    Ok(coords)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::euclidean;

    fn pairwise(points: &[Vec<f64>]) -> Matrix {
        let n = points.len();
        Matrix::from_fn(n, n, |i, j| euclidean(&points[i], &points[j]))
    }

    #[test]
    fn recovers_euclidean_configuration() {
        let pts = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 2.0],
            vec![3.0, 1.0],
            vec![-1.0, -1.0],
        ];
        let d = pairwise(&pts);
        let x = classical_mds(&d, 2).unwrap();
        // MDS is unique only up to rotation/reflection/translation, so
        // compare reconstructed pairwise distances instead of coordinates.
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                let dij = euclidean(x.row(i), x.row(j));
                assert!(
                    (dij - d[(i, j)]).abs() < 1e-8,
                    "distance ({i},{j}): {dij} vs {}",
                    d[(i, j)]
                );
            }
        }
    }

    #[test]
    fn one_dimensional_line() {
        // Points on a line embed exactly in 1 dimension.
        let pts = vec![vec![0.0], vec![1.0], vec![5.0], vec![9.0]];
        let d = pairwise(&pts);
        let x = classical_mds(&d, 1).unwrap();
        for i in 0..4 {
            for j in 0..4 {
                let dij = (x[(i, 0)] - x[(j, 0)]).abs();
                assert!((dij - d[(i, j)]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn embedding_is_centered() {
        let pts = vec![vec![2.0, 3.0], vec![5.0, 7.0], vec![11.0, 13.0]];
        let x = classical_mds(&pairwise(&pts), 2).unwrap();
        for c in 0..2 {
            let mean: f64 = (0..3).map(|i| x[(i, c)]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-9);
        }
    }

    #[test]
    fn non_euclidean_distances_do_not_panic() {
        // A metric that is not Euclidean-embeddable in 2D: uniform distances
        // on 4 points work; add a violation of the Euclidean condition.
        let d = Matrix::from_rows(&[
            vec![0.0, 1.0, 1.0, 1.0],
            vec![1.0, 0.0, 1.0, 1.0],
            vec![1.0, 1.0, 0.0, 1.0],
            vec![1.0, 1.0, 1.0, 0.0],
        ]);
        let x = classical_mds(&d, 2).unwrap();
        assert_eq!(x.rows(), 4);
        assert_eq!(x.cols(), 2);
        assert!(x.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn rejects_bad_inputs() {
        assert_eq!(
            classical_mds(&Matrix::zeros(2, 3), 2),
            Err(MdsError::NotSquare)
        );
        assert_eq!(
            classical_mds(&Matrix::zeros(3, 3), 0),
            Err(MdsError::BadDimension)
        );
        assert_eq!(
            classical_mds(&Matrix::zeros(3, 3), 4),
            Err(MdsError::BadDimension)
        );
        let neg = Matrix::from_rows(&[vec![0.0, -1.0], vec![-1.0, 0.0]]);
        assert_eq!(classical_mds(&neg, 1), Err(MdsError::InvalidDistance));
    }

    #[test]
    fn identical_points_embed_to_same_location() {
        let d = Matrix::zeros(3, 3);
        let x = classical_mds(&d, 2).unwrap();
        assert!(x.max_abs() < 1e-9);
    }
}
