//! Dense row-major matrix.
//!
//! A deliberately small `f64` matrix type covering exactly the operations
//! the workspace needs: construction, indexing, transpose, products,
//! row/column views and a few structural helpers. Storage is a single
//! contiguous `Vec<f64>` in row-major order, which keeps the multiply
//! kernels cache-friendly for the modest sizes used here (MDS on at most
//! a few hundred bags, covariance factors in dimension ≤ 64).

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from a row-major data vector.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} != {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Build a matrix from nested row slices.
    ///
    /// # Panics
    /// Panics if the rows are ragged.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Build a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrow row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow row `i` as a slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copy column `j` into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "col index out of bounds");
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Raw row-major data slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: inner dimensions {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order streams through `other` row-by-row.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec: dimension mismatch");
        (0..self.rows)
            .map(|i| crate::vector::dot(self.row(i), x))
            .collect()
    }

    /// Element-wise sum `self + other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "add: shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "sub: shape mismatch"
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Scaled copy `alpha * self`.
    pub fn scaled(&self, alpha: f64) -> Matrix {
        let data = self.data.iter().map(|a| alpha * a).collect();
        Matrix::from_vec(self.rows, self.cols, data)
    }

    /// Maximum absolute entry; zero for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |m, &x| m.max(x.abs()))
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Whether the matrix is symmetric to within `tol` (absolute).
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert!(i.is_symmetric(0.0));
    }

    #[test]
    fn from_rows_round_trip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert_eq!(m.col(1), vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_ragged_panics() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0, 0.5], vec![0.0, 3.0, 9.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let v = a.matvec(&[1.0, 1.0]);
        assert_eq!(v, vec![3.0, 7.0]);
    }

    #[test]
    fn add_sub_scale() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![10.0, 20.0]]);
        assert_eq!(a.add(&b).as_slice(), &[11.0, 22.0]);
        assert_eq!(b.sub(&a).as_slice(), &[9.0, 18.0]);
        assert_eq!(a.scaled(3.0).as_slice(), &[3.0, 6.0]);
    }

    #[test]
    fn frobenius_and_max_abs() {
        let a = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, -4.0]]);
        assert!((a.frobenius() - 5.0).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn symmetry_check() {
        let s = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 5.0]]);
        assert!(s.is_symmetric(0.0));
        let ns = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.1, 5.0]]);
        assert!(!ns.is_symmetric(1e-3));
        assert!(ns.is_symmetric(0.2));
        let rect = Matrix::zeros(2, 3);
        assert!(!rect.is_symmetric(1.0));
    }

    #[test]
    fn from_fn_builds_expected() {
        let m = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(1, 1)], 11.0);
    }
}
