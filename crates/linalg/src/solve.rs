//! Dense linear solves (LU with partial pivoting).
//!
//! Used by the RuLSIF baseline (ridge-regularized kernel least squares)
//! and available to any substrate needing a small dense solve.

use crate::matrix::Matrix;

/// Failure modes of [`solve`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveError {
    /// Coefficient matrix is not square.
    NotSquare,
    /// Right-hand side length does not match.
    ShapeMismatch,
    /// A pivot underflowed: the matrix is singular to working precision.
    Singular,
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::NotSquare => write!(f, "solve: matrix must be square"),
            SolveError::ShapeMismatch => write!(f, "solve: rhs length mismatch"),
            SolveError::Singular => write!(f, "solve: matrix is singular"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Solve `A x = b` by LU decomposition with partial pivoting.
///
/// # Errors
/// See [`SolveError`].
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, SolveError> {
    if !a.is_square() {
        return Err(SolveError::NotSquare);
    }
    let n = a.rows();
    if b.len() != n {
        return Err(SolveError::ShapeMismatch);
    }
    let mut lu = a.clone();
    let mut x = b.to_vec();
    let mut perm: Vec<usize> = (0..n).collect();

    for col in 0..n {
        // Partial pivot: largest magnitude in this column at/below row.
        let mut pivot_row = col;
        let mut pivot_val = lu[(col, col)].abs();
        for r in (col + 1)..n {
            let v = lu[(r, col)].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < 1e-300 {
            return Err(SolveError::Singular);
        }
        if pivot_row != col {
            perm.swap(pivot_row, col);
            x.swap(pivot_row, col);
            for c in 0..n {
                let tmp = lu[(pivot_row, c)];
                lu[(pivot_row, c)] = lu[(col, c)];
                lu[(col, c)] = tmp;
            }
        }
        // Eliminate below.
        let pivot = lu[(col, col)];
        for r in (col + 1)..n {
            let factor = lu[(r, col)] / pivot;
            if factor == 0.0 {
                continue;
            }
            lu[(r, col)] = 0.0;
            for c in (col + 1)..n {
                let v = lu[(col, c)];
                lu[(r, c)] -= factor * v;
            }
            x[r] -= factor * x[col];
        }
    }

    // Back substitution.
    for col in (0..n).rev() {
        let mut acc = x[col];
        for c in (col + 1)..n {
            acc -= lu[(col, c)] * x[c];
        }
        x[col] = acc / lu[(col, col)];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solve() {
        let x = solve(&Matrix::identity(3), &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn known_2x2() {
        // [[2, 1], [1, 3]] x = [3, 5] -> x = (4/5, 7/5).
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = solve(&a, &[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-12);
        assert!((x[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn residual_is_small_on_random_system() {
        let n = 8;
        let a = Matrix::from_fn(n, n, |i, j| {
            ((i * 31 + j * 17 + 5) % 23) as f64 / 23.0 + if i == j { 2.0 } else { 0.0 }
        });
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let x = solve(&a, &b).unwrap();
        let ax = a.matvec(&x);
        for (r, bb) in ax.iter().zip(&b) {
            assert!((r - bb).abs() < 1e-9, "residual {}", (r - bb).abs());
        }
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(solve(&a, &[1.0, 2.0]), Err(SolveError::Singular));
    }

    #[test]
    fn shape_errors() {
        assert_eq!(
            solve(&Matrix::zeros(2, 3), &[1.0, 1.0]),
            Err(SolveError::NotSquare)
        );
        assert_eq!(
            solve(&Matrix::identity(2), &[1.0]),
            Err(SolveError::ShapeMismatch)
        );
    }
}
