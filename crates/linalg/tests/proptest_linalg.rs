//! Property-based tests for the linear-algebra substrate.

use linalg::{cholesky, classical_mds, jacobi_eigen, solve, Matrix};
use proptest::prelude::*;

/// Strategy: a random matrix with entries in [-3, 3].
fn random_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-3.0..3.0f64, n * n).prop_map(move |data| Matrix::from_vec(n, n, data))
}

/// Strategy: a random SPD matrix `B^T B + I`.
fn random_spd(n: usize) -> impl Strategy<Value = Matrix> {
    random_matrix(n).prop_map(move |b| b.transpose().matmul(&b).add(&Matrix::identity(n)))
}

/// Strategy: random planar points.
fn planar_points(n: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec((-10.0..10.0f64, -10.0..10.0f64), n..=n)
        .prop_map(|pts| pts.into_iter().map(|(x, y)| vec![x, y]).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Cholesky reconstructs: L L^T == A.
    #[test]
    fn cholesky_reconstructs(a in random_spd(4)) {
        let l = cholesky(&a).expect("SPD by construction");
        let rec = l.matmul(&l.transpose());
        prop_assert!(rec.sub(&a).max_abs() < 1e-8 * (1.0 + a.max_abs()));
    }

    /// Jacobi eigen: eigenvalue sum equals trace; eigenvectors orthonormal.
    #[test]
    fn eigen_trace_and_orthonormality(a in random_spd(4)) {
        let e = jacobi_eigen(&a, 1e-12, 100);
        let trace: f64 = (0..4).map(|i| a[(i, i)]).sum();
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-7 * (1.0 + trace.abs()));
        let vtv = e.vectors.transpose().matmul(&e.vectors);
        prop_assert!(vtv.sub(&Matrix::identity(4)).max_abs() < 1e-7);
    }

    /// SPD matrices have strictly positive eigenvalues.
    #[test]
    fn spd_eigenvalues_positive(a in random_spd(3)) {
        let e = jacobi_eigen(&a, 1e-12, 100);
        prop_assert!(e.values.iter().all(|&v| v > 0.0), "{:?}", e.values);
    }

    /// LU solve: residual of A x = b is tiny.
    #[test]
    fn solve_residual_small(a in random_spd(5), b in prop::collection::vec(-5.0..5.0f64, 5)) {
        let x = solve(&a, &b).expect("SPD is nonsingular");
        let ax = a.matvec(&x);
        for (r, bb) in ax.iter().zip(&b) {
            prop_assert!((r - bb).abs() < 1e-7 * (1.0 + bb.abs()));
        }
    }

    /// Classical MDS on planar points reconstructs all pairwise
    /// distances.
    #[test]
    fn mds_recovers_planar_configurations(pts in planar_points(6)) {
        let n = pts.len();
        let d = Matrix::from_fn(n, n, |i, j| {
            let dx = pts[i][0] - pts[j][0];
            let dy = pts[i][1] - pts[j][1];
            (dx * dx + dy * dy).sqrt()
        });
        let x = classical_mds(&d, 2).expect("valid distances");
        for i in 0..n {
            for j in 0..n {
                let dx = x[(i, 0)] - x[(j, 0)];
                let dy = x[(i, 1)] - x[(j, 1)];
                let dij = (dx * dx + dy * dy).sqrt();
                prop_assert!(
                    (dij - d[(i, j)]).abs() < 1e-6 * (1.0 + d[(i, j)]),
                    "pair ({i},{j}): {dij} vs {}", d[(i, j)]
                );
            }
        }
    }

    /// Matrix multiplication is associative.
    #[test]
    fn matmul_associative(a in random_matrix(3), b in random_matrix(3), c in random_matrix(3)) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.sub(&right).max_abs() < 1e-9 * (1.0 + left.max_abs()));
    }

    /// Transpose reverses multiplication: (AB)^T = B^T A^T.
    #[test]
    fn transpose_reverses_product(a in random_matrix(3), b in random_matrix(3)) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.sub(&rhs).max_abs() < 1e-12);
    }
}
