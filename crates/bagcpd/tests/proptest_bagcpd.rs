//! Property-based tests for the core detector's invariants.

use bagcpd::{
    bootstrap_ci, equal_weights, Bag, BootstrapConfig, Detector, DetectorConfig, EmdSolver,
    GroundMetric, ScoreKind, SignatureMethod, SolverScratch, TieredConfig, WindowScorer,
};
use emd::Signature;
use infoest::EstimatorConfig;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a window of 1-D signatures at given positions with 2-point
/// support (jittered so signatures never coincide).
fn window(len: usize) -> impl Strategy<Value = Vec<Signature>> {
    prop::collection::vec((-20.0..20.0f64, 0.1..3.0f64), len..=len).prop_map(|specs| {
        specs
            .iter()
            .enumerate()
            .map(|(i, &(pos, spread))| {
                // Deterministic per-index jitter keeps signatures distinct.
                let jitter = (i as f64 + 1.0) * 1e-3;
                Signature::new(
                    vec![vec![pos + jitter], vec![pos + spread + jitter]],
                    vec![1.0, 1.5],
                )
                .expect("valid signature")
            })
            .collect()
    })
}

fn scorer(sigs: &[Signature], tau: usize, tau_prime: usize) -> WindowScorer {
    WindowScorer::new(
        sigs,
        tau,
        tau_prime,
        &GroundMetric::Euclidean,
        EstimatorConfig::default(),
    )
    .expect("scorer builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Both scores are finite for arbitrary windows and weights.
    #[test]
    fn scores_always_finite(
        sigs in window(8),
        wr_raw in prop::collection::vec(0.05..5.0f64, 4),
        wt_raw in prop::collection::vec(0.05..5.0f64, 4),
    ) {
        let s = scorer(&sigs, 4, 4);
        let kl = s.score_kl(&wr_raw, &wt_raw);
        let lr = s.score_lr(&wr_raw, &wt_raw);
        prop_assert!(kl.is_finite(), "KL {kl}");
        prop_assert!(lr.is_finite(), "LR {lr}");
    }

    /// Scores are invariant to rescaling all the weights (they are
    /// normalized internally).
    #[test]
    fn scores_weight_scale_invariant(
        sigs in window(8),
        scale in 0.1..50.0f64,
    ) {
        let s = scorer(&sigs, 4, 4);
        let w = equal_weights(4);
        let w_scaled: Vec<f64> = w.iter().map(|x| x * scale).collect();
        let a = s.score_kl(&w, &w);
        let b = s.score_kl(&w_scaled, &w_scaled);
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    /// KL score is symmetric under exchanging the two (equal-size)
    /// windows.
    #[test]
    fn kl_symmetric_under_window_swap(sigs in window(8)) {
        let w = equal_weights(4);
        let forward = scorer(&sigs, 4, 4).score_kl(&w, &w);
        let mut swapped: Vec<Signature> = sigs[4..].to_vec();
        swapped.extend_from_slice(&sigs[..4]);
        let backward = scorer(&swapped, 4, 4).score_kl(&w, &w);
        prop_assert!((forward - backward).abs() < 1e-9, "{forward} vs {backward}");
    }

    /// Translating every signature leaves both scores unchanged (the
    /// EMD metric space is translation invariant).
    #[test]
    fn scores_translation_invariant(sigs in window(7), delta in -50.0..50.0f64) {
        let shifted: Vec<Signature> = sigs
            .iter()
            .map(|s| {
                Signature::new(
                    s.points().iter().map(|p| vec![p[0] + delta]).collect(),
                    s.weights().to_vec(),
                )
                .expect("valid")
            })
            .collect();
        let w3 = equal_weights(3);
        let w4 = equal_weights(4);
        let a = scorer(&sigs, 3, 4).score_kl(&w3, &w4);
        let b = scorer(&shifted, 3, 4).score_kl(&w3, &w4);
        prop_assert!((a - b).abs() < 1e-7, "{a} vs {b}");
    }

    /// Bootstrap CIs are ordered, finite, and contain the median
    /// replicate by construction.
    #[test]
    fn bootstrap_ci_well_formed(sigs in window(8), seed in 0u64..500) {
        let s = scorer(&sigs, 4, 4);
        let w = equal_weights(4);
        let mut rng = StdRng::seed_from_u64(seed);
        let ci = bootstrap_ci(
            &s,
            ScoreKind::SymmetrizedKl,
            &w,
            &w,
            &BootstrapConfig { replicates: 64, ..Default::default() },
            &mut rng,
        );
        prop_assert!(ci.lo.is_finite() && ci.up.is_finite());
        prop_assert!(ci.lo <= ci.up);
    }

    /// Larger alpha (lower confidence) never widens the interval.
    #[test]
    fn ci_width_monotone_in_alpha(sigs in window(8), seed in 0u64..200) {
        let s = scorer(&sigs, 4, 4);
        let w = equal_weights(4);
        let ci_at = |alpha: f64| {
            let mut rng = StdRng::seed_from_u64(seed);
            bootstrap_ci(
                &s,
                ScoreKind::SymmetrizedKl,
                &w,
                &w,
                &BootstrapConfig { replicates: 128, alpha, ..Default::default() },
                &mut rng,
            )
        };
        let tight = ci_at(0.5);
        let wide = ci_at(0.05);
        prop_assert!(wide.up - wide.lo >= tight.up - tight.lo - 1e-12);
    }

    /// Tiered exact mode is bit-identical to the exact solver through
    /// the whole pipeline: quantization, banded distances, scores,
    /// bootstrap CIs, and alert decisions.
    #[test]
    fn tiered_exact_mode_detection_is_bit_identical(
        levels in prop::collection::vec(-5.0..5.0f64, 10..=14),
        seed in 0u64..200,
    ) {
        let bags: Vec<Bag> = levels
            .iter()
            .map(|&lv| Bag::from_scalars((0..12).map(move |i| lv + i as f64 * 0.25)))
            .collect();
        let base = DetectorConfig {
            tau: 3,
            tau_prime: 3,
            signature: SignatureMethod::Histogram { width: 0.5 },
            bootstrap: BootstrapConfig { replicates: 32, ..Default::default() },
            ..Default::default()
        };
        let exact = Detector::new(DetectorConfig { solver: EmdSolver::Exact, ..base.clone() })
            .unwrap()
            .analyze(&bags, seed)
            .unwrap();
        let tiered = Detector::new(DetectorConfig {
            solver: EmdSolver::Tiered(TieredConfig::default()),
            ..base
        })
        .unwrap()
        .analyze(&bags, seed)
        .unwrap();
        prop_assert_eq!(exact, tiered);
    }

    /// Bounded-error mode stays within its epsilon of the exact value
    /// on arbitrary equal-mass signature pairs.
    #[test]
    fn tiered_bounded_mode_within_epsilon(
        sigs in window(2),
        eps in 0.001..1.0f64,
    ) {
        let metric = GroundMetric::Euclidean;
        let mut scratch = SolverScratch::new();
        let exact = EmdSolver::Exact
            .distance_with(&sigs[0], &sigs[1], &metric, &mut scratch)
            .unwrap();
        let bounded = EmdSolver::Tiered(TieredConfig { epsilon: Some(eps), ..Default::default() })
            .distance_with(&sigs[0], &sigs[1], &metric, &mut scratch)
            .unwrap();
        prop_assert!(
            (bounded - exact).abs() <= eps + 1e-6,
            "bounded {bounded} vs exact {exact}, eps {eps}"
        );
    }

    /// Exact-mode k-NN pruning is lossless: `nearest_with` under the
    /// tiered solver returns exactly the exact solver's neighbor set.
    #[test]
    fn tiered_nearest_matches_exact(sigs in window(10), k in 1usize..5) {
        let metric = GroundMetric::Euclidean;
        let (query, candidates) = sigs.split_first().unwrap();
        let mut scratch = SolverScratch::new();
        let mut exact_out = Vec::new();
        let mut tiered_out = Vec::new();
        EmdSolver::Exact
            .nearest_with(query, candidates, k, &metric, &mut scratch, &mut exact_out)
            .unwrap();
        EmdSolver::Tiered(TieredConfig::default())
            .nearest_with(query, candidates, k, &metric, &mut scratch, &mut tiered_out)
            .unwrap();
        prop_assert_eq!(exact_out, tiered_out);
    }
}
