//! Bayesian-bootstrap confidence intervals for change-point scores
//! (§4.2, Eqs. 19, 21–22).
//!
//! At each inspection point the window weights are resampled `T` times
//! from the Dirichlet posteriors
//! `{ψ_{t-τ}, …} ~ Dir(τ ψ_{t-τ}, …)` and `{ψ_t, …} ~ Dir(τ' ψ_t, …)`
//! (Appendix B; for equal weights these are the flat `Dir(1, …, 1)` of
//! Appendix A). The score is recomputed for each replicate — cheaply,
//! because the EMD matrix is fixed — and the `α/2` and `1-α/2` empirical
//! quantiles form the confidence interval.

use crate::score::{ScoreKind, WindowScorer};
use rand::Rng;
use rand::SeedableRng;
use stats::descriptive::quantile_sorted;
use stats::Dirichlet;

/// Configuration of the Bayesian bootstrap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapConfig {
    /// Number of bootstrap replicates `T`.
    pub replicates: usize,
    /// Significance level `α` (the CI covers `1 - α`).
    pub alpha: f64,
    /// Number of worker threads for replicate evaluation. `1` runs
    /// serially; values above 1 use `std::thread` scoped threads. Results
    /// are identical regardless (per-replicate RNG streams are derived
    /// from the master seed, not from thread scheduling).
    pub threads: usize,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        BootstrapConfig {
            replicates: 200,
            alpha: 0.05,
            threads: 1,
        }
    }
}

impl BootstrapConfig {
    /// Check parameters.
    ///
    /// # Errors
    /// Returns a description of the problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.replicates < 2 {
            return Err("bootstrap replicates must be >= 2".into());
        }
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err("alpha must be in (0, 1)".into());
        }
        if self.threads == 0 {
            return Err("threads must be >= 1".into());
        }
        Ok(())
    }
}

/// A change-point score with its bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound `θ_lo` (the `α/2` quantile).
    pub lo: f64,
    /// Upper bound `θ_up` (the `1 - α/2` quantile).
    pub up: f64,
}

/// Reusable buffers for bootstrap replicate evaluation: per-replicate
/// seeds, resampled Dirichlet weights, and the replicate score
/// accumulator.
///
/// One scratch reused across inspection points — and across *streams*,
/// as the worker tick in `crates/stream` does — makes the bootstrap hot
/// path allocation-free after warm-up. Results are bit-identical to the
/// allocating [`bootstrap_ci`] path: the scratch changes where replicate
/// values are stored, never how they are drawn.
#[derive(Debug, Clone, Default)]
pub struct BootstrapScratch {
    /// Per-replicate RNG seeds.
    seeds: Vec<u64>,
    /// Replicate scores (sorted in place for the quantiles).
    scores: Vec<f64>,
    /// Dirichlet concentrations of the reference-window posterior.
    alpha_ref: Vec<f64>,
    /// Dirichlet concentrations of the test-window posterior.
    alpha_test: Vec<f64>,
    /// Per-replicate RNG streams for the batched draws.
    rngs: Vec<rand::rngs::StdRng>,
    /// Resampled reference-window weights, one row per replicate.
    weights_ref: Vec<f64>,
    /// Resampled test-window weights, one row per replicate.
    weights_test: Vec<f64>,
}

impl BootstrapScratch {
    /// Empty scratch; buffers grow to the bootstrap's shape on first use.
    pub fn new() -> Self {
        BootstrapScratch::default()
    }
}

/// Compute the bootstrap CI of the score at one inspection point.
///
/// `ref_weights` / `test_weights` are the nominal window weights ψ; the
/// Dirichlet posteriors of Appendix B are parameterized from them
/// (`Dir(n·ψ)`), which reduces to the flat Dirichlet for equal weights.
///
/// The base RNG only seeds the per-replicate streams, so results are
/// reproducible and independent of `cfg.threads`.
pub fn bootstrap_ci(
    scorer: &WindowScorer,
    kind: ScoreKind,
    ref_weights: &[f64],
    test_weights: &[f64],
    cfg: &BootstrapConfig,
    rng: &mut impl Rng,
) -> ConfidenceInterval {
    bootstrap_ci_with(
        scorer,
        kind,
        ref_weights,
        test_weights,
        cfg,
        rng,
        &mut BootstrapScratch::new(),
    )
}

/// As [`bootstrap_ci`], but drawing every buffer from `scratch` instead
/// of allocating — the form the per-tick batched evaluation in
/// `crates/stream` uses, with one scratch shared across all streams of a
/// worker. Bit-identical to [`bootstrap_ci`].
pub fn bootstrap_ci_with(
    scorer: &WindowScorer,
    kind: ScoreKind,
    ref_weights: &[f64],
    test_weights: &[f64],
    cfg: &BootstrapConfig,
    rng: &mut impl Rng,
    scratch: &mut BootstrapScratch,
) -> ConfidenceInterval {
    cfg.validate().expect("invalid bootstrap config");
    // The Appendix-B posteriors are fully described by their
    // concentration vectors; keep them in scratch instead of building
    // `Dirichlet` values (this function runs once per inspection point
    // on the streaming hot path and must not allocate once warm).
    Dirichlet::alpha_from_weights(ref_weights, &mut scratch.alpha_ref);
    Dirichlet::alpha_from_weights(test_weights, &mut scratch.alpha_test);

    // Derive one seed per replicate up front (thread-count independent).
    scratch.seeds.clear();
    scratch
        .seeds
        .extend((0..cfg.replicates).map(|_| rng.gen::<u64>()));

    scratch.scores.clear();
    if cfg.threads <= 1 {
        replicate_batch_into(
            scorer,
            kind,
            &scratch.alpha_ref,
            &scratch.alpha_test,
            &scratch.seeds,
            &mut scratch.rngs,
            &mut scratch.weights_ref,
            &mut scratch.weights_test,
            &mut scratch.scores,
        );
    } else {
        let seeds = &scratch.seeds;
        let scores = &mut scratch.scores;
        let chunk = seeds.len().div_ceil(cfg.threads);
        let (alpha_ref, alpha_test) = (&scratch.alpha_ref, &scratch.alpha_test);
        std::thread::scope(|s| {
            let handles: Vec<_> = seeds
                .chunks(chunk)
                .map(|chunk_seeds| {
                    s.spawn(move || {
                        replicate_range(scorer, kind, alpha_ref, alpha_test, chunk_seeds)
                    })
                })
                // lint:allow(NO_ALLOC_HOT_PATH, one handle per thread in the explicitly multi-threaded branch; the threads<=1 streaming path never reaches this)
                .collect();
            for h in handles {
                scores.extend(h.join().expect("bootstrap worker panicked"));
            }
        });
    }

    // Unstable sort: no merge buffer, and equal keys are identical f64
    // bit patterns, so the sorted sequence (and thus the quantiles) is
    // exactly what the stable sort produced.
    scratch
        .scores
        .sort_unstable_by(|a, b| a.partial_cmp(b).expect("scores are finite"));
    ConfidenceInterval {
        lo: quantile_sorted(&scratch.scores, cfg.alpha / 2.0),
        up: quantile_sorted(&scratch.scores, 1.0 - cfg.alpha / 2.0),
    }
}

/// Evaluate all replicates with batched Dirichlet draws: all weight rows
/// are filled in two component-major sweeps (one per window) before any
/// score runs, instead of re-walking the alpha vectors per replicate.
/// Rows are bit-identical to [`replicate_into`]'s per-replicate draws —
/// each replicate's RNG sees the same stream — so the scores (and the
/// CI) are unchanged.
#[allow(clippy::too_many_arguments)]
fn replicate_batch_into(
    scorer: &WindowScorer,
    kind: ScoreKind,
    alpha_ref: &[f64],
    alpha_test: &[f64],
    seeds: &[u64],
    rngs: &mut Vec<rand::rngs::StdRng>,
    wr_rows: &mut Vec<f64>,
    wt_rows: &mut Vec<f64>,
    out: &mut Vec<f64>,
) {
    let nr = alpha_ref.len();
    let nt = alpha_test.len();
    rngs.clear();
    rngs.extend(
        seeds
            .iter()
            .map(|&seed| rand::rngs::StdRng::seed_from_u64(seed)),
    );
    wr_rows.clear();
    wr_rows.resize(seeds.len() * nr, 0.0);
    wt_rows.clear();
    wt_rows.resize(seeds.len() * nt, 0.0);
    // Reference rows first, then test rows, continuing the same RNGs —
    // the per-replicate draw order of `replicate_into`.
    Dirichlet::sample_alpha_batch_into(alpha_ref, rngs, wr_rows);
    Dirichlet::sample_alpha_batch_into(alpha_test, rngs, wt_rows);
    out.reserve(seeds.len());
    for (wr, wt) in wr_rows.chunks(nr).zip(wt_rows.chunks(nt)) {
        out.push(scorer.score(kind, wr, wt));
    }
}

/// Evaluate one batch of bootstrap replicates into caller buffers.
#[allow(clippy::too_many_arguments)]
fn replicate_into(
    scorer: &WindowScorer,
    kind: ScoreKind,
    alpha_ref: &[f64],
    alpha_test: &[f64],
    seeds: &[u64],
    wr: &mut Vec<f64>,
    wt: &mut Vec<f64>,
    out: &mut Vec<f64>,
) {
    wr.clear();
    wr.resize(alpha_ref.len(), 0.0);
    wt.clear();
    wt.resize(alpha_test.len(), 0.0);
    out.reserve(seeds.len());
    for &seed in seeds {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        Dirichlet::sample_alpha_into(alpha_ref, &mut rng, wr);
        Dirichlet::sample_alpha_into(alpha_test, &mut rng, wt);
        out.push(scorer.score(kind, wr, wt));
    }
}

/// Evaluate one batch of bootstrap replicates (thread-pool path: each
/// worker owns its buffers).
fn replicate_range(
    scorer: &WindowScorer,
    kind: ScoreKind,
    alpha_ref: &[f64],
    alpha_test: &[f64],
    seeds: &[u64],
) -> Vec<f64> {
    let mut out = Vec::with_capacity(seeds.len());
    let mut wr = Vec::new();
    let mut wt = Vec::new();
    replicate_into(
        scorer, kind, alpha_ref, alpha_test, seeds, &mut wr, &mut wt, &mut out,
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature_builder::GroundMetric;
    use crate::window::equal_weights;
    use emd::Signature;
    use infoest::EstimatorConfig;
    use rand::rngs::StdRng;

    fn scorer(positions: &[f64], tau: usize, tau_prime: usize) -> WindowScorer {
        let sigs: Vec<Signature> = positions
            .iter()
            .map(|&p| Signature::new(vec![vec![p], vec![p + 0.3]], vec![1.0, 1.0]).unwrap())
            .collect();
        WindowScorer::new(
            &sigs,
            tau,
            tau_prime,
            &GroundMetric::Euclidean,
            EstimatorConfig::default(),
        )
        .unwrap()
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn ci_is_ordered_and_finite() {
        let s = scorer(&[0.0, 0.2, 0.4, 5.0, 5.2, 5.4], 3, 3);
        let w = equal_weights(3);
        let ci = bootstrap_ci(
            &s,
            ScoreKind::SymmetrizedKl,
            &w,
            &w,
            &BootstrapConfig::default(),
            &mut rng(1),
        );
        assert!(ci.lo.is_finite() && ci.up.is_finite());
        assert!(ci.lo <= ci.up);
    }

    #[test]
    fn ci_brackets_point_score() {
        // The nominal-weight score should normally lie inside a 95% CI.
        let s = scorer(&[0.0, 0.2, 0.4, 3.0, 3.2, 3.4], 3, 3);
        let w = equal_weights(3);
        let point = s.score_kl(&w, &w);
        let ci = bootstrap_ci(
            &s,
            ScoreKind::SymmetrizedKl,
            &w,
            &w,
            &BootstrapConfig {
                replicates: 500,
                ..Default::default()
            },
            &mut rng(2),
        );
        assert!(
            ci.lo <= point && point <= ci.up,
            "point {point} outside CI [{}, {}]",
            ci.lo,
            ci.up
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let s = scorer(&[0.0, 0.1, 0.2, 1.0, 1.1, 1.2], 3, 3);
        let w = equal_weights(3);
        let cfg = BootstrapConfig::default();
        let a = bootstrap_ci(&s, ScoreKind::SymmetrizedKl, &w, &w, &cfg, &mut rng(7));
        let b = bootstrap_ci(&s, ScoreKind::SymmetrizedKl, &w, &w, &cfg, &mut rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_serial() {
        let s = scorer(&[0.0, 0.1, 0.2, 1.0, 1.1, 1.2], 3, 3);
        let w = equal_weights(3);
        let serial = bootstrap_ci(
            &s,
            ScoreKind::SymmetrizedKl,
            &w,
            &w,
            &BootstrapConfig {
                threads: 1,
                ..Default::default()
            },
            &mut rng(11),
        );
        let parallel = bootstrap_ci(
            &s,
            ScoreKind::SymmetrizedKl,
            &w,
            &w,
            &BootstrapConfig {
                threads: 4,
                ..Default::default()
            },
            &mut rng(11),
        );
        assert_eq!(serial, parallel);
    }

    #[test]
    fn reused_scratch_is_bit_identical_across_shapes() {
        // One scratch driven across inspection points of different
        // window shapes (as a stream worker reuses it across streams)
        // must reproduce the allocating path exactly.
        let mut scratch = BootstrapScratch::new();
        let cfg = BootstrapConfig::default();
        for (tau, tau_prime, seed) in [(3, 3, 7u64), (2, 4, 8), (4, 2, 9), (3, 3, 10)] {
            let positions: Vec<f64> = (0..tau + tau_prime).map(|i| i as f64 * 0.4).collect();
            let s = scorer(&positions, tau, tau_prime);
            let (wr, wt) = (equal_weights(tau), equal_weights(tau_prime));
            let fresh = bootstrap_ci(&s, ScoreKind::SymmetrizedKl, &wr, &wt, &cfg, &mut rng(seed));
            let reused = bootstrap_ci_with(
                &s,
                ScoreKind::SymmetrizedKl,
                &wr,
                &wt,
                &cfg,
                &mut rng(seed),
                &mut scratch,
            );
            assert_eq!(fresh, reused, "tau {tau} tau' {tau_prime}");
        }
    }

    #[test]
    fn batched_replicates_match_per_replicate_draws_bitwise() {
        let s = scorer(&[0.0, 0.3, 0.6, 2.0, 2.3, 2.6], 3, 3);
        let (wr, wt) = (equal_weights(3), equal_weights(3));
        let mut alpha_ref = Vec::new();
        let mut alpha_test = Vec::new();
        Dirichlet::alpha_from_weights(&wr, &mut alpha_ref);
        Dirichlet::alpha_from_weights(&wt, &mut alpha_test);
        let seeds: Vec<u64> = (0..64).map(|i| 1000 + i * 17).collect();

        let per_replicate = replicate_range(
            &s,
            ScoreKind::SymmetrizedKl,
            &alpha_ref,
            &alpha_test,
            &seeds,
        );
        let mut batched = Vec::new();
        replicate_batch_into(
            &s,
            ScoreKind::SymmetrizedKl,
            &alpha_ref,
            &alpha_test,
            &seeds,
            &mut Vec::new(),
            &mut Vec::new(),
            &mut Vec::new(),
            &mut batched,
        );
        assert_eq!(per_replicate.len(), batched.len());
        for (i, (a, b)) in per_replicate.iter().zip(&batched).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "replicate {i}");
        }
    }

    #[test]
    fn wider_alpha_gives_narrower_interval() {
        let s = scorer(&[0.0, 0.5, 1.0, 2.0, 2.5, 3.0], 3, 3);
        let w = equal_weights(3);
        let narrow = bootstrap_ci(
            &s,
            ScoreKind::SymmetrizedKl,
            &w,
            &w,
            &BootstrapConfig {
                alpha: 0.5,
                replicates: 400,
                ..Default::default()
            },
            &mut rng(3),
        );
        let wide = bootstrap_ci(
            &s,
            ScoreKind::SymmetrizedKl,
            &w,
            &w,
            &BootstrapConfig {
                alpha: 0.05,
                replicates: 400,
                ..Default::default()
            },
            &mut rng(3),
        );
        assert!(wide.up - wide.lo >= narrow.up - narrow.lo);
    }

    #[test]
    fn lr_score_bootstraps_too() {
        let s = scorer(&[0.0, 0.1, 0.2, 4.0, 4.1, 4.2], 3, 3);
        let w = equal_weights(3);
        let ci = bootstrap_ci(
            &s,
            ScoreKind::LikelihoodRatio,
            &w,
            &w,
            &BootstrapConfig::default(),
            &mut rng(5),
        );
        assert!(ci.lo <= ci.up);
    }

    #[test]
    fn config_validation() {
        assert!(BootstrapConfig {
            replicates: 1,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(BootstrapConfig {
            alpha: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(BootstrapConfig {
            threads: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(BootstrapConfig::default().validate().is_ok());
    }
}
