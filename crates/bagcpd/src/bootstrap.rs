//! Bayesian-bootstrap confidence intervals for change-point scores
//! (§4.2, Eqs. 19, 21–22).
//!
//! At each inspection point the window weights are resampled `T` times
//! from the Dirichlet posteriors
//! `{ψ_{t-τ}, …} ~ Dir(τ ψ_{t-τ}, …)` and `{ψ_t, …} ~ Dir(τ' ψ_t, …)`
//! (Appendix B; for equal weights these are the flat `Dir(1, …, 1)` of
//! Appendix A). The score is recomputed for each replicate — cheaply,
//! because the EMD matrix is fixed — and the `α/2` and `1-α/2` empirical
//! quantiles form the confidence interval.

use crate::score::{ScoreKind, WindowScorer};
use rand::Rng;
use rand::SeedableRng;
use stats::descriptive::quantile_sorted;
use stats::Dirichlet;

/// Configuration of the Bayesian bootstrap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BootstrapConfig {
    /// Number of bootstrap replicates `T`.
    pub replicates: usize,
    /// Significance level `α` (the CI covers `1 - α`).
    pub alpha: f64,
    /// Number of worker threads for replicate evaluation. `1` runs
    /// serially; values above 1 use `std::thread` scoped threads. Results
    /// are identical regardless (per-replicate RNG streams are derived
    /// from the master seed, not from thread scheduling).
    pub threads: usize,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        BootstrapConfig {
            replicates: 200,
            alpha: 0.05,
            threads: 1,
        }
    }
}

impl BootstrapConfig {
    /// Check parameters.
    ///
    /// # Errors
    /// Returns a description of the problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.replicates < 2 {
            return Err("bootstrap replicates must be >= 2".into());
        }
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err("alpha must be in (0, 1)".into());
        }
        if self.threads == 0 {
            return Err("threads must be >= 1".into());
        }
        Ok(())
    }
}

/// A change-point score with its bootstrap confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Lower bound `θ_lo` (the `α/2` quantile).
    pub lo: f64,
    /// Upper bound `θ_up` (the `1 - α/2` quantile).
    pub up: f64,
}

/// Compute the bootstrap CI of the score at one inspection point.
///
/// `ref_weights` / `test_weights` are the nominal window weights ψ; the
/// Dirichlet posteriors of Appendix B are parameterized from them
/// (`Dir(n·ψ)`), which reduces to the flat Dirichlet for equal weights.
///
/// The base RNG only seeds the per-replicate streams, so results are
/// reproducible and independent of `cfg.threads`.
pub fn bootstrap_ci(
    scorer: &WindowScorer,
    kind: ScoreKind,
    ref_weights: &[f64],
    test_weights: &[f64],
    cfg: &BootstrapConfig,
    rng: &mut impl Rng,
) -> ConfidenceInterval {
    cfg.validate().expect("invalid bootstrap config");
    let dir_ref = Dirichlet::from_weights(ref_weights);
    let dir_test = Dirichlet::from_weights(test_weights);

    // Derive one seed per replicate up front (thread-count independent).
    let seeds: Vec<u64> = (0..cfg.replicates).map(|_| rng.gen()).collect();

    let mut scores = if cfg.threads <= 1 {
        replicate_range(scorer, kind, &dir_ref, &dir_test, &seeds)
    } else {
        let chunk = seeds.len().div_ceil(cfg.threads);
        let mut results: Vec<Vec<f64>> = Vec::new();
        let (dir_ref, dir_test) = (&dir_ref, &dir_test);
        std::thread::scope(|s| {
            let handles: Vec<_> = seeds
                .chunks(chunk)
                .map(|chunk_seeds| {
                    s.spawn(move || replicate_range(scorer, kind, dir_ref, dir_test, chunk_seeds))
                })
                .collect();
            for h in handles {
                results.push(h.join().expect("bootstrap worker panicked"));
            }
        });
        results.into_iter().flatten().collect()
    };

    scores.sort_by(|a, b| a.partial_cmp(b).expect("scores are finite"));
    ConfidenceInterval {
        lo: quantile_sorted(&scores, cfg.alpha / 2.0),
        up: quantile_sorted(&scores, 1.0 - cfg.alpha / 2.0),
    }
}

/// Evaluate one batch of bootstrap replicates.
fn replicate_range(
    scorer: &WindowScorer,
    kind: ScoreKind,
    dir_ref: &Dirichlet,
    dir_test: &Dirichlet,
    seeds: &[u64],
) -> Vec<f64> {
    let mut out = Vec::with_capacity(seeds.len());
    let mut wr = vec![0.0; dir_ref.dim()];
    let mut wt = vec![0.0; dir_test.dim()];
    for &seed in seeds {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        dir_ref.sample_into(&mut rng, &mut wr);
        dir_test.sample_into(&mut rng, &mut wt);
        out.push(scorer.score(kind, &wr, &wt));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature_builder::GroundMetric;
    use crate::window::equal_weights;
    use emd::Signature;
    use infoest::EstimatorConfig;
    use rand::rngs::StdRng;

    fn scorer(positions: &[f64], tau: usize, tau_prime: usize) -> WindowScorer {
        let sigs: Vec<Signature> = positions
            .iter()
            .map(|&p| Signature::new(vec![vec![p], vec![p + 0.3]], vec![1.0, 1.0]).unwrap())
            .collect();
        WindowScorer::new(
            &sigs,
            tau,
            tau_prime,
            &GroundMetric::Euclidean,
            EstimatorConfig::default(),
        )
        .unwrap()
    }

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    #[test]
    fn ci_is_ordered_and_finite() {
        let s = scorer(&[0.0, 0.2, 0.4, 5.0, 5.2, 5.4], 3, 3);
        let w = equal_weights(3);
        let ci = bootstrap_ci(
            &s,
            ScoreKind::SymmetrizedKl,
            &w,
            &w,
            &BootstrapConfig::default(),
            &mut rng(1),
        );
        assert!(ci.lo.is_finite() && ci.up.is_finite());
        assert!(ci.lo <= ci.up);
    }

    #[test]
    fn ci_brackets_point_score() {
        // The nominal-weight score should normally lie inside a 95% CI.
        let s = scorer(&[0.0, 0.2, 0.4, 3.0, 3.2, 3.4], 3, 3);
        let w = equal_weights(3);
        let point = s.score_kl(&w, &w);
        let ci = bootstrap_ci(
            &s,
            ScoreKind::SymmetrizedKl,
            &w,
            &w,
            &BootstrapConfig {
                replicates: 500,
                ..Default::default()
            },
            &mut rng(2),
        );
        assert!(
            ci.lo <= point && point <= ci.up,
            "point {point} outside CI [{}, {}]",
            ci.lo,
            ci.up
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let s = scorer(&[0.0, 0.1, 0.2, 1.0, 1.1, 1.2], 3, 3);
        let w = equal_weights(3);
        let cfg = BootstrapConfig::default();
        let a = bootstrap_ci(&s, ScoreKind::SymmetrizedKl, &w, &w, &cfg, &mut rng(7));
        let b = bootstrap_ci(&s, ScoreKind::SymmetrizedKl, &w, &w, &cfg, &mut rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_matches_serial() {
        let s = scorer(&[0.0, 0.1, 0.2, 1.0, 1.1, 1.2], 3, 3);
        let w = equal_weights(3);
        let serial = bootstrap_ci(
            &s,
            ScoreKind::SymmetrizedKl,
            &w,
            &w,
            &BootstrapConfig {
                threads: 1,
                ..Default::default()
            },
            &mut rng(11),
        );
        let parallel = bootstrap_ci(
            &s,
            ScoreKind::SymmetrizedKl,
            &w,
            &w,
            &BootstrapConfig {
                threads: 4,
                ..Default::default()
            },
            &mut rng(11),
        );
        assert_eq!(serial, parallel);
    }

    #[test]
    fn wider_alpha_gives_narrower_interval() {
        let s = scorer(&[0.0, 0.5, 1.0, 2.0, 2.5, 3.0], 3, 3);
        let w = equal_weights(3);
        let narrow = bootstrap_ci(
            &s,
            ScoreKind::SymmetrizedKl,
            &w,
            &w,
            &BootstrapConfig {
                alpha: 0.5,
                replicates: 400,
                ..Default::default()
            },
            &mut rng(3),
        );
        let wide = bootstrap_ci(
            &s,
            ScoreKind::SymmetrizedKl,
            &w,
            &w,
            &BootstrapConfig {
                alpha: 0.05,
                replicates: 400,
                ..Default::default()
            },
            &mut rng(3),
        );
        assert!(wide.up - wide.lo >= narrow.up - narrow.lo);
    }

    #[test]
    fn lr_score_bootstraps_too() {
        let s = scorer(&[0.0, 0.1, 0.2, 4.0, 4.1, 4.2], 3, 3);
        let w = equal_weights(3);
        let ci = bootstrap_ci(
            &s,
            ScoreKind::LikelihoodRatio,
            &w,
            &w,
            &BootstrapConfig::default(),
            &mut rng(5),
        );
        assert!(ci.lo <= ci.up);
    }

    #[test]
    fn config_validation() {
        assert!(BootstrapConfig {
            replicates: 1,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(BootstrapConfig {
            alpha: 0.0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(BootstrapConfig {
            threads: 0,
            ..Default::default()
        }
        .validate()
        .is_err());
        assert!(BootstrapConfig::default().validate().is_ok());
    }
}
