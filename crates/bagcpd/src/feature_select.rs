//! Online feature selection — the future-work extension sketched in §6
//! of the paper.
//!
//! "It might often occur that only a couple of dimensions of x are
//! relevant to changes, while the other features are completely
//! irrelevant. […] Using data that have the class labels ('change' or
//! 'no change') for each time step, […] we could think of learning a
//! mapping and apply it on all x before constructing signatures."
//!
//! This module implements that idea as a diagonal metric learner trained
//! with exponentiated-gradient updates: each dimension keeps a positive
//! weight; when a labeled *change* arrives, dimensions whose per-
//! dimension change-point score was high are up-weighted, and on labeled
//! *no-change* steps high-scoring (false-alarming) dimensions are
//! down-weighted. The learned weights rescale bag coordinates before
//! signature construction, sharpening the EMD toward the informative
//! dimensions.

use crate::bag::Bag;
use crate::detector::Detector;
use crate::error::DetectError;

/// Online diagonal feature selector.
///
/// Each dimension's change-point scores are standardized against that
/// dimension's *own running history* (EWMA mean/variance): what counts
/// as evidence is a score unusual *for that dimension*, not a score
/// higher than the other dimensions' (different features have wildly
/// different score scales).
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineFeatureSelector {
    weights: Vec<f64>,
    learning_rate: f64,
    /// EWMA mean of each dimension's scores.
    run_mean: Vec<f64>,
    /// EWMA variance of each dimension's scores.
    run_var: Vec<f64>,
    /// Observations consumed (for warm-up).
    seen: usize,
    /// EWMA decay for the running statistics.
    decay: f64,
    /// Observations before weight updates start.
    warmup: usize,
}

impl OnlineFeatureSelector {
    /// Uniform selector over `dim` features.
    ///
    /// # Panics
    /// Panics if `dim == 0` or the learning rate is not finite and
    /// positive.
    pub fn new(dim: usize, learning_rate: f64) -> Self {
        assert!(dim > 0, "feature selector: dim must be >= 1");
        assert!(
            learning_rate.is_finite() && learning_rate > 0.0,
            "feature selector: learning rate must be > 0"
        );
        OnlineFeatureSelector {
            weights: vec![1.0; dim],
            learning_rate,
            run_mean: vec![0.0; dim],
            run_var: vec![1.0; dim],
            seen: 0,
            decay: 0.2,
            warmup: 3,
        }
    }

    /// Current per-dimension weights (mean normalized to 1).
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of features.
    pub fn dim(&self) -> usize {
        self.weights.len()
    }

    /// Consume one labeled inspection point: the per-dimension
    /// change-point scores observed there, plus whether a change truly
    /// occurred. Exponentiated-gradient update, weights renormalized to
    /// mean 1.
    ///
    /// # Panics
    /// Panics if `scores.len() != self.dim()`.
    pub fn observe(&mut self, scores: &[f64], is_change: bool) {
        assert_eq!(scores.len(), self.dim(), "observe: score dim mismatch");
        assert!(
            scores.iter().all(|s| s.is_finite()),
            "observe: scores must be finite"
        );
        // Self-standardized evidence: z_c compares this dimension's score
        // against its own EWMA history, so only *unusual* scores move the
        // weight. During warm-up only the statistics are primed.
        if self.seen >= self.warmup {
            let sign = if is_change { 1.0 } else { -1.0 };
            #[allow(clippy::needless_range_loop)] // c indexes three parallel vectors
            for c in 0..self.weights.len() {
                let z = ((scores[c] - self.run_mean[c]) / self.run_var[c].sqrt().max(1e-9))
                    .clamp(-2.0, 2.0);
                // Only positive surprise is evidence either way: a score
                // *below* a dimension's baseline says nothing about
                // change relevance.
                let evidence = z.max(0.0);
                self.weights[c] *= (sign * self.learning_rate * evidence).exp();
            }
            // Renormalize to mean 1 with a floor so no dimension dies.
            let mean: f64 = self.weights.iter().sum::<f64>() / self.weights.len() as f64;
            for w in &mut self.weights {
                *w = (*w / mean).max(1e-3);
            }
        }
        // Update the per-dimension running statistics. Change steps are
        // excluded so the "normal" baseline is not polluted by true
        // positives (the warm-up always updates).
        if !is_change || self.seen < self.warmup {
            let rho = if self.seen < self.warmup {
                1.0 / (self.seen + 1) as f64 // flat average while priming
            } else {
                self.decay
            };
            #[allow(clippy::needless_range_loop)] // c indexes three parallel vectors
            for c in 0..self.weights.len() {
                let delta = scores[c] - self.run_mean[c];
                self.run_mean[c] += rho * delta;
                self.run_var[c] = (1.0 - rho) * (self.run_var[c] + rho * delta * delta);
            }
        }
        self.seen += 1;
    }

    /// Rescale a bag's coordinates by the learned weights.
    ///
    /// # Panics
    /// Panics if the bag dimension disagrees with the selector.
    pub fn transform_bag(&self, bag: &Bag) -> Bag {
        assert_eq!(bag.dim(), self.dim(), "transform_bag: dim mismatch");
        let points: Vec<Vec<f64>> = bag
            .points()
            .iter()
            .map(|p| p.iter().zip(&self.weights).map(|(x, w)| x * w).collect())
            .collect();
        Bag::new(points)
    }

    /// Rescale a whole sequence.
    pub fn transform_sequence(&self, bags: &[Bag]) -> Vec<Bag> {
        bags.iter().map(|b| self.transform_bag(b)).collect()
    }
}

/// Per-dimension change-point score series: runs the detector on each
/// coordinate projection of the bags independently. Returns
/// `series[dim]` = `(t, score)` pairs.
///
/// This is the training signal for [`OnlineFeatureSelector::observe`]:
/// at a labeled time step `t`, feed it the column of scores across
/// dimensions.
///
/// # Errors
/// As [`Detector::score_series`].
pub fn per_dimension_scores(
    detector: &Detector,
    bags: &[Bag],
    seed: u64,
) -> Result<Vec<Vec<(usize, f64)>>, DetectError> {
    if bags.is_empty() {
        return Ok(Vec::new());
    }
    let dim = bags[0].dim();
    let mut out = Vec::with_capacity(dim);
    for c in 0..dim {
        let projected: Vec<Bag> = bags
            .iter()
            .map(|b| Bag::new(b.points().iter().map(|p| vec![p[c]]).collect()))
            .collect();
        out.push(detector.score_series(&projected, seed ^ (c as u64) << 32)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::DetectorConfig;
    use crate::signature_builder::SignatureMethod;

    /// 3-D bags where only dimension 0 changes at `change_at`; dims 1-2
    /// are stationary noise.
    fn bags_with_informative_dim(n: usize, change_at: usize) -> Vec<Bag> {
        (0..n)
            .map(|t| {
                let level = if t < change_at { 0.0 } else { 6.0 };
                Bag::new(
                    (0..50)
                        .map(|i| {
                            let noise = ((i * 13 + t * 7) % 11) as f64 * 0.1;
                            vec![
                                level + noise,
                                ((i * 29 + t * 3) % 13) as f64 * 0.1,
                                ((i * 31 + t * 5) % 7) as f64 * 0.1,
                            ]
                        })
                        .collect(),
                )
            })
            .collect()
    }

    fn detector() -> Detector {
        Detector::new(DetectorConfig {
            tau: 4,
            tau_prime: 4,
            signature: SignatureMethod::Histogram { width: 0.5 },
            ..DetectorConfig::default()
        })
        .expect("valid config")
    }

    #[test]
    fn learns_the_informative_dimension() {
        let bags = bags_with_informative_dim(24, 12);
        let det = detector();
        let series = per_dimension_scores(&det, &bags, 3).expect("per-dim scores");
        assert_eq!(series.len(), 3);

        let mut sel = OnlineFeatureSelector::new(3, 0.5);
        // Train over the labeled inspection points; truth: change near
        // t = 12. Points whose windows straddle the change (elevated
        // scores, but not the change itself) are skipped, the standard
        // practice with windowed labels.
        for (idx, &(t, _)) in series[0].iter().enumerate() {
            let gap = (t as i64 - 12).unsigned_abs();
            if (2..=4).contains(&gap) {
                continue;
            }
            let scores: Vec<f64> = series.iter().map(|s| s[idx].1).collect();
            sel.observe(&scores, gap <= 1);
        }
        let w = sel.weights();
        assert!(
            w[0] > w[1] && w[0] > w[2],
            "dimension 0 should dominate: {w:?}"
        );
    }

    #[test]
    fn transform_scales_coordinates() {
        let mut sel = OnlineFeatureSelector::new(2, 0.3);
        // Prime both dimensions' baselines at zero, then show a change
        // where only dim 0 spikes above its baseline.
        for _ in 0..5 {
            sel.observe(&[0.0, 0.0], false);
        }
        for _ in 0..5 {
            sel.observe(&[5.0, 0.0], true);
        }
        let bag = Bag::new(vec![vec![1.0, 1.0]]);
        let tb = sel.transform_bag(&bag);
        assert!(tb.points()[0][0] > tb.points()[0][1]);
        // Weight mean stays 1, so total scale is preserved.
        let mean: f64 = sel.weights().iter().sum::<f64>() / 2.0;
        assert!((mean - 1.0).abs() < 0.51, "mean weight {mean}");
    }

    #[test]
    fn no_change_observations_suppress_false_alarming_dims() {
        let mut sel = OnlineFeatureSelector::new(2, 0.4);
        // Prime at zero; then dim 1 repeatedly spikes with no true
        // change: a false-alarmer that must shrink.
        for _ in 0..5 {
            sel.observe(&[0.0, 0.0], false);
        }
        for _ in 0..3 {
            sel.observe(&[0.0, 4.0], false);
            sel.observe(&[0.0, 0.0], false); // re-anchor the baseline
        }
        let w = sel.weights();
        assert!(w[1] < w[0], "false-alarming dim should shrink: {w:?}");
    }

    #[test]
    fn weights_stay_positive_and_bounded_below() {
        let mut sel = OnlineFeatureSelector::new(3, 1.0);
        for i in 0..200 {
            // Alternate baseline and spikes so updates keep firing.
            let s = if i % 2 == 0 {
                [8.0, 0.0, 0.0]
            } else {
                [0.0, 0.0, 0.0]
            };
            sel.observe(&s, false);
        }
        assert!(sel.weights().iter().all(|&w| w >= 1e-3));
    }

    #[test]
    fn transformed_sequence_sharpens_detection() {
        // After training, the weighted bags should give the true change
        // at least as much prominence as the raw bags.
        let bags = bags_with_informative_dim(24, 12);
        let det = detector();
        let series = per_dimension_scores(&det, &bags, 5).expect("scores");
        let mut sel = OnlineFeatureSelector::new(3, 0.5);
        for (idx, &(t, _)) in series[0].iter().enumerate() {
            let gap = (t as i64 - 12).unsigned_abs();
            if (2..=4).contains(&gap) {
                continue;
            }
            let scores: Vec<f64> = series.iter().map(|s| s[idx].1).collect();
            sel.observe(&scores, gap <= 1);
        }
        let prominence = |bags: &[Bag]| -> f64 {
            let s = det.score_series(bags, 6).expect("scores");
            let near = s
                .iter()
                .filter(|&&(t, _)| (t as i64 - 12).unsigned_abs() <= 1)
                .map(|&(_, v)| v)
                .fold(f64::NEG_INFINITY, f64::max);
            let away = s
                .iter()
                .filter(|&&(t, _)| (t as i64 - 12).unsigned_abs() > 1)
                .map(|&(_, v)| v)
                .fold(f64::NEG_INFINITY, f64::max);
            near - away
        };
        let raw = prominence(&bags);
        let weighted = prominence(&sel.transform_sequence(&bags));
        assert!(
            weighted >= raw - 0.2,
            "feature selection should not hurt: raw {raw}, weighted {weighted}"
        );
    }

    #[test]
    #[should_panic(expected = "dim must be >= 1")]
    fn zero_dim_panics() {
        OnlineFeatureSelector::new(0, 0.1);
    }

    #[test]
    #[should_panic(expected = "score dim mismatch")]
    fn wrong_score_len_panics() {
        let mut sel = OnlineFeatureSelector::new(2, 0.1);
        sel.observe(&[1.0], true);
    }
}
