//! Change-point scores (§3.3, Eqs. 16–17).
//!
//! Both scores are functions of (a) the pairwise EMDs among the window's
//! signatures and (b) the window weights. The Bayesian bootstrap of §4.2
//! resamples only the weights, so [`WindowScorer`] caches the distance
//! matrix once per inspection point and re-evaluates scores cheaply for
//! every bootstrap replicate.

use crate::error::DetectError;
use crate::signature_builder::GroundMetric;
use emd::{
    centroid_lower_bound_with, emd_with, feasible_upper_bound, projected_lower_bound_with,
    sinkhorn_emd_with, Bracket, LadderScratch, Signature, SinkhornConfig, SinkhornScratch,
    TransportScratch,
};
use infoest::{
    auto_entropy_block, cross_entropy_block, information_content, DistanceMatrix, EstimatorConfig,
};

/// Which optimal-transport solver computes the signature distances.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum EmdSolver {
    /// Exact transportation simplex (Eqs. 7–12) — the paper's EMD and
    /// the default.
    #[default]
    Exact,
    /// Entropy-regularized Sinkhorn iteration — an `O(K^2)`-per-sweep
    /// approximation; distances are those of the *normalized*
    /// signatures. Useful for large signatures (see the ablation
    /// bench).
    Sinkhorn(SinkhornConfig),
    /// Bound-ladder solver: cheap lower/upper bounds (centroid ground
    /// distance, projected 1-D EMD, northwest-corner feasible flow)
    /// decide what they can before the exact simplex runs. See
    /// [`TieredConfig`] for the two modes.
    Tiered(TieredConfig),
}

/// Configuration of [`EmdSolver::Tiered`]'s bound ladder.
///
/// **Exact mode** (`epsilon: None`, the default): every *value* request
/// ([`EmdSolver::distance_with`]) is answered by the exact simplex —
/// bit-identical to [`EmdSolver::Exact`] — and the ladder prunes only
/// provably decidable work, i.e. candidates in
/// [`EmdSolver::nearest_with`] whose lower bound already exceeds the
/// current k-th neighbor distance.
///
/// **Bounded-error mode** (`epsilon: Some(eps)`): a value request may be
/// answered from the bound bracket alone once `ub - lb <= eps`, walking
/// the ladder centroid → projection → Sinkhorn estimate and falling
/// through to the exact simplex only when no tier decides. The returned
/// value is then within `eps` of the exact EMD (up to the Sinkhorn
/// marginal tolerance, ~1e-9 relative).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TieredConfig {
    /// `None` = exact mode; `Some(eps)` = bounded-error mode accepting
    /// any value bracketed within `eps` of exact. Must be finite and
    /// positive when set ([`crate::DetectorConfig::validate`] enforces
    /// this).
    pub epsilon: Option<f64>,
    /// Sinkhorn settings for the estimate tier of bounded-error mode
    /// (unused in exact mode).
    pub estimate: SinkhornConfig,
}

/// Reusable solver state covering either [`EmdSolver`] variant: the
/// transportation-simplex tableau for the exact path and the Sinkhorn
/// iteration buffers for the approximate one. A long-lived caller (the
/// batch detector's banded sweep, a stream worker's tick loop) keeps one
/// and threads it through every [`EmdSolver::distance_with`] call, so
/// pairwise distances are solved with no heap allocation in steady
/// state.
#[derive(Debug, Clone, Default)]
pub struct SolverScratch {
    /// Exact transportation-simplex buffers.
    transport: TransportScratch,
    /// Sinkhorn iteration buffers.
    sinkhorn: SinkhornScratch,
    /// Bound-ladder buffers (centroids, 1-D event list).
    ladder: LadderScratch,
    /// Which ladder tier decided each tiered request (cumulative).
    tiers: TierCounts,
}

/// Cumulative ladder decisions carried by a [`SolverScratch`].
#[derive(Debug, Clone, Copy, Default)]
struct TierCounts {
    centroid: u64,
    projection: u64,
    estimate: u64,
    exact: u64,
}

impl SolverScratch {
    /// Empty scratch; buffers grow to the signatures' shape on first use.
    pub fn new() -> Self {
        SolverScratch::default()
    }

    /// Cumulative counters of the solver work this scratch has carried,
    /// across both variants. Counters only grow; telemetry consumers
    /// snapshot and difference to get per-interval rates.
    pub fn stats(&self) -> SolverStats {
        let t = self.transport.stats();
        let s = self.sinkhorn.stats();
        SolverStats {
            exact_solves: t.solves,
            pivots: t.pivots,
            sinkhorn_solves: s.solves,
            sinkhorn_sweeps: s.sweeps,
            tier_centroid: self.tiers.centroid,
            tier_projection: self.tiers.projection,
            tier_estimate: self.tiers.estimate,
            tier_exact: self.tiers.exact,
        }
    }
}

/// Cumulative counters of a [`SolverScratch`]'s lifetime work: exact
/// simplex solves and their pivots, Sinkhorn solves and their sweeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Exact transportation-simplex solves that reached optimality.
    pub exact_solves: u64,
    /// Stepping-stone pivots across all exact solves.
    pub pivots: u64,
    /// Sinkhorn solves completed.
    pub sinkhorn_solves: u64,
    /// Potential-update sweeps across all Sinkhorn solves.
    pub sinkhorn_sweeps: u64,
    /// Tiered requests decided by the centroid lower bound.
    pub tier_centroid: u64,
    /// Tiered requests decided by the projected 1-D lower bound.
    pub tier_projection: u64,
    /// Tiered requests decided by the Sinkhorn estimate tier.
    pub tier_estimate: u64,
    /// Tiered requests that fell through to the exact simplex.
    pub tier_exact: u64,
}

impl SolverStats {
    /// Fraction of tiered requests decided without an exact simplex
    /// solve; `0.0` when no tiered request has run.
    pub fn pruned_ratio(&self) -> f64 {
        let pruned = self.tier_centroid + self.tier_projection + self.tier_estimate;
        let total = pruned + self.tier_exact;
        if total == 0 {
            return 0.0;
        }
        pruned as f64 / total as f64
    }
}

impl EmdSolver {
    /// Distance between two signatures under this solver.
    ///
    /// Equivalent to [`EmdSolver::distance_with`] with a fresh
    /// [`SolverScratch`].
    ///
    /// # Errors
    /// Propagates the underlying solver's failures.
    pub fn distance(
        &self,
        a: &Signature,
        b: &Signature,
        metric: &GroundMetric,
    ) -> Result<f64, emd::EmdError> {
        self.distance_with(a, b, metric, &mut SolverScratch::new())
    }

    /// As [`EmdSolver::distance`], reusing a caller-kept scratch —
    /// allocation-free once warm, bit-identical results.
    ///
    /// # Errors
    /// As [`EmdSolver::distance`].
    pub fn distance_with(
        &self,
        a: &Signature,
        b: &Signature,
        metric: &GroundMetric,
        scratch: &mut SolverScratch,
    ) -> Result<f64, emd::EmdError> {
        match self {
            EmdSolver::Exact => emd_with(a, b, metric, &mut scratch.transport),
            EmdSolver::Sinkhorn(cfg) => sinkhorn_emd_with(a, b, metric, cfg, &mut scratch.sinkhorn),
            EmdSolver::Tiered(cfg) => match cfg.epsilon {
                // Exact mode: value requests bypass the ladder entirely
                // so results (scores, snapshots) stay bit-identical to
                // `EmdSolver::Exact`; pruning lives in `nearest_with`.
                None => {
                    scratch.tiers.exact += 1;
                    emd_with(a, b, metric, &mut scratch.transport)
                }
                Some(eps) => tiered_bounded(a, b, metric, eps, &cfg.estimate, scratch),
            },
        }
    }

    /// Indices and distances of the `k` nearest `candidates` to `query`
    /// under this solver, ascending by `(distance, index)`, appended to
    /// the cleared `out` (allocation-free once `out`'s capacity covers
    /// `k + 1`).
    ///
    /// For [`EmdSolver::Tiered`] the ladder's lower bounds prune
    /// candidates that provably cannot enter the result — a candidate is
    /// skipped only when its bound *strictly* exceeds the current k-th
    /// distance, and surviving candidates are solved exactly, so the
    /// returned set is identical to [`EmdSolver::Exact`]'s in either
    /// tiered mode. The [`EmdSolver::Sinkhorn`] variant ranks by its
    /// approximate distances, consistent with its
    /// [`EmdSolver::distance_with`].
    ///
    /// # Errors
    /// Propagates the underlying solver's failures.
    pub fn nearest_with(
        &self,
        query: &Signature,
        candidates: &[Signature],
        k: usize,
        metric: &GroundMetric,
        scratch: &mut SolverScratch,
        out: &mut Vec<(f64, usize)>,
    ) -> Result<(), emd::EmdError> {
        out.clear();
        if k == 0 {
            return Ok(());
        }
        let prune = matches!(self, EmdSolver::Tiered(_));
        for (idx, cand) in candidates.iter().enumerate() {
            if prune && out.len() == k {
                // Ties between equal distances break by index, and every
                // pruned candidate's index is ahead of nothing it could
                // displace — only a *strictly* larger lower bound is
                // decisive, which keeps the pruning lossless.
                let kth = out[k - 1].0;
                if let Some(lb) =
                    centroid_lower_bound_with(query, cand, metric, &mut scratch.ladder)
                {
                    if lb > kth {
                        scratch.tiers.centroid += 1;
                        continue;
                    }
                    if let Some(plb) = projected_lower_bound_with(query, cand, &mut scratch.ladder)
                    {
                        if plb > kth {
                            scratch.tiers.projection += 1;
                            continue;
                        }
                    }
                }
            }
            let d = match self {
                // Exact values regardless of mode: the pruned k-NN set
                // must match the exact solver's.
                EmdSolver::Tiered(_) => {
                    scratch.tiers.exact += 1;
                    emd_with(query, cand, metric, &mut scratch.transport)?
                }
                _ => self.distance_with(query, cand, metric, scratch)?,
            };
            let pos = out
                .iter()
                .position(|&(od, oi)| (d, idx) < (od, oi))
                .unwrap_or(out.len());
            if pos < k {
                out.insert(pos, (d, idx));
                out.truncate(k);
            }
        }
        Ok(())
    }
}

/// Smallest cost-matrix size (`|a| * |b|`, exclusive) at which the
/// bounded ladder's Sinkhorn estimate tier is allowed to run — see the
/// comment at its call site in [`tiered_bounded`].
const ESTIMATE_MIN_CELLS: usize = 64;

/// Bounded-error ladder walk (`epsilon = Some(eps)`): centroid bracket →
/// projection bracket → convergence-gated Sinkhorn upper bound → exact
/// simplex. Each accepting tier returns a value inside a proven
/// `[lb, ub]` bracket of width `<= eps`.
fn tiered_bounded(
    a: &Signature,
    b: &Signature,
    metric: &GroundMetric,
    eps: f64,
    estimate: &SinkhornConfig,
    scratch: &mut SolverScratch,
) -> Result<f64, emd::EmdError> {
    // Inputs the ladder cannot certify (dimension mismatch, zero mass)
    // go straight to the exact solver, which owns input validation and
    // error reporting — the bounded path must fail exactly like Exact.
    if a.dim() != b.dim() || a.total_weight() <= 0.0 || b.total_weight() <= 0.0 {
        scratch.tiers.exact += 1;
        return emd_with(a, b, metric, &mut scratch.transport);
    }
    let ub = feasible_upper_bound(a, b, metric);
    let centroid_lb = centroid_lower_bound_with(a, b, metric, &mut scratch.ladder);
    let mut bracket = Bracket {
        lb: centroid_lb.unwrap_or(0.0),
        ub,
    };
    if bracket.width() <= eps {
        scratch.tiers.centroid += 1;
        return Ok(bracket.midpoint());
    }
    if let Some(plb) = projected_lower_bound_with(a, b, &mut scratch.ladder) {
        bracket.lb = bracket.lb.max(plb);
        if bracket.width() <= eps {
            scratch.tiers.projection += 1;
            return Ok(bracket.midpoint());
        }
    }
    // Sinkhorn estimate tier: only meaningful for equal total masses
    // (the lower bounds returned Some) — Sinkhorn normalizes both sides,
    // so for unequal masses its value estimates a different quantity.
    // Its transport cost upper-bounds the exact EMD only when the final
    // plan is feasible up to the configured tolerance, hence the
    // convergence gate on the marginal violation. The size gate keeps
    // the tier out of the regime where it can only lose: below ~64 cost
    // cells a small exact simplex solve is cheaper than a converged
    // Sinkhorn run, and an *unconverged* run wastes `max_iters` sweeps
    // and falls through to the simplex anyway (measured in the
    // `emd_tiered` bench; the engine's compact histogram signatures sit
    // squarely in that regime).
    if centroid_lb.is_some() && a.len() * b.len() > ESTIMATE_MIN_CELLS {
        if let Ok(v) = sinkhorn_emd_with(a, b, metric, estimate, &mut scratch.sinkhorn) {
            if scratch.sinkhorn.last_marginal_violation() < estimate.tol {
                bracket.ub = bracket.ub.min(v).max(bracket.lb);
                if bracket.width() <= eps {
                    scratch.tiers.estimate += 1;
                    return Ok(bracket.clamp(v));
                }
            }
        }
    }
    scratch.tiers.exact += 1;
    emd_with(a, b, metric, &mut scratch.transport)
}

/// Which change-point score to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoreKind {
    /// Log-likelihood-ratio score (Eq. 16): sensitive to small changes,
    /// jumpier.
    LikelihoodRatio,
    /// Symmetrized-KL score (Eq. 17): conservative and robust, less
    /// sensitive to minor changes. The paper's default in §5.
    #[default]
    SymmetrizedKl,
}

/// Cached scorer for one inspection point.
///
/// Window layout: signature indices `0..tau` are the reference set,
/// `tau..tau+tau_prime` the test set; the inspection signature `S_t` is
/// index `tau`.
#[derive(Debug, Clone)]
pub struct WindowScorer {
    dist: DistanceMatrix,
    tau: usize,
    tau_prime: usize,
    est: EstimatorConfig,
}

impl WindowScorer {
    /// Build the scorer by computing all pairwise EMDs among the window's
    /// signatures.
    ///
    /// # Errors
    /// Propagates EMD failures (zero-mass signatures etc.).
    pub fn new(
        signatures: &[Signature],
        tau: usize,
        tau_prime: usize,
        metric: &GroundMetric,
        est: EstimatorConfig,
    ) -> Result<Self, DetectError> {
        assert_eq!(
            signatures.len(),
            tau + tau_prime,
            "WindowScorer: expected tau + tau' signatures"
        );
        let w = signatures.len();
        let mut scratch = SolverScratch::new();
        let mut data = vec![0.0; w * w];
        for i in 0..w {
            for j in (i + 1)..w {
                let d = emd_with(
                    &signatures[i],
                    &signatures[j],
                    metric,
                    &mut scratch.transport,
                )?;
                data[i * w + j] = d;
                data[j * w + i] = d;
            }
        }
        Ok(WindowScorer {
            dist: DistanceMatrix::from_vec(w, w, data),
            tau,
            tau_prime,
            est,
        })
    }

    /// Build from a precomputed distance matrix over the window (used by
    /// the detector, which maintains one global matrix).
    ///
    /// # Panics
    /// Panics if the matrix is not `(tau+tau') x (tau+tau')`.
    pub fn from_distances(
        dist: DistanceMatrix,
        tau: usize,
        tau_prime: usize,
        est: EstimatorConfig,
    ) -> Self {
        assert_eq!(dist.rows(), tau + tau_prime, "from_distances: shape");
        assert_eq!(dist.cols(), tau + tau_prime, "from_distances: shape");
        WindowScorer {
            dist,
            tau,
            tau_prime,
            est,
        }
    }

    /// Reference window length.
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// Test window length.
    pub fn tau_prime(&self) -> usize {
        self.tau_prime
    }

    /// The cached distance matrix.
    pub fn distances(&self) -> &DistanceMatrix {
        &self.dist
    }

    /// Consume the scorer, returning the distance matrix — so a hot
    /// loop building one scorer per inspection point can recycle the
    /// matrix storage (`DistanceMatrix::into_vec`) instead of
    /// re-allocating it every time.
    pub fn into_distances(self) -> DistanceMatrix {
        self.dist
    }

    /// Evaluate the chosen score with the given window weights.
    ///
    /// `ref_weights` has length `tau`, `test_weights` length `tau_prime`;
    /// each is normalized internally.
    pub fn score(&self, kind: ScoreKind, ref_weights: &[f64], test_weights: &[f64]) -> f64 {
        match kind {
            ScoreKind::LikelihoodRatio => self.score_lr(ref_weights, test_weights),
            ScoreKind::SymmetrizedKl => self.score_kl(ref_weights, test_weights),
        }
    }

    /// Eq. (16): `score_LR(S_t) = I(S_t; S_ref) - I(S_t; S_test \ S_t)`.
    ///
    /// # Panics
    /// Panics if `tau_prime < 2` (the leave-`S_t`-out test set would be
    /// empty); the detector validates this up front.
    pub fn score_lr(&self, ref_weights: &[f64], test_weights: &[f64]) -> f64 {
        assert!(
            self.tau_prime >= 2,
            "score_lr requires tau' >= 2 (S_test \\ S_t must be non-empty)"
        );
        assert_eq!(ref_weights.len(), self.tau, "score_lr: ref weights length");
        assert_eq!(
            test_weights.len(),
            self.tau_prime,
            "score_lr: test weights length"
        );
        let t_idx = self.tau; // S_t is the first test signature
        let trow = self.dist.row(t_idx);

        // I(S_t; S_ref): distances from each reference signature to S_t.
        let i_ref = information_content(&trow[..self.tau], ref_weights, &self.est);

        // I(S_t; S_test \ S_t): the remaining test signatures, with their
        // weights renormalized (information_content normalizes). Both
        // the distances and the weights are direct sub-slices — nothing
        // is copied on this per-replicate path.
        let i_test = information_content(
            &trow[self.tau + 1..self.tau + self.tau_prime],
            &test_weights[1..],
            &self.est,
        );

        i_ref - i_test
    }

    /// Eq. (17): symmetrized KL divergence between the two windows,
    /// `H(S_ref, S_test) - (H(S_ref) + H(S_test)) / 2`.
    pub fn score_kl(&self, ref_weights: &[f64], test_weights: &[f64]) -> f64 {
        assert_eq!(ref_weights.len(), self.tau, "score_kl: ref weights length");
        assert_eq!(
            test_weights.len(),
            self.tau_prime,
            "score_kl: test weights length"
        );
        let w = self.tau + self.tau_prime;
        // Evaluate every term directly against the cached window matrix
        // (no block extraction): this method runs once per bootstrap
        // replicate, so it must not allocate.
        let h_cross = cross_entropy_block(
            &self.dist,
            0..self.tau,
            self.tau..w,
            ref_weights,
            test_weights,
            &self.est,
        );
        let h_ref = auto_entropy_block(&self.dist, 0..self.tau, ref_weights, &self.est);
        let h_test = auto_entropy_block(&self.dist, self.tau..w, test_weights, &self.est);
        h_cross - 0.5 * (h_ref + h_test)
    }
}

/// Free-function form of Eq. (16) on a precomputed window distance
/// matrix.
pub fn score_lr(
    dist: &DistanceMatrix,
    tau: usize,
    tau_prime: usize,
    ref_weights: &[f64],
    test_weights: &[f64],
    est: &EstimatorConfig,
) -> f64 {
    WindowScorer::from_distances(dist.clone(), tau, tau_prime, *est)
        .score_lr(ref_weights, test_weights)
}

/// Free-function form of Eq. (17) on a precomputed window distance
/// matrix.
pub fn score_kl(
    dist: &DistanceMatrix,
    tau: usize,
    tau_prime: usize,
    ref_weights: &[f64],
    test_weights: &[f64],
    est: &EstimatorConfig,
) -> f64 {
    WindowScorer::from_distances(dist.clone(), tau, tau_prime, *est)
        .score_kl(ref_weights, test_weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::equal_weights;

    /// Signatures at scalar positions with unit mass.
    fn sigs_at(positions: &[f64]) -> Vec<Signature> {
        positions
            .iter()
            .map(|&p| Signature::new(vec![vec![p]], vec![1.0]).unwrap())
            .collect()
    }

    fn scorer(positions: &[f64], tau: usize, tau_prime: usize) -> WindowScorer {
        WindowScorer::new(
            &sigs_at(positions),
            tau,
            tau_prime,
            &GroundMetric::Euclidean,
            EstimatorConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn kl_score_larger_for_separated_windows() {
        // Homogeneous: all signatures near zero.
        let homog = scorer(&[0.0, 0.1, 0.2, 0.1, 0.0, 0.15, 0.05, 0.1], 4, 4);
        // Separated: test window far from reference window.
        let sep = scorer(&[0.0, 0.1, 0.2, 0.1, 10.0, 10.1, 10.2, 10.05], 4, 4);
        let w = equal_weights(4);
        let s_homog = homog.score_kl(&w, &w);
        let s_sep = sep.score_kl(&w, &w);
        assert!(
            s_sep > s_homog + 1.0,
            "separated {s_sep} vs homogeneous {s_homog}"
        );
    }

    #[test]
    fn lr_score_larger_for_separated_windows() {
        let homog = scorer(&[0.0, 0.1, 0.2, 0.1, 0.0, 0.15, 0.05, 0.1], 4, 4);
        let sep = scorer(&[0.0, 0.1, 0.2, 0.1, 10.0, 10.1, 10.2, 10.05], 4, 4);
        let w = equal_weights(4);
        assert!(sep.score_lr(&w, &w) > homog.score_lr(&w, &w) + 1.0);
    }

    #[test]
    fn kl_score_near_zero_for_matching_windows() {
        // Both windows drawn from the same configuration (jittered so no
        // two signatures coincide exactly — exact duplicates are a
        // measure-zero case where the log floor dominates): cross-entropy
        // ~ auto-entropies, so the score is near zero.
        let s = scorer(&[0.0, 1.0, 2.0, 3.0, 0.04, 1.03, 2.02, 3.01], 4, 4);
        let w = equal_weights(4);
        let v = s.score_kl(&w, &w);
        assert!(v.abs() < 1.5, "score for matching windows: {v}");
    }

    #[test]
    fn kl_is_symmetric_in_window_exchange() {
        // Swapping ref and test windows leaves Eq. 17 unchanged (the
        // symmetrization). Use equal window sizes.
        let pos_a = [0.0, 0.5, 1.0, 5.0, 5.5, 6.0];
        let pos_b = [5.0, 5.5, 6.0, 0.0, 0.5, 1.0];
        let sa = scorer(&pos_a, 3, 3);
        let sb = scorer(&pos_b, 3, 3);
        let w = equal_weights(3);
        assert!((sa.score_kl(&w, &w) - sb.score_kl(&w, &w)).abs() < 1e-9);
    }

    #[test]
    fn scores_respond_to_weights() {
        // Shifting all test weight onto the far outlier raises the KL
        // score relative to weighting the matching signatures.
        let s = scorer(&[0.0, 0.1, 0.2, 0.1, 0.0, 0.1, 30.0], 4, 3);
        let wr = equal_weights(4);
        let balanced = s.score_kl(&wr, &equal_weights(3));
        let outlier_heavy = s.score_kl(&wr, &[0.05, 0.05, 0.9]);
        assert!(outlier_heavy > balanced);
    }

    #[test]
    fn free_functions_match_methods() {
        let s = scorer(&[0.0, 1.0, 2.0, 5.0, 6.0, 7.0], 3, 3);
        let w = equal_weights(3);
        let est = EstimatorConfig::default();
        assert_eq!(
            s.score_kl(&w, &w),
            score_kl(s.distances(), 3, 3, &w, &w, &est)
        );
        assert_eq!(
            s.score_lr(&w, &w),
            score_lr(s.distances(), 3, 3, &w, &w, &est)
        );
    }

    #[test]
    #[should_panic(expected = "tau' >= 2")]
    fn lr_with_tau_prime_one_panics() {
        let s = scorer(&[0.0, 1.0, 2.0, 5.0], 3, 1);
        s.score_lr(&equal_weights(3), &equal_weights(1));
    }

    /// Deterministic multi-point 2-D signatures in two clusters (around
    /// 0 and around 8), all with equal total mass so the ladder's lower
    /// bounds apply.
    fn rich_sigs() -> Vec<Signature> {
        (0..12)
            .map(|i| {
                let base = if i < 6 { 0.0 } else { 8.0 };
                let t = i as f64;
                Signature::new(
                    vec![
                        vec![base + 0.07 * t, base - 0.11 * t],
                        vec![base + 1.0, base + 0.13 * t],
                        vec![base - 0.5, base + 1.0 + 0.05 * t],
                    ],
                    vec![1.0, 0.5, 2.0],
                )
                .unwrap()
            })
            .collect()
    }

    #[test]
    fn tiered_exact_mode_is_bit_identical_to_exact() {
        let sigs = rich_sigs();
        let tiered = EmdSolver::Tiered(TieredConfig::default());
        let mut st = SolverScratch::new();
        let mut se = SolverScratch::new();
        let mut pairs = 0u64;
        for i in 0..sigs.len() {
            for j in (i + 1)..sigs.len() {
                let dt = tiered
                    .distance_with(&sigs[i], &sigs[j], &GroundMetric::Euclidean, &mut st)
                    .unwrap();
                let de = EmdSolver::Exact
                    .distance_with(&sigs[i], &sigs[j], &GroundMetric::Euclidean, &mut se)
                    .unwrap();
                assert_eq!(dt.to_bits(), de.to_bits(), "pair ({i}, {j})");
                pairs += 1;
            }
        }
        let stats = st.stats();
        assert_eq!(stats.tier_exact, pairs);
        assert_eq!(stats.exact_solves, pairs);
        assert_eq!(stats.pruned_ratio(), 0.0);
    }

    #[test]
    fn tiered_bounded_mode_stays_within_epsilon() {
        let sigs = rich_sigs();
        let mut exact_scratch = SolverScratch::new();
        for eps in [1e-3, 0.1, 2.0] {
            let solver = EmdSolver::Tiered(TieredConfig {
                epsilon: Some(eps),
                ..TieredConfig::default()
            });
            let mut scratch = SolverScratch::new();
            for metric in [
                GroundMetric::Euclidean,
                GroundMetric::Manhattan,
                GroundMetric::Chebyshev,
            ] {
                for i in 0..sigs.len() {
                    for j in (i + 1)..sigs.len() {
                        let v = solver
                            .distance_with(&sigs[i], &sigs[j], &metric, &mut scratch)
                            .unwrap();
                        let exact = EmdSolver::Exact
                            .distance_with(&sigs[i], &sigs[j], &metric, &mut exact_scratch)
                            .unwrap();
                        // Slack covers the Sinkhorn tier's marginal
                        // tolerance (~1e-9 relative).
                        assert!(
                            (v - exact).abs() <= eps + 1e-6,
                            "eps {eps} metric {metric:?} pair ({i}, {j}): {v} vs {exact}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tiered_bounded_mode_prunes_wide_epsilon() {
        // With a generous epsilon, in-cluster pairs (tiny true distance,
        // tight bracket) must be decided without the simplex.
        let sigs = rich_sigs();
        let solver = EmdSolver::Tiered(TieredConfig {
            epsilon: Some(1.0),
            ..TieredConfig::default()
        });
        let mut scratch = SolverScratch::new();
        for i in 0..6 {
            for j in (i + 1)..6 {
                solver
                    .distance_with(&sigs[i], &sigs[j], &GroundMetric::Euclidean, &mut scratch)
                    .unwrap();
            }
        }
        let stats = scratch.stats();
        assert!(
            stats.tier_centroid + stats.tier_projection + stats.tier_estimate > 0,
            "no tier ever decided: {stats:?}"
        );
        assert!(stats.pruned_ratio() > 0.0);
    }

    #[test]
    fn tiered_bounded_mode_estimate_tier_decides_above_the_size_gate() {
        // Two 9-point clusters (81 cost cells, above ESTIMATE_MIN_CELLS)
        // with different intra-cluster layouts: the centroid bound is
        // loose (it sees only the means), the greedy upper bound is
        // loose (index-order pairing), but a converged Sinkhorn plan
        // narrows the bracket below epsilon. The estimate config uses a
        // milder regularization than the default so the marginal
        // tolerance is reachable on these wide clusters (a feasible
        // plan's cost is a valid upper bound however regularized). Sweep
        // a few jitter patterns; at least one pair must be decided by
        // the estimate tier, and every value must stay within epsilon
        // of exact.
        let eps = 0.5;
        let solver = EmdSolver::Tiered(TieredConfig {
            epsilon: Some(eps),
            estimate: SinkhornConfig {
                epsilon: 0.3,
                max_iters: 5000,
                tol: 1e-8,
            },
        });
        let mut scratch = SolverScratch::new();
        let mut exact_scratch = SolverScratch::new();
        let cluster = |cx: f64, cy: f64, phase: u64| {
            let pts: Vec<Vec<f64>> = (0..9u64)
                .map(|i| {
                    let jx = (((i * 7 + phase * 3) % 11) as f64 - 5.0) * 0.8;
                    let jy = (((i * 5 + phase * 9) % 13) as f64 - 6.0) * 0.8;
                    vec![cx + jx, cy + jy]
                })
                .collect();
            Signature::new(pts, vec![1.0; 9]).unwrap()
        };
        for phase in 0..12u64 {
            let a = cluster(0.0, 0.0, phase);
            let b = cluster(4.0, 2.0, phase + 1);
            let v = solver
                .distance_with(&a, &b, &GroundMetric::Euclidean, &mut scratch)
                .unwrap();
            let exact = EmdSolver::Exact
                .distance_with(&a, &b, &GroundMetric::Euclidean, &mut exact_scratch)
                .unwrap();
            assert!(
                (v - exact).abs() <= eps + 1e-6,
                "phase {phase}: {v} vs {exact}"
            );
        }
        let stats = scratch.stats();
        assert!(
            stats.tier_estimate > 0,
            "the estimate tier never decided: {stats:?}"
        );
    }

    #[test]
    fn tiered_bounded_mode_matches_exact_error_on_zero_mass() {
        let a = Signature::new(vec![vec![0.0]], vec![0.0]).unwrap();
        let b = Signature::new(vec![vec![1.0]], vec![1.0]).unwrap();
        let solver = EmdSolver::Tiered(TieredConfig {
            epsilon: Some(0.5),
            ..TieredConfig::default()
        });
        let mut scratch = SolverScratch::new();
        let tiered_err = solver
            .distance_with(&a, &b, &GroundMetric::Euclidean, &mut scratch)
            .unwrap_err();
        let exact_err = EmdSolver::Exact
            .distance_with(&a, &b, &GroundMetric::Euclidean, &mut scratch)
            .unwrap_err();
        assert_eq!(tiered_err, exact_err);
    }

    #[test]
    fn tiered_nearest_matches_exact_and_prunes() {
        let sigs = rich_sigs();
        let (query, candidates) = sigs.split_first().unwrap();
        let metric = GroundMetric::Euclidean;
        let mut exact_out = Vec::new();
        EmdSolver::Exact
            .nearest_with(
                query,
                candidates,
                3,
                &metric,
                &mut SolverScratch::new(),
                &mut exact_out,
            )
            .unwrap();
        for cfg in [
            TieredConfig::default(),
            TieredConfig {
                epsilon: Some(0.25),
                ..TieredConfig::default()
            },
        ] {
            let mut scratch = SolverScratch::new();
            let mut tiered_out = Vec::new();
            EmdSolver::Tiered(cfg)
                .nearest_with(query, candidates, 3, &metric, &mut scratch, &mut tiered_out)
                .unwrap();
            assert_eq!(exact_out.len(), tiered_out.len());
            for (e, t) in exact_out.iter().zip(&tiered_out) {
                assert_eq!(e.1, t.1);
                assert_eq!(e.0.to_bits(), t.0.to_bits());
            }
            // The far cluster must have been excluded by a bound, not by
            // solving: fewer exact solves than candidates.
            let stats = scratch.stats();
            assert!(
                stats.tier_centroid + stats.tier_projection > 0,
                "no k-NN pruning happened: {stats:?}"
            );
            assert!(stats.exact_solves < candidates.len() as u64);
        }
    }

    #[test]
    fn nearest_orders_by_distance_then_index() {
        // Duplicate candidates force distance ties; indices break them.
        let q = Signature::new(vec![vec![0.0]], vec![1.0]).unwrap();
        let c = Signature::new(vec![vec![1.0]], vec![1.0]).unwrap();
        let candidates = vec![c.clone(), c.clone(), c];
        let mut out = Vec::new();
        EmdSolver::Exact
            .nearest_with(
                &q,
                &candidates,
                2,
                &GroundMetric::Euclidean,
                &mut SolverScratch::new(),
                &mut out,
            )
            .unwrap();
        assert_eq!(out.iter().map(|&(_, i)| i).collect::<Vec<_>>(), [0, 1]);
    }

    #[test]
    fn estimator_constants_cancel() {
        // c and d shift/scale both terms of each score identically up to
        // the score's own structure; for score_KL the offset cancels
        // exactly: (c + dX) - ((c + dY) + (c + dZ))/2 = d(X - (Y+Z)/2)
        // requires checking: c - c = 0. Verify numerically.
        let positions = [0.0, 0.3, 0.7, 4.0, 4.2, 4.9];
        let base = WindowScorer::new(
            &sigs_at(&positions),
            3,
            3,
            &GroundMetric::Euclidean,
            EstimatorConfig::default(),
        )
        .unwrap();
        let shifted = WindowScorer::new(
            &sigs_at(&positions),
            3,
            3,
            &GroundMetric::Euclidean,
            EstimatorConfig {
                offset: 7.0,
                scale: 1.0,
                dist_floor: 1e-12,
            },
        )
        .unwrap();
        let w = equal_weights(3);
        assert!((base.score_kl(&w, &w) - shifted.score_kl(&w, &w)).abs() < 1e-9);
        assert!((base.score_lr(&w, &w) - shifted.score_lr(&w, &w)).abs() < 1e-9);
    }
}
