//! Change-point scores (§3.3, Eqs. 16–17).
//!
//! Both scores are functions of (a) the pairwise EMDs among the window's
//! signatures and (b) the window weights. The Bayesian bootstrap of §4.2
//! resamples only the weights, so [`WindowScorer`] caches the distance
//! matrix once per inspection point and re-evaluates scores cheaply for
//! every bootstrap replicate.

use crate::error::DetectError;
use crate::signature_builder::GroundMetric;
use emd::{
    emd_with, sinkhorn_emd_with, Signature, SinkhornConfig, SinkhornScratch, TransportScratch,
};
use infoest::{
    auto_entropy_block, cross_entropy_block, information_content, DistanceMatrix, EstimatorConfig,
};

/// Which optimal-transport solver computes the signature distances.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum EmdSolver {
    /// Exact transportation simplex (Eqs. 7–12) — the paper's EMD and
    /// the default.
    #[default]
    Exact,
    /// Entropy-regularized Sinkhorn iteration — an `O(K^2)`-per-sweep
    /// approximation; distances are those of the *normalized*
    /// signatures. Useful for large signatures (see the ablation
    /// bench).
    Sinkhorn(SinkhornConfig),
}

/// Reusable solver state covering either [`EmdSolver`] variant: the
/// transportation-simplex tableau for the exact path and the Sinkhorn
/// iteration buffers for the approximate one. A long-lived caller (the
/// batch detector's banded sweep, a stream worker's tick loop) keeps one
/// and threads it through every [`EmdSolver::distance_with`] call, so
/// pairwise distances are solved with no heap allocation in steady
/// state.
#[derive(Debug, Clone, Default)]
pub struct SolverScratch {
    /// Exact transportation-simplex buffers.
    transport: TransportScratch,
    /// Sinkhorn iteration buffers.
    sinkhorn: SinkhornScratch,
}

impl SolverScratch {
    /// Empty scratch; buffers grow to the signatures' shape on first use.
    pub fn new() -> Self {
        SolverScratch::default()
    }

    /// Cumulative counters of the solver work this scratch has carried,
    /// across both variants. Counters only grow; telemetry consumers
    /// snapshot and difference to get per-interval rates.
    pub fn stats(&self) -> SolverStats {
        let t = self.transport.stats();
        let s = self.sinkhorn.stats();
        SolverStats {
            exact_solves: t.solves,
            pivots: t.pivots,
            sinkhorn_solves: s.solves,
            sinkhorn_sweeps: s.sweeps,
        }
    }
}

/// Cumulative counters of a [`SolverScratch`]'s lifetime work: exact
/// simplex solves and their pivots, Sinkhorn solves and their sweeps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Exact transportation-simplex solves that reached optimality.
    pub exact_solves: u64,
    /// Stepping-stone pivots across all exact solves.
    pub pivots: u64,
    /// Sinkhorn solves completed.
    pub sinkhorn_solves: u64,
    /// Potential-update sweeps across all Sinkhorn solves.
    pub sinkhorn_sweeps: u64,
}

impl EmdSolver {
    /// Distance between two signatures under this solver.
    ///
    /// Equivalent to [`EmdSolver::distance_with`] with a fresh
    /// [`SolverScratch`].
    ///
    /// # Errors
    /// Propagates the underlying solver's failures.
    pub fn distance(
        &self,
        a: &Signature,
        b: &Signature,
        metric: &GroundMetric,
    ) -> Result<f64, emd::EmdError> {
        self.distance_with(a, b, metric, &mut SolverScratch::new())
    }

    /// As [`EmdSolver::distance`], reusing a caller-kept scratch —
    /// allocation-free once warm, bit-identical results.
    ///
    /// # Errors
    /// As [`EmdSolver::distance`].
    pub fn distance_with(
        &self,
        a: &Signature,
        b: &Signature,
        metric: &GroundMetric,
        scratch: &mut SolverScratch,
    ) -> Result<f64, emd::EmdError> {
        match self {
            EmdSolver::Exact => emd_with(a, b, metric, &mut scratch.transport),
            EmdSolver::Sinkhorn(cfg) => sinkhorn_emd_with(a, b, metric, cfg, &mut scratch.sinkhorn),
        }
    }
}

/// Which change-point score to compute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoreKind {
    /// Log-likelihood-ratio score (Eq. 16): sensitive to small changes,
    /// jumpier.
    LikelihoodRatio,
    /// Symmetrized-KL score (Eq. 17): conservative and robust, less
    /// sensitive to minor changes. The paper's default in §5.
    #[default]
    SymmetrizedKl,
}

/// Cached scorer for one inspection point.
///
/// Window layout: signature indices `0..tau` are the reference set,
/// `tau..tau+tau_prime` the test set; the inspection signature `S_t` is
/// index `tau`.
#[derive(Debug, Clone)]
pub struct WindowScorer {
    dist: DistanceMatrix,
    tau: usize,
    tau_prime: usize,
    est: EstimatorConfig,
}

impl WindowScorer {
    /// Build the scorer by computing all pairwise EMDs among the window's
    /// signatures.
    ///
    /// # Errors
    /// Propagates EMD failures (zero-mass signatures etc.).
    pub fn new(
        signatures: &[Signature],
        tau: usize,
        tau_prime: usize,
        metric: &GroundMetric,
        est: EstimatorConfig,
    ) -> Result<Self, DetectError> {
        assert_eq!(
            signatures.len(),
            tau + tau_prime,
            "WindowScorer: expected tau + tau' signatures"
        );
        let w = signatures.len();
        let mut scratch = SolverScratch::new();
        let mut data = vec![0.0; w * w];
        for i in 0..w {
            for j in (i + 1)..w {
                let d = emd_with(
                    &signatures[i],
                    &signatures[j],
                    metric,
                    &mut scratch.transport,
                )?;
                data[i * w + j] = d;
                data[j * w + i] = d;
            }
        }
        Ok(WindowScorer {
            dist: DistanceMatrix::from_vec(w, w, data),
            tau,
            tau_prime,
            est,
        })
    }

    /// Build from a precomputed distance matrix over the window (used by
    /// the detector, which maintains one global matrix).
    ///
    /// # Panics
    /// Panics if the matrix is not `(tau+tau') x (tau+tau')`.
    pub fn from_distances(
        dist: DistanceMatrix,
        tau: usize,
        tau_prime: usize,
        est: EstimatorConfig,
    ) -> Self {
        assert_eq!(dist.rows(), tau + tau_prime, "from_distances: shape");
        assert_eq!(dist.cols(), tau + tau_prime, "from_distances: shape");
        WindowScorer {
            dist,
            tau,
            tau_prime,
            est,
        }
    }

    /// Reference window length.
    pub fn tau(&self) -> usize {
        self.tau
    }

    /// Test window length.
    pub fn tau_prime(&self) -> usize {
        self.tau_prime
    }

    /// The cached distance matrix.
    pub fn distances(&self) -> &DistanceMatrix {
        &self.dist
    }

    /// Consume the scorer, returning the distance matrix — so a hot
    /// loop building one scorer per inspection point can recycle the
    /// matrix storage (`DistanceMatrix::into_vec`) instead of
    /// re-allocating it every time.
    pub fn into_distances(self) -> DistanceMatrix {
        self.dist
    }

    /// Evaluate the chosen score with the given window weights.
    ///
    /// `ref_weights` has length `tau`, `test_weights` length `tau_prime`;
    /// each is normalized internally.
    pub fn score(&self, kind: ScoreKind, ref_weights: &[f64], test_weights: &[f64]) -> f64 {
        match kind {
            ScoreKind::LikelihoodRatio => self.score_lr(ref_weights, test_weights),
            ScoreKind::SymmetrizedKl => self.score_kl(ref_weights, test_weights),
        }
    }

    /// Eq. (16): `score_LR(S_t) = I(S_t; S_ref) - I(S_t; S_test \ S_t)`.
    ///
    /// # Panics
    /// Panics if `tau_prime < 2` (the leave-`S_t`-out test set would be
    /// empty); the detector validates this up front.
    pub fn score_lr(&self, ref_weights: &[f64], test_weights: &[f64]) -> f64 {
        assert!(
            self.tau_prime >= 2,
            "score_lr requires tau' >= 2 (S_test \\ S_t must be non-empty)"
        );
        assert_eq!(ref_weights.len(), self.tau, "score_lr: ref weights length");
        assert_eq!(
            test_weights.len(),
            self.tau_prime,
            "score_lr: test weights length"
        );
        let t_idx = self.tau; // S_t is the first test signature
        let trow = self.dist.row(t_idx);

        // I(S_t; S_ref): distances from each reference signature to S_t.
        let i_ref = information_content(&trow[..self.tau], ref_weights, &self.est);

        // I(S_t; S_test \ S_t): the remaining test signatures, with their
        // weights renormalized (information_content normalizes). Both
        // the distances and the weights are direct sub-slices — nothing
        // is copied on this per-replicate path.
        let i_test = information_content(
            &trow[self.tau + 1..self.tau + self.tau_prime],
            &test_weights[1..],
            &self.est,
        );

        i_ref - i_test
    }

    /// Eq. (17): symmetrized KL divergence between the two windows,
    /// `H(S_ref, S_test) - (H(S_ref) + H(S_test)) / 2`.
    pub fn score_kl(&self, ref_weights: &[f64], test_weights: &[f64]) -> f64 {
        assert_eq!(ref_weights.len(), self.tau, "score_kl: ref weights length");
        assert_eq!(
            test_weights.len(),
            self.tau_prime,
            "score_kl: test weights length"
        );
        let w = self.tau + self.tau_prime;
        // Evaluate every term directly against the cached window matrix
        // (no block extraction): this method runs once per bootstrap
        // replicate, so it must not allocate.
        let h_cross = cross_entropy_block(
            &self.dist,
            0..self.tau,
            self.tau..w,
            ref_weights,
            test_weights,
            &self.est,
        );
        let h_ref = auto_entropy_block(&self.dist, 0..self.tau, ref_weights, &self.est);
        let h_test = auto_entropy_block(&self.dist, self.tau..w, test_weights, &self.est);
        h_cross - 0.5 * (h_ref + h_test)
    }
}

/// Free-function form of Eq. (16) on a precomputed window distance
/// matrix.
pub fn score_lr(
    dist: &DistanceMatrix,
    tau: usize,
    tau_prime: usize,
    ref_weights: &[f64],
    test_weights: &[f64],
    est: &EstimatorConfig,
) -> f64 {
    WindowScorer::from_distances(dist.clone(), tau, tau_prime, *est)
        .score_lr(ref_weights, test_weights)
}

/// Free-function form of Eq. (17) on a precomputed window distance
/// matrix.
pub fn score_kl(
    dist: &DistanceMatrix,
    tau: usize,
    tau_prime: usize,
    ref_weights: &[f64],
    test_weights: &[f64],
    est: &EstimatorConfig,
) -> f64 {
    WindowScorer::from_distances(dist.clone(), tau, tau_prime, *est)
        .score_kl(ref_weights, test_weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::equal_weights;

    /// Signatures at scalar positions with unit mass.
    fn sigs_at(positions: &[f64]) -> Vec<Signature> {
        positions
            .iter()
            .map(|&p| Signature::new(vec![vec![p]], vec![1.0]).unwrap())
            .collect()
    }

    fn scorer(positions: &[f64], tau: usize, tau_prime: usize) -> WindowScorer {
        WindowScorer::new(
            &sigs_at(positions),
            tau,
            tau_prime,
            &GroundMetric::Euclidean,
            EstimatorConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn kl_score_larger_for_separated_windows() {
        // Homogeneous: all signatures near zero.
        let homog = scorer(&[0.0, 0.1, 0.2, 0.1, 0.0, 0.15, 0.05, 0.1], 4, 4);
        // Separated: test window far from reference window.
        let sep = scorer(&[0.0, 0.1, 0.2, 0.1, 10.0, 10.1, 10.2, 10.05], 4, 4);
        let w = equal_weights(4);
        let s_homog = homog.score_kl(&w, &w);
        let s_sep = sep.score_kl(&w, &w);
        assert!(
            s_sep > s_homog + 1.0,
            "separated {s_sep} vs homogeneous {s_homog}"
        );
    }

    #[test]
    fn lr_score_larger_for_separated_windows() {
        let homog = scorer(&[0.0, 0.1, 0.2, 0.1, 0.0, 0.15, 0.05, 0.1], 4, 4);
        let sep = scorer(&[0.0, 0.1, 0.2, 0.1, 10.0, 10.1, 10.2, 10.05], 4, 4);
        let w = equal_weights(4);
        assert!(sep.score_lr(&w, &w) > homog.score_lr(&w, &w) + 1.0);
    }

    #[test]
    fn kl_score_near_zero_for_matching_windows() {
        // Both windows drawn from the same configuration (jittered so no
        // two signatures coincide exactly — exact duplicates are a
        // measure-zero case where the log floor dominates): cross-entropy
        // ~ auto-entropies, so the score is near zero.
        let s = scorer(&[0.0, 1.0, 2.0, 3.0, 0.04, 1.03, 2.02, 3.01], 4, 4);
        let w = equal_weights(4);
        let v = s.score_kl(&w, &w);
        assert!(v.abs() < 1.5, "score for matching windows: {v}");
    }

    #[test]
    fn kl_is_symmetric_in_window_exchange() {
        // Swapping ref and test windows leaves Eq. 17 unchanged (the
        // symmetrization). Use equal window sizes.
        let pos_a = [0.0, 0.5, 1.0, 5.0, 5.5, 6.0];
        let pos_b = [5.0, 5.5, 6.0, 0.0, 0.5, 1.0];
        let sa = scorer(&pos_a, 3, 3);
        let sb = scorer(&pos_b, 3, 3);
        let w = equal_weights(3);
        assert!((sa.score_kl(&w, &w) - sb.score_kl(&w, &w)).abs() < 1e-9);
    }

    #[test]
    fn scores_respond_to_weights() {
        // Shifting all test weight onto the far outlier raises the KL
        // score relative to weighting the matching signatures.
        let s = scorer(&[0.0, 0.1, 0.2, 0.1, 0.0, 0.1, 30.0], 4, 3);
        let wr = equal_weights(4);
        let balanced = s.score_kl(&wr, &equal_weights(3));
        let outlier_heavy = s.score_kl(&wr, &[0.05, 0.05, 0.9]);
        assert!(outlier_heavy > balanced);
    }

    #[test]
    fn free_functions_match_methods() {
        let s = scorer(&[0.0, 1.0, 2.0, 5.0, 6.0, 7.0], 3, 3);
        let w = equal_weights(3);
        let est = EstimatorConfig::default();
        assert_eq!(
            s.score_kl(&w, &w),
            score_kl(s.distances(), 3, 3, &w, &w, &est)
        );
        assert_eq!(
            s.score_lr(&w, &w),
            score_lr(s.distances(), 3, 3, &w, &w, &est)
        );
    }

    #[test]
    #[should_panic(expected = "tau' >= 2")]
    fn lr_with_tau_prime_one_panics() {
        let s = scorer(&[0.0, 1.0, 2.0, 5.0], 3, 1);
        s.score_lr(&equal_weights(3), &equal_weights(1));
    }

    #[test]
    fn estimator_constants_cancel() {
        // c and d shift/scale both terms of each score identically up to
        // the score's own structure; for score_KL the offset cancels
        // exactly: (c + dX) - ((c + dY) + (c + dZ))/2 = d(X - (Y+Z)/2)
        // requires checking: c - c = 0. Verify numerically.
        let positions = [0.0, 0.3, 0.7, 4.0, 4.2, 4.9];
        let base = WindowScorer::new(
            &sigs_at(&positions),
            3,
            3,
            &GroundMetric::Euclidean,
            EstimatorConfig::default(),
        )
        .unwrap();
        let shifted = WindowScorer::new(
            &sigs_at(&positions),
            3,
            3,
            &GroundMetric::Euclidean,
            EstimatorConfig {
                offset: 7.0,
                scale: 1.0,
                dist_floor: 1e-12,
            },
        )
        .unwrap();
        let w = equal_weights(3);
        assert!((base.score_kl(&w, &w) - shifted.score_kl(&w, &w)).abs() < 1e-9);
        assert!((base.score_lr(&w, &w) - shifted.score_lr(&w, &w)).abs() < 1e-9);
    }
}
