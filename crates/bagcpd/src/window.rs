//! Reference/test windows and weighting schemes (§2 Eqs. 4–5, §3.3
//! Eq. 15).

/// Weighting of the signatures inside each window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Weighting {
    /// `ψ_i = 1/τ` (resp. `1/τ'`) — what the paper uses in all of §5.
    #[default]
    Equal,
    /// Discounted per Eq. (15): weight proportional to `1/|t - i|` for
    /// the reference set and `1/|t - i + 1|` for the test set, giving
    /// more importance to bags near the inspection point.
    Discounted,
}

/// Index layout of the two windows around an inspection point `t`:
/// reference bags `t-τ .. t-1`, test bags `t .. t+τ'-1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowLayout {
    /// Reference window length τ.
    pub tau: usize,
    /// Test window length τ'.
    pub tau_prime: usize,
}

impl WindowLayout {
    /// Construct; panics are deferred to [`WindowLayout::validate`].
    pub fn new(tau: usize, tau_prime: usize) -> Self {
        WindowLayout { tau, tau_prime }
    }

    /// Check the layout is usable.
    ///
    /// # Errors
    /// Returns a description of the problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.tau == 0 {
            return Err("tau must be >= 1".into());
        }
        if self.tau_prime == 0 {
            return Err("tau' must be >= 1".into());
        }
        Ok(())
    }

    /// First inspection point with a full reference window.
    pub fn first_t(&self) -> usize {
        self.tau
    }

    /// Last inspection point (inclusive) for a sequence of `n` bags, or
    /// `None` if the sequence is too short.
    pub fn last_t(&self, n: usize) -> Option<usize> {
        if n < self.tau + self.tau_prime {
            None
        } else {
            Some(n - self.tau_prime)
        }
    }

    /// Reference indices `t-τ .. t-1` for inspection point `t`.
    pub fn ref_range(&self, t: usize) -> std::ops::Range<usize> {
        debug_assert!(t >= self.tau);
        (t - self.tau)..t
    }

    /// Test indices `t .. t+τ'-1` for inspection point `t`.
    pub fn test_range(&self, t: usize) -> std::ops::Range<usize> {
        t..(t + self.tau_prime)
    }
}

/// Equal weights summing to one.
///
/// # Panics
/// Panics if `n == 0`.
pub fn equal_weights(n: usize) -> Vec<f64> {
    let mut out = Vec::new();
    equal_weights_into(n, &mut out);
    out
}

/// Fill `out` with equal weights summing to one (allocation-free once
/// `out` has grown to `n`).
///
/// # Panics
/// Panics if `n == 0`.
pub fn equal_weights_into(n: usize, out: &mut Vec<f64>) {
    assert!(n > 0, "equal_weights: n must be >= 1");
    out.clear();
    out.resize(n, 1.0 / n as f64);
}

/// Discounted weights of Eq. (15), normalized to sum to one.
///
/// For the reference window (`is_ref = true`), bag at index `i` (global
/// time) gets weight `∝ 1/|t - i|`; for the test window, `∝ 1/|t - i + 1|`
/// (so the inspection bag itself, `i = t`, has the largest weight 1).
///
/// # Panics
/// Panics on an empty range.
pub fn discounted_weights(t: usize, range: std::ops::Range<usize>, is_ref: bool) -> Vec<f64> {
    let mut out = Vec::new();
    discounted_weights_into(t, range, is_ref, &mut out);
    out
}

/// Fill `out` with the weights of [`discounted_weights`].
///
/// # Panics
/// Panics on an empty range.
pub fn discounted_weights_into(
    t: usize,
    range: std::ops::Range<usize>,
    is_ref: bool,
    out: &mut Vec<f64>,
) {
    assert!(!range.is_empty(), "discounted_weights: empty window");
    // Eq. 15 (with its evident typo corrected): reference bag at index
    // i < t is discounted by its distance t - i from the inspection
    // point; test bag at index i >= t by i - t + 1, so the inspection bag
    // itself carries the largest weight.
    out.clear();
    for i in range {
        let gap = if is_ref {
            t as f64 - i as f64
        } else {
            i as f64 - t as f64 + 1.0
        };
        out.push(1.0 / gap.max(1.0));
    }
    let total: f64 = out.iter().sum();
    for w in out.iter_mut() {
        *w /= total;
    }
}

/// Materialize the weights for a window under a scheme.
pub fn window_weights(
    scheme: Weighting,
    t: usize,
    range: std::ops::Range<usize>,
    is_ref: bool,
) -> Vec<f64> {
    let mut out = Vec::new();
    window_weights_into(scheme, t, range, is_ref, &mut out);
    out
}

/// Fill `out` with the weights for a window under a scheme — the
/// in-place form the streaming hot path uses to avoid per-point
/// allocation.
pub fn window_weights_into(
    scheme: Weighting,
    t: usize,
    range: std::ops::Range<usize>,
    is_ref: bool,
    out: &mut Vec<f64>,
) {
    match scheme {
        Weighting::Equal => equal_weights_into(range.len(), out),
        Weighting::Discounted => discounted_weights_into(t, range, is_ref, out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_ranges() {
        let w = WindowLayout::new(5, 3);
        assert_eq!(w.first_t(), 5);
        assert_eq!(w.last_t(20), Some(17));
        assert_eq!(w.last_t(7), None);
        assert_eq!(w.ref_range(5), 0..5);
        assert_eq!(w.test_range(5), 5..8);
    }

    #[test]
    fn layout_minimum_sequence() {
        let w = WindowLayout::new(5, 5);
        assert_eq!(w.last_t(10), Some(5)); // exactly one inspection point
        assert_eq!(w.last_t(9), None);
    }

    #[test]
    fn validation() {
        assert!(WindowLayout::new(0, 3).validate().is_err());
        assert!(WindowLayout::new(3, 0).validate().is_err());
        assert!(WindowLayout::new(1, 1).validate().is_ok());
    }

    #[test]
    fn equal_weights_sum_to_one() {
        let w = equal_weights(5);
        assert_eq!(w.len(), 5);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w.iter().all(|&x| (x - 0.2).abs() < 1e-12));
    }

    #[test]
    fn discounted_ref_weights_increase_toward_t() {
        // Reference window 0..5 at t = 5: weights ∝ 1/5, 1/4, ..., 1/1.
        let w = discounted_weights(5, 0..5, true);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        for k in 1..w.len() {
            assert!(w[k] > w[k - 1], "weights must increase toward t");
        }
        // Ratio of last to first = 5.
        assert!((w[4] / w[0] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn discounted_test_weights_decrease_from_t() {
        // Test window 5..8 at t = 5: gaps 1, 2, 3.
        let w = discounted_weights(5, 5..8, false);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w[0] > w[1] && w[1] > w[2]);
        assert!((w[0] / w[2] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn into_variants_match_allocating_forms() {
        let mut buf = vec![9.0; 8]; // stale contents must be overwritten
        equal_weights_into(5, &mut buf);
        assert_eq!(buf, equal_weights(5));
        discounted_weights_into(5, 0..5, true, &mut buf);
        assert_eq!(buf, discounted_weights(5, 0..5, true));
        window_weights_into(Weighting::Discounted, 5, 5..8, false, &mut buf);
        assert_eq!(buf, window_weights(Weighting::Discounted, 5, 5..8, false));
    }

    #[test]
    fn window_weights_dispatch() {
        let eq = window_weights(Weighting::Equal, 5, 0..5, true);
        assert!((eq[0] - 0.2).abs() < 1e-12);
        let disc = window_weights(Weighting::Discounted, 5, 0..5, true);
        assert!(disc[4] > disc[0]);
    }
}
