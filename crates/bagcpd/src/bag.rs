//! The bag-of-data observation type (§2, Eq. 3).

/// A bag `B_t = {x_i}_{i=1..n_t}` of `d`-dimensional vectors observed at
/// one time step. Bag sizes may differ across time; dimensions may not.
#[derive(Debug, Clone, PartialEq)]
pub struct Bag {
    points: Vec<Vec<f64>>,
    dim: usize,
}

impl Bag {
    /// Construct a bag from its member vectors.
    ///
    /// # Panics
    /// Panics if the bag is empty, points have inconsistent dimensions,
    /// or any coordinate is non-finite.
    pub fn new(points: Vec<Vec<f64>>) -> Self {
        assert!(!points.is_empty(), "Bag: empty bag");
        let dim = points[0].len();
        assert!(dim > 0, "Bag: zero-dimensional points");
        assert!(
            points.iter().all(|p| p.len() == dim),
            "Bag: inconsistent point dimensions"
        );
        assert!(
            points.iter().all(|p| p.iter().all(|x| x.is_finite())),
            "Bag: non-finite coordinate"
        );
        Bag { points, dim }
    }

    /// Convenience: a bag of scalars (1-D vectors).
    ///
    /// # Panics
    /// As [`Bag::new`].
    pub fn from_scalars(values: impl IntoIterator<Item = f64>) -> Self {
        let points: Vec<Vec<f64>> = values.into_iter().map(|v| vec![v]).collect();
        Bag::new(points)
    }

    /// Number of members `n_t`.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always false: empty bags cannot be constructed.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Dimension `d` of the member vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The member vectors.
    pub fn points(&self) -> &[Vec<f64>] {
        &self.points
    }

    /// Consume the bag, returning its member vectors (already validated
    /// non-empty, dimension-consistent, finite).
    pub fn into_points(self) -> Vec<Vec<f64>> {
        self.points
    }

    /// Sample mean of the bag — the summarization whose information loss
    /// Fig. 1 of the paper demonstrates. Used by the baseline comparison.
    pub fn mean(&self) -> Vec<f64> {
        let mut m = vec![0.0; self.dim];
        for p in &self.points {
            for (mi, &xi) in m.iter_mut().zip(p) {
                *mi += xi;
            }
        }
        let n = self.points.len() as f64;
        for mi in &mut m {
            *mi /= n;
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let b = Bag::new(vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.dim(), 2);
        assert!(!b.is_empty());
    }

    #[test]
    fn from_scalars_builds_1d() {
        let b = Bag::from_scalars([1.0, 2.0, 3.0]);
        assert_eq!(b.dim(), 1);
        assert_eq!(b.points()[1], vec![2.0]);
    }

    #[test]
    fn mean_is_componentwise() {
        let b = Bag::new(vec![vec![0.0, 10.0], vec![2.0, 20.0]]);
        assert_eq!(b.mean(), vec![1.0, 15.0]);
    }

    #[test]
    #[should_panic(expected = "empty bag")]
    fn empty_bag_panics() {
        Bag::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "inconsistent")]
    fn ragged_bag_panics() {
        Bag::new(vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_coordinate_panics() {
        Bag::new(vec![vec![f64::NAN]]);
    }
}
