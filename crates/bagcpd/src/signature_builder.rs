//! Bridging bags to EMD signatures (§3.1).

use crate::bag::Bag;
use emd::{Chebyshev, Euclidean, GroundDistance, Manhattan, Signature};
use quantize::{
    histogram_grid, histogram_grid_with, kmeans, kmeans_with, kmedoids, kmedoids_with,
    lvq_quantize, lvq_quantize_with, ClusterScratch, HistogramScratch, HistogramSpec, KMeansConfig,
    KMedoidsConfig, LvqConfig,
};
use rand::{Rng, SeedableRng};

/// How to turn a bag into a signature.
#[derive(Debug, Clone, PartialEq)]
pub enum SignatureMethod {
    /// k-means clustering with `k` clusters (the paper's default choice).
    KMeans {
        /// Number of clusters.
        k: usize,
    },
    /// k-medoids clustering with `k` medoids.
    KMedoids {
        /// Number of medoids.
        k: usize,
    },
    /// Competitive-learning vector quantization with `k` prototypes.
    Lvq {
        /// Number of prototypes.
        k: usize,
    },
    /// Fixed-width histogram (bin width shared by all dimensions,
    /// origin 0). The natural choice for 1-D bags.
    Histogram {
        /// Bin width.
        width: f64,
    },
}

impl Default for SignatureMethod {
    fn default() -> Self {
        SignatureMethod::KMeans { k: 8 }
    }
}

/// Ground metric for the EMD (object-safe choice set).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GroundMetric {
    /// Euclidean (L2) — the conventional choice, making EMD the
    /// Wasserstein/Mallows distance.
    #[default]
    Euclidean,
    /// Manhattan (L1).
    Manhattan,
    /// Chebyshev (L∞).
    Chebyshev,
}

impl GroundMetric {
    /// Evaluate the chosen metric.
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            GroundMetric::Euclidean => Euclidean.distance(a, b),
            GroundMetric::Manhattan => Manhattan.distance(a, b),
            GroundMetric::Chebyshev => Chebyshev.distance(a, b),
        }
    }
}

impl GroundDistance for GroundMetric {
    fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        GroundMetric::distance(self, a, b)
    }
}

/// Derive the per-bag seed for position `index` of a sequence from a
/// master seed (SplitMix64-style finalizer).
///
/// Making each bag's quantizer stream a pure function of
/// `(master, index)` — rather than one RNG threaded across the whole
/// sequence — is what lets the online path (`crates/stream`) rebuild any
/// bag's signature without replaying the bags before it, and lets a
/// snapshot omit RNG state entirely.
pub fn derive_seed(master: u64, index: u64) -> u64 {
    let mut z = master
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(index.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Build the signature of the bag at sequence position `index`,
/// deterministically in `(master_seed, index)`.
///
/// This is the incremental entry point shared by [`crate::Detector`] and
/// the online detector in `crates/stream`: both produce identical
/// signatures for the same bag at the same position.
///
/// # Panics
/// As [`build_signature`].
pub fn signature_at(
    bag: &Bag,
    method: &SignatureMethod,
    master_seed: u64,
    index: u64,
) -> Signature {
    let mut rng = rand::rngs::StdRng::seed_from_u64(derive_seed(master_seed, index));
    build_signature(bag, method, &mut rng)
}

/// Buffer-recycling state for [`signature_at_with`]: histogram working
/// tables plus pools of dismantled signatures ([`SignatureScratch::recycle`])
/// whose point lists and weight buffers seed the next build.
///
/// A warm scratch makes the whole signature build **zero-allocation**
/// for every method: the retiring signature's buffers become the new
/// signature's storage, the histogram tables are rebinned in place, and
/// the clustering quantizers run entirely inside [`ClusterScratch`].
#[derive(Debug, Clone, Default)]
pub struct SignatureScratch {
    hist: HistogramScratch,
    /// Reused binning spec (rewritten in place per build — its two
    /// per-dimension vectors are the only other per-build storage).
    spec: Option<HistogramSpec>,
    /// Working state for the scratch-backed clustering quantizers.
    cluster: ClusterScratch,
    /// Recycled point lists (outer vector plus its inner vectors).
    points: Vec<Vec<Vec<f64>>>,
    /// Recycled weight buffers.
    weights: Vec<Vec<f64>>,
}

/// Pools are capped so a caller that recycles without ever drawing (a
/// clustering-method stream) stays bounded.
const SIG_POOL_CAP: usize = 8;

impl SignatureScratch {
    /// Empty scratch; pools grow to the workload's shape on first use.
    pub fn new() -> Self {
        SignatureScratch::default()
    }

    /// Dismantle a retiring signature (e.g. the one just evicted from a
    /// stream's window) into the pools for the next build to reuse.
    pub fn recycle(&mut self, sig: Signature) {
        let (points, weights) = sig.into_parts();
        if self.points.len() < SIG_POOL_CAP {
            self.points.push(points);
        }
        if self.weights.len() < SIG_POOL_CAP {
            self.weights.push(weights);
        }
    }
}

/// As [`signature_at`], but drawing the signature's buffers from a
/// caller-kept [`SignatureScratch`] — bit-identical output. With a warm
/// scratch the build touches no heap for any method: the histogram is
/// rebinned into recycled tables, and the clustering quantizers run
/// their scratch-backed `*_with` variants on recycled center rows.
///
/// # Panics
/// As [`build_signature`].
pub fn signature_at_with(
    bag: &Bag,
    method: &SignatureMethod,
    master_seed: u64,
    index: u64,
    scratch: &mut SignatureScratch,
) -> Signature {
    let SignatureMethod::Histogram { width } = method else {
        let mut rng = rand::rngs::StdRng::seed_from_u64(derive_seed(master_seed, index));
        let mut centers = scratch.points.pop().unwrap_or_default();
        let mut sig_weights = scratch.weights.pop().unwrap_or_default();
        match method {
            SignatureMethod::KMeans { k } => kmeans_with(
                bag.points(),
                &KMeansConfig::with_k(*k),
                &mut rng,
                &mut scratch.cluster,
                &mut centers,
                &mut sig_weights,
            ),
            SignatureMethod::KMedoids { k } => kmedoids_with(
                bag.points(),
                &KMedoidsConfig::with_k(*k),
                &mut rng,
                &mut scratch.cluster,
                &mut centers,
                &mut sig_weights,
            ),
            SignatureMethod::Lvq { k } => lvq_quantize_with(
                bag.points(),
                &LvqConfig::with_k(*k),
                &mut rng,
                &mut scratch.cluster,
                &mut centers,
                &mut sig_weights,
            ),
            // lint:allow(NO_PANIC_SURFACE, the let-else above diverted every histogram request)
            SignatureMethod::Histogram { .. } => unreachable!("handled by the let-else above"),
        }
        return Signature::new(centers, sig_weights)
            // lint:allow(NO_PANIC_SURFACE, quantizers emit non-empty positive-weight clusters by construction)
            .expect("quantization always yields a valid signature");
    };
    let SignatureScratch {
        hist,
        spec,
        points,
        weights,
        ..
    } = scratch;
    // Empty vecs: filled by the resizes below, no allocation here.
    let spec = spec.get_or_insert_with(HistogramSpec::default);
    spec.origin.clear();
    spec.origin.resize(bag.dim(), 0.0);
    spec.width.clear();
    spec.width.resize(bag.dim(), *width);
    let mut centers = points.pop().unwrap_or_default();
    let mut sig_weights = weights.pop().unwrap_or_default();
    histogram_grid_with(bag.points(), spec, hist, &mut centers, &mut sig_weights);
    Signature::new(centers, sig_weights).expect("quantization always yields a valid signature")
}

/// Build the signature of one bag with the chosen method.
///
/// The RNG drives quantizer initialization (k-means++ seeding etc.);
/// histograms ignore it.
///
/// # Panics
/// Panics on invalid method parameters (zero `k`, non-positive width) —
/// these are caught earlier by `DetectorConfig::validate` when used
/// through the detector.
pub fn build_signature(bag: &Bag, method: &SignatureMethod, rng: &mut impl Rng) -> Signature {
    let q = match method {
        SignatureMethod::KMeans { k } => kmeans(bag.points(), &KMeansConfig::with_k(*k), rng),
        SignatureMethod::KMedoids { k } => kmedoids(bag.points(), &KMedoidsConfig::with_k(*k), rng),
        SignatureMethod::Lvq { k } => lvq_quantize(bag.points(), &LvqConfig::with_k(*k), rng),
        SignatureMethod::Histogram { width } => histogram_grid(
            bag.points(),
            &HistogramSpec::uniform(bag.dim(), 0.0, *width),
        ),
    };
    Signature::from_counts(q.centers, &q.counts)
        .expect("quantization always yields a valid signature")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    fn bag() -> Bag {
        Bag::new(
            (0..60)
                .map(|i| vec![(i % 6) as f64, (i % 3) as f64])
                .collect(),
        )
    }

    #[test]
    fn kmeans_signature_mass_equals_bag_size() {
        let s = build_signature(&bag(), &SignatureMethod::KMeans { k: 4 }, &mut rng());
        assert_eq!(s.total_weight(), 60.0);
        assert!(s.len() <= 4);
    }

    #[test]
    fn kmedoids_signature() {
        let s = build_signature(&bag(), &SignatureMethod::KMedoids { k: 3 }, &mut rng());
        assert_eq!(s.total_weight(), 60.0);
        assert!(s.len() <= 3);
    }

    #[test]
    fn lvq_signature() {
        let s = build_signature(&bag(), &SignatureMethod::Lvq { k: 5 }, &mut rng());
        assert_eq!(s.total_weight(), 60.0);
    }

    #[test]
    fn histogram_signature_is_deterministic() {
        let a = build_signature(
            &bag(),
            &SignatureMethod::Histogram { width: 1.0 },
            &mut rng(),
        );
        let b = build_signature(
            &bag(),
            &SignatureMethod::Histogram { width: 1.0 },
            &mut rng(),
        );
        assert_eq!(a, b);
        assert_eq!(a.total_weight(), 60.0);
    }

    #[test]
    fn signature_at_with_matches_signature_at() {
        let mut scratch = SignatureScratch::new();
        // Histogram path through a dirty, recycling scratch; shapes vary.
        for t in 0..6u64 {
            let b = Bag::new(
                (0..30 + 7 * t as usize)
                    .map(|i| vec![(i % (3 + t as usize)) as f64 * 0.4, (i % 5) as f64])
                    .collect(),
            );
            let method = SignatureMethod::Histogram { width: 0.5 };
            let plain = signature_at(&b, &method, 7, t);
            let pooled = signature_at_with(&b, &method, 7, t, &mut scratch);
            assert_eq!(plain, pooled, "histogram build must be bit-identical");
            scratch.recycle(pooled);
        }
        // Clustering methods run their scratch-backed builds — still
        // bit-identical through the same dirty, recycling scratch.
        for (t, method) in [
            SignatureMethod::KMeans { k: 4 },
            SignatureMethod::KMedoids { k: 3 },
            SignatureMethod::Lvq { k: 5 },
            SignatureMethod::KMeans { k: 9 },
        ]
        .into_iter()
        .enumerate()
        {
            let b = bag();
            let plain = signature_at(&b, &method, 7, t as u64);
            let pooled = signature_at_with(&b, &method, 7, t as u64, &mut scratch);
            assert_eq!(plain, pooled, "{method:?} build must be bit-identical");
            scratch.recycle(pooled);
        }
    }

    #[test]
    fn signature_scratch_pools_stay_bounded() {
        let mut scratch = SignatureScratch::new();
        for _ in 0..50 {
            scratch.recycle(Signature::new(vec![vec![1.0]], vec![1.0]).unwrap());
        }
        assert!(scratch.points.len() <= SIG_POOL_CAP);
        assert!(scratch.weights.len() <= SIG_POOL_CAP);
    }

    #[test]
    fn signature_at_is_position_deterministic() {
        let b = bag();
        let method = SignatureMethod::KMeans { k: 4 };
        let a1 = signature_at(&b, &method, 7, 3);
        let a2 = signature_at(&b, &method, 7, 3);
        assert_eq!(a1, a2, "same (seed, index) -> same signature");
        // Different positions draw different quantizer streams.
        assert_ne!(derive_seed(7, 3), derive_seed(7, 4));
        assert_ne!(derive_seed(7, 3), derive_seed(8, 3));
    }

    #[test]
    fn ground_metric_dispatch() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert!((GroundMetric::Euclidean.distance(&a, &b) - 5.0).abs() < 1e-12);
        assert!((GroundMetric::Manhattan.distance(&a, &b) - 7.0).abs() < 1e-12);
        assert!((GroundMetric::Chebyshev.distance(&a, &b) - 4.0).abs() < 1e-12);
    }
}
