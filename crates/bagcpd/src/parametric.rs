//! Parametric bag modeling — the alternative §3.1 discusses and
//! rejects for generality, implemented here as an ablation reference.
//!
//! "If we could model `P_{B_t}` parametrically, we can reduce the
//! problem to the ordinary change-point detection problem of the
//! parameters of each `P_{B_t}`. Parametric approaches are known to
//! perform better in situations where data come from a specific family
//! of distributions […] However, applicability of parametric models
//! are limited in real-world situations."
//!
//! Each bag is fitted with a Gaussian (mean + diagonal covariance); the
//! distance between bags is the symmetrized KL divergence between the
//! fitted Gaussians, which substitutes for the EMD in the same
//! window-scoring machinery. On truly Gaussian bags this is sharp; on
//! mixture-shaped bags (Fig. 1!) the Gaussian fit is blind to the shape
//! change — exactly the failure the paper predicts.

use crate::bag::Bag;
use infoest::DistanceMatrix;

/// A Gaussian fit of one bag: sample mean and *diagonal* sample
/// variance per dimension (floored for numerical safety).
#[derive(Debug, Clone, PartialEq)]
pub struct GaussianFit {
    /// Per-dimension mean.
    pub mean: Vec<f64>,
    /// Per-dimension variance (diagonal covariance), floored at `1e-12`.
    pub var: Vec<f64>,
}

impl GaussianFit {
    /// Fit a bag.
    pub fn fit(bag: &Bag) -> GaussianFit {
        let d = bag.dim();
        let n = bag.len() as f64;
        let mut mean = vec![0.0; d];
        for p in bag.points() {
            for (m, &x) in mean.iter_mut().zip(p) {
                *m += x;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut var = vec![0.0; d];
        for p in bag.points() {
            for (v, (&x, &m)) in var.iter_mut().zip(p.iter().zip(&mean)) {
                *v += (x - m) * (x - m);
            }
        }
        for v in &mut var {
            *v = (*v / n).max(1e-12);
        }
        GaussianFit { mean, var }
    }

    /// KL divergence `KL(self || other)` between the two diagonal
    /// Gaussians (closed form).
    pub fn kl(&self, other: &GaussianFit) -> f64 {
        debug_assert_eq!(self.mean.len(), other.mean.len());
        let mut acc = 0.0;
        for c in 0..self.mean.len() {
            let (m0, v0) = (self.mean[c], self.var[c]);
            let (m1, v1) = (other.mean[c], other.var[c]);
            acc += 0.5 * ((v1 / v0).ln() + (v0 + (m0 - m1) * (m0 - m1)) / v1 - 1.0);
        }
        acc
    }

    /// Symmetrized KL — a proper dissimilarity for the window scorer.
    pub fn symmetric_kl(&self, other: &GaussianFit) -> f64 {
        0.5 * (self.kl(other) + other.kl(self))
    }
}

/// Pairwise symmetrized-KL matrix among Gaussian fits of the bags —
/// the parametric stand-in for the pairwise EMD matrix.
///
/// # Panics
/// Panics if bag dimensions disagree.
pub fn parametric_distance_matrix(bags: &[Bag]) -> DistanceMatrix {
    let fits: Vec<GaussianFit> = bags.iter().map(GaussianFit::fit).collect();
    let n = fits.len();
    let mut data = vec![0.0; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = fits[i].symmetric_kl(&fits[j]).max(0.0);
            data[i * n + j] = d;
            data[j * n + i] = d;
        }
    }
    DistanceMatrix::from_vec(n, n, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::WindowScorer;
    use crate::window::equal_weights;
    use infoest::EstimatorConfig;

    fn bag_at(level: f64, spread: f64) -> Bag {
        Bag::from_scalars((0..60).map(|i| level + spread * (((i * 7) % 13) as f64 - 6.0) / 6.0))
    }

    /// Bimodal bag with mean ~level: mass at level ± split.
    fn bimodal_bag(level: f64, split: f64) -> Bag {
        Bag::from_scalars((0..60).map(|i| {
            let side = if i % 2 == 0 { -1.0 } else { 1.0 };
            level + side * split + (((i * 7) % 13) as f64 - 6.0) * 0.02
        }))
    }

    #[test]
    fn fit_recovers_moments() {
        let b = bag_at(3.0, 1.0);
        let f = GaussianFit::fit(&b);
        assert!((f.mean[0] - 3.0).abs() < 0.2);
        assert!(f.var[0] > 0.05 && f.var[0] < 1.0);
    }

    #[test]
    fn kl_zero_for_identical_positive_otherwise() {
        let f = GaussianFit::fit(&bag_at(0.0, 1.0));
        assert!(f.kl(&f).abs() < 1e-12);
        let g = GaussianFit::fit(&bag_at(5.0, 1.0));
        assert!(f.kl(&g) > 1.0);
        assert!((f.symmetric_kl(&g) - g.symmetric_kl(&f)).abs() < 1e-12);
    }

    #[test]
    fn parametric_detects_mean_shift() {
        // On a genuinely Gaussian-ish mean shift the parametric distance
        // matrix powers the same window scorer successfully.
        let bags: Vec<Bag> = (0..12)
            .map(|t| bag_at(if t < 6 { 0.0 } else { 4.0 }, 1.0))
            .collect();
        let dist = parametric_distance_matrix(&bags);
        // Window around the change (t=6): ref bags 2..6, test 6..10.
        let scorer = WindowScorer::from_distances(
            dist.block(2..10, 2..10),
            4,
            4,
            EstimatorConfig::default(),
        );
        let at_change = scorer.score_kl(&equal_weights(4), &equal_weights(4));
        // Window fully before the change: ref 0..4, test 4..8 would
        // straddle; use a homogeneous stretch 0..8 from a no-change
        // sequence for contrast.
        let quiet: Vec<Bag> = (0..8).map(|_| bag_at(0.0, 1.0)).collect();
        let qdist = parametric_distance_matrix(&quiet);
        let qscorer = WindowScorer::from_distances(qdist, 4, 4, EstimatorConfig::default());
        let at_quiet = qscorer.score_kl(&equal_weights(4), &equal_weights(4));
        assert!(
            at_change > at_quiet + 1.0,
            "parametric scorer: change {at_change} vs quiet {at_quiet}"
        );
    }

    #[test]
    fn parametric_is_blind_to_shape_change_with_fixed_moments() {
        // The Fig. 1 failure mode: unimodal -> bimodal with matched mean
        // AND variance. Construct spreads so the two shapes share both
        // moments; the Gaussian fit then cannot distinguish them.
        let uni = bag_at(0.0, 1.0);
        let f_uni = GaussianFit::fit(&uni);
        let sd = f_uni.var[0].sqrt();
        // Bimodal at ±sd has the same mean and (approximately) the same
        // variance as the unimodal bag.
        let bi = bimodal_bag(0.0, sd);
        let f_bi = GaussianFit::fit(&bi);
        let d = f_uni.symmetric_kl(&f_bi);
        assert!(
            d < 0.1,
            "Gaussian fits cannot see the mode split: distance {d}"
        );
        // The EMD does see it: compare against the nonparametric path.
        use crate::signature_builder::{build_signature, GroundMetric, SignatureMethod};
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let method = SignatureMethod::Histogram { width: 0.25 };
        let s_uni = build_signature(&uni, &method, &mut rng);
        let s_bi = build_signature(&bi, &method, &mut rng);
        let emd_dist = emd::emd(&s_uni, &s_bi, &GroundMetric::Euclidean).expect("emd");
        assert!(
            emd_dist > 5.0 * d.max(0.01),
            "EMD must see what the Gaussian fit cannot: emd {emd_dist} vs kl {d}"
        );
    }

    #[test]
    fn distance_matrix_is_symmetric_zero_diagonal() {
        let bags: Vec<Bag> = (0..5).map(|t| bag_at(t as f64, 1.0)).collect();
        let m = parametric_distance_matrix(&bags);
        for i in 0..5 {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..5 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
    }
}
