//! End-to-end detector: bags in, scores + confidence intervals + alerts
//! out (§§2–4 assembled).

use crate::bag::Bag;
use crate::bootstrap::{bootstrap_ci_with, BootstrapConfig, BootstrapScratch, ConfidenceInterval};
use crate::error::DetectError;
use crate::score::{EmdSolver, ScoreKind, SolverScratch, WindowScorer};
use crate::signature_builder::{derive_seed, signature_at, GroundMetric, SignatureMethod};
use crate::window::{window_weights, window_weights_into, Weighting, WindowLayout};
use emd::Signature;
use infoest::{DistanceMatrix, EstimatorConfig};
use rand::SeedableRng;

/// Seed of the bootstrap RNG at inspection point `t` for a master seed.
///
/// Each inspection point draws its replicate weights from an independent
/// stream that is a pure function of `(seed, t)`: the batch detector and
/// the online detector in `crates/stream` therefore produce identical
/// confidence intervals for the same window, and resuming a restored
/// stream needs no RNG state.
pub fn bootstrap_seed(seed: u64, t: usize) -> u64 {
    derive_seed(seed ^ 0x9e37_79b9_7f4a_7c15, t as u64)
}

/// Full configuration of the detection pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct DetectorConfig {
    /// Reference window length τ (number of bags before the inspection
    /// point).
    pub tau: usize,
    /// Test window length τ' (number of bags from the inspection point
    /// onward).
    pub tau_prime: usize,
    /// Which change-point score to use (Eq. 16 vs Eq. 17).
    pub score: ScoreKind,
    /// Weighting of signatures inside the windows (equal or Eq. 15
    /// discounted).
    pub weighting: Weighting,
    /// How bags are quantized into signatures.
    pub signature: SignatureMethod,
    /// Ground distance for the EMD.
    pub metric: GroundMetric,
    /// Optimal-transport solver (exact simplex by default; Sinkhorn as
    /// a fast approximation for large signatures).
    pub solver: EmdSolver,
    /// Constants of the information estimators (defaults are fine: they
    /// cancel in the scores).
    pub estimator: EstimatorConfig,
    /// Bayesian-bootstrap settings (replicates, α, threads).
    pub bootstrap: BootstrapConfig,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            tau: 5,
            tau_prime: 5,
            score: ScoreKind::SymmetrizedKl,
            weighting: Weighting::Equal,
            signature: SignatureMethod::default(),
            metric: GroundMetric::Euclidean,
            solver: EmdSolver::default(),
            estimator: EstimatorConfig::default(),
            bootstrap: BootstrapConfig::default(),
        }
    }
}

impl DetectorConfig {
    /// Validate all parameters.
    ///
    /// # Errors
    /// [`DetectError::BadConfig`] with a human-readable reason.
    pub fn validate(&self) -> Result<(), DetectError> {
        WindowLayout::new(self.tau, self.tau_prime)
            .validate()
            .map_err(DetectError::BadConfig)?;
        if self.score == ScoreKind::LikelihoodRatio && self.tau_prime < 2 {
            return Err(DetectError::BadConfig(
                "likelihood-ratio score requires tau' >= 2".into(),
            ));
        }
        self.bootstrap.validate().map_err(DetectError::BadConfig)?;
        match &self.signature {
            SignatureMethod::KMeans { k }
            | SignatureMethod::KMedoids { k }
            | SignatureMethod::Lvq { k } => {
                if *k == 0 {
                    return Err(DetectError::BadConfig("quantizer k must be >= 1".into()));
                }
            }
            SignatureMethod::Histogram { width } => {
                if !(width.is_finite() && *width > 0.0) {
                    return Err(DetectError::BadConfig(
                        "histogram width must be finite and > 0".into(),
                    ));
                }
            }
        }
        match &self.solver {
            EmdSolver::Exact => {}
            EmdSolver::Sinkhorn(cfg) => cfg.validate().map_err(DetectError::BadConfig)?,
            EmdSolver::Tiered(cfg) => {
                if let Some(eps) = cfg.epsilon {
                    if !(eps.is_finite() && eps > 0.0) {
                        return Err(DetectError::BadConfig(
                            "tiered epsilon must be finite and > 0".into(),
                        ));
                    }
                    // The estimate tier only runs in bounded-error mode.
                    cfg.estimate.validate().map_err(DetectError::BadConfig)?;
                }
            }
        }
        Ok(())
    }
}

/// Reusable buffers for one inspection-point evaluation: the nominal
/// window weights plus the bootstrap's [`BootstrapScratch`].
///
/// [`Detector::evaluate_point_with`] fills these instead of allocating;
/// a long-lived caller (the per-worker tick loop in `crates/stream`)
/// keeps one scratch and reuses it across every stream and every
/// inspection point it evaluates. Results are bit-identical to the
/// allocating [`Detector::evaluate_point`].
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    /// Nominal reference-window weights.
    ref_weights: Vec<f64>,
    /// Nominal test-window weights.
    test_weights: Vec<f64>,
    /// Bootstrap replicate buffers.
    bootstrap: BootstrapScratch,
}

impl EvalScratch {
    /// Empty scratch; buffers grow to the detector's shape on first use.
    pub fn new() -> Self {
        EvalScratch::default()
    }
}

/// Score, confidence interval, and alert decision at one inspection
/// point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScorePoint {
    /// Inspection time index `t` (into the bag sequence).
    pub t: usize,
    /// Change-point score with the nominal window weights.
    pub score: f64,
    /// Bayesian-bootstrap confidence interval at `t`.
    pub ci: ConfidenceInterval,
    /// Test statistic `ξ_t = θ_lo(t) - θ_up(t - τ')` (Eq. 20), when the
    /// earlier interval exists.
    pub xi: Option<f64>,
    /// Whether a significant change was declared (`ξ_t > 0`, Eq. 18).
    pub alert: bool,
}

/// Result of analyzing a bag sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct Detection {
    /// One entry per inspection point `t = τ ..= n - τ'`.
    pub points: Vec<ScorePoint>,
}

impl Detection {
    /// Indices of the inspection points where an alert was raised.
    pub fn alerts(&self) -> Vec<usize> {
        self.points
            .iter()
            .filter(|p| p.alert)
            .map(|p| p.t)
            .collect()
    }

    /// The inspection point with the highest score, if any.
    pub fn peak(&self) -> Option<&ScorePoint> {
        self.points
            .iter()
            .max_by(|a, b| a.score.partial_cmp(&b.score).expect("finite scores"))
    }

    /// Segment the sequence at the alerts: returns half-open `[start,
    /// end)` ranges over bag indices covering `0..n`, split at each
    /// alert (consecutive alerts produce consecutive short segments).
    /// This is the "segment time-series data beforehand" use the paper's
    /// introduction motivates.
    pub fn segments(&self, n: usize) -> Vec<std::ops::Range<usize>> {
        let mut cuts: Vec<usize> = self
            .alerts()
            .into_iter()
            .filter(|&t| t > 0 && t < n)
            .collect();
        cuts.dedup();
        let mut out = Vec::with_capacity(cuts.len() + 1);
        let mut start = 0usize;
        for c in cuts {
            out.push(start..c);
            start = c;
        }
        out.push(start..n);
        out
    }
}

/// The configured detection pipeline.
#[derive(Debug, Clone)]
pub struct Detector {
    cfg: DetectorConfig,
}

impl Detector {
    /// Build a detector, validating the configuration.
    ///
    /// # Errors
    /// [`DetectError::BadConfig`] for invalid parameters.
    pub fn new(cfg: DetectorConfig) -> Result<Self, DetectError> {
        cfg.validate()?;
        Ok(Detector { cfg })
    }

    /// The configuration.
    pub fn config(&self) -> &DetectorConfig {
        &self.cfg
    }

    /// Window layout implied by the configuration.
    pub fn layout(&self) -> WindowLayout {
        WindowLayout::new(self.cfg.tau, self.cfg.tau_prime)
    }

    /// Quantize every bag into a signature (deterministic in `seed`).
    ///
    /// Each bag's quantizer stream depends only on `(seed, position)`
    /// (see [`signature_at`]), so an online consumer can reproduce any
    /// single signature without the bags before it.
    ///
    /// # Errors
    /// [`DetectError::DimensionMismatch`] if bag dimensions disagree.
    pub fn signatures(&self, bags: &[Bag], seed: u64) -> Result<Vec<Signature>, DetectError> {
        if bags.is_empty() {
            return Ok(Vec::new());
        }
        let d = bags[0].dim();
        if bags.iter().any(|b| b.dim() != d) {
            return Err(DetectError::DimensionMismatch);
        }
        Ok(bags
            .iter()
            .enumerate()
            .map(|(i, b)| signature_at(b, &self.cfg.signature, seed, i as u64))
            .collect())
    }

    /// Full pairwise EMD matrix among signatures (used for the Fig. 6
    /// EMD heat map and MDS embedding).
    ///
    /// # Errors
    /// Propagates EMD failures.
    pub fn pairwise_emd(&self, sigs: &[Signature]) -> Result<DistanceMatrix, DetectError> {
        let mut scratch = SolverScratch::new();
        let n = sigs.len();
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = self.cfg.solver.distance_with(
                    &sigs[i],
                    &sigs[j],
                    &self.cfg.metric,
                    &mut scratch,
                )?;
                data[i * n + j] = d;
                data[j * n + i] = d;
            }
        }
        Ok(DistanceMatrix::from_vec(n, n, data))
    }

    /// Change-point scores only (no bootstrap), for cheap sweeps and
    /// benchmarking. Returns `(t, score)` pairs.
    ///
    /// # Errors
    /// As [`Detector::analyze`].
    pub fn score_series(&self, bags: &[Bag], seed: u64) -> Result<Vec<(usize, f64)>, DetectError> {
        let (sigs, band) = self.prepare(bags, seed)?;
        let layout = self.layout();
        let last = layout.last_t(bags.len()).expect("validated in prepare");
        let mut out = Vec::with_capacity(last + 1 - layout.first_t());
        for t in layout.first_t()..=last {
            let scorer = self.window_scorer(&sigs, &band, t)?;
            let (wr, wt) = self.weights(t);
            out.push((t, scorer.score(self.cfg.score, &wr, &wt)));
        }
        Ok(out)
    }

    /// Run the full pipeline: scores, bootstrap confidence intervals, and
    /// adaptive alerts.
    ///
    /// # Errors
    /// [`DetectError::SequenceTooShort`] if fewer than `τ + τ'` bags,
    /// [`DetectError::DimensionMismatch`] for ragged dimensions, or EMD
    /// failures.
    pub fn analyze(&self, bags: &[Bag], seed: u64) -> Result<Detection, DetectError> {
        let (sigs, band) = self.prepare(bags, seed)?;
        let layout = self.layout();
        let last = layout.last_t(bags.len()).expect("validated in prepare");

        let mut scratch = EvalScratch::new();
        let mut points: Vec<ScorePoint> = Vec::with_capacity(last + 1 - layout.first_t());
        for t in layout.first_t()..=last {
            let scorer = self.window_scorer(&sigs, &band, t)?;
            // Eq. 20: compare with the interval one test-window back so
            // the two test sets share no bags.
            let prev_ci_up = t
                .checked_sub(self.cfg.tau_prime)
                .filter(|prev| *prev >= layout.first_t())
                .map(|prev| points[prev - layout.first_t()].ci.up);
            points.push(self.evaluate_point_with(&scorer, t, prev_ci_up, seed, &mut scratch));
        }
        Ok(Detection { points })
    }

    /// Evaluate one inspection point from its window scorer: nominal
    /// score, Bayesian-bootstrap CI (seeded per-point, see
    /// [`bootstrap_seed`]), and the Eq. 18/20 alert decision given the
    /// upper CI bound from one test-window back (`None` while that
    /// earlier inspection point does not exist).
    ///
    /// This is the single evaluation path shared by [`Detector::analyze`]
    /// and the incremental detector in `crates/stream`, which is what
    /// guarantees stream/batch score and alert parity.
    pub fn evaluate_point(
        &self,
        scorer: &WindowScorer,
        t: usize,
        prev_ci_up: Option<f64>,
        seed: u64,
    ) -> ScorePoint {
        self.evaluate_point_with(scorer, t, prev_ci_up, seed, &mut EvalScratch::new())
    }

    /// As [`Detector::evaluate_point`], but allocation-free: every
    /// buffer (nominal weights, bootstrap seeds/weights/scores) comes
    /// from `scratch`, which the caller keeps alive across inspection
    /// points and streams. Bit-identical to the allocating form.
    pub fn evaluate_point_with(
        &self,
        scorer: &WindowScorer,
        t: usize,
        prev_ci_up: Option<f64>,
        seed: u64,
        scratch: &mut EvalScratch,
    ) -> ScorePoint {
        let layout = self.layout();
        window_weights_into(
            self.cfg.weighting,
            t,
            layout.ref_range(t),
            true,
            &mut scratch.ref_weights,
        );
        window_weights_into(
            self.cfg.weighting,
            t,
            layout.test_range(t),
            false,
            &mut scratch.test_weights,
        );
        let score = scorer.score(self.cfg.score, &scratch.ref_weights, &scratch.test_weights);
        let mut rng = rand::rngs::StdRng::seed_from_u64(bootstrap_seed(seed, t));
        let ci = bootstrap_ci_with(
            scorer,
            self.cfg.score,
            &scratch.ref_weights,
            &scratch.test_weights,
            &self.cfg.bootstrap,
            &mut rng,
            &mut scratch.bootstrap,
        );
        let xi = prev_ci_up.map(|up| ci.lo - up);
        let alert = xi.is_some_and(|x| x > 0.0);
        ScorePoint {
            t,
            score,
            ci,
            xi,
            alert,
        }
    }

    /// Shared front half: validate, build signatures, compute the banded
    /// distance matrix (pairs closer than one window width).
    fn prepare(
        &self,
        bags: &[Bag],
        seed: u64,
    ) -> Result<(Vec<Signature>, DistanceMatrix), DetectError> {
        let need = self.cfg.tau + self.cfg.tau_prime;
        if bags.len() < need {
            return Err(DetectError::SequenceTooShort {
                got: bags.len(),
                need,
            });
        }
        let sigs = self.signatures(bags, seed)?;
        // One solver scratch across the whole band: the batch sweep pays
        // for its simplex tableaus once, exactly like the streaming
        // workers do per tick.
        let mut scratch = SolverScratch::new();
        let n = sigs.len();
        let width = need; // only pairs inside one window are ever read
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            let jmax = (i + width).min(n);
            for j in (i + 1)..jmax {
                let d = self.cfg.solver.distance_with(
                    &sigs[i],
                    &sigs[j],
                    &self.cfg.metric,
                    &mut scratch,
                )?;
                data[i * n + j] = d;
                data[j * n + i] = d;
            }
        }
        Ok((sigs, DistanceMatrix::from_vec(n, n, data)))
    }

    /// Extract the window block of the banded matrix as a scorer.
    fn window_scorer(
        &self,
        _sigs: &[Signature],
        band: &DistanceMatrix,
        t: usize,
    ) -> Result<WindowScorer, DetectError> {
        let layout = self.layout();
        let lo = t - self.cfg.tau;
        let hi = t + self.cfg.tau_prime;
        debug_assert!(hi <= band.rows());
        debug_assert_eq!(layout.ref_range(t).start, lo);
        let block = band.block(lo..hi, lo..hi);
        Ok(WindowScorer::from_distances(
            block,
            self.cfg.tau,
            self.cfg.tau_prime,
            self.cfg.estimator,
        ))
    }

    /// Nominal window weights at inspection point `t`.
    fn weights(&self, t: usize) -> (Vec<f64>, Vec<f64>) {
        let layout = self.layout();
        (
            window_weights(self.cfg.weighting, t, layout.ref_range(t), true),
            window_weights(self.cfg.weighting, t, layout.test_range(t), false),
        )
    }
}

/// Streaming wrapper: push bags one at a time, get a [`ScorePoint`] as
/// soon as each inspection point completes (i.e. with a delay of τ'
/// bags).
#[derive(Debug, Clone)]
pub struct StreamingDetector {
    detector: Detector,
    bags: Vec<Bag>,
    emitted: usize,
    seed: u64,
}

impl StreamingDetector {
    /// Wrap a detector for online use.
    pub fn new(detector: Detector, seed: u64) -> Self {
        StreamingDetector {
            detector,
            bags: Vec::new(),
            emitted: 0,
            seed,
        }
    }

    /// Number of bags consumed so far.
    pub fn len(&self) -> usize {
        self.bags.len()
    }

    /// Whether no bags have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.bags.is_empty()
    }

    /// Push the next bag; returns the newly completed score points (0 or
    /// 1 of them, once warm).
    ///
    /// # Errors
    /// As [`Detector::analyze`]. Note the analysis is recomputed over the
    /// retained window, reusing the same seed, so results match the batch
    /// API on the same prefix.
    pub fn push(&mut self, bag: Bag) -> Result<Vec<ScorePoint>, DetectError> {
        self.bags.push(bag);
        let layout = self.detector.layout();
        let Some(last) = layout.last_t(self.bags.len()) else {
            return Ok(Vec::new());
        };
        let first = layout.first_t();
        let pending: Vec<usize> = (first..=last).skip(self.emitted).collect();
        if pending.is_empty() {
            return Ok(Vec::new());
        }
        // Recompute over the full retained sequence; deterministic seed
        // keeps this consistent with batch analysis.
        let detection = self.detector.analyze(&self.bags, self.seed)?;
        let newly: Vec<ScorePoint> = detection.points.into_iter().skip(self.emitted).collect();
        self.emitted += newly.len();
        Ok(newly)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bags with a hard mean shift at `change_at`.
    fn shifted_bags(n: usize, change_at: usize, magnitude: f64) -> Vec<Bag> {
        (0..n)
            .map(|t| {
                let level = if t < change_at { 0.0 } else { magnitude };
                // 40 deterministic points spread around the level.
                Bag::from_scalars((0..40).map(move |i| level + ((i * 7 + t) % 11) as f64 * 0.05))
            })
            .collect()
    }

    fn small_config() -> DetectorConfig {
        DetectorConfig {
            tau: 4,
            tau_prime: 4,
            bootstrap: BootstrapConfig {
                replicates: 100,
                ..Default::default()
            },
            signature: SignatureMethod::Histogram { width: 0.25 },
            ..Default::default()
        }
    }

    #[test]
    fn detects_hard_mean_shift() {
        // Seed 2 is an arbitrary draw where the bootstrap margin xi > 0
        // holds comfortably (the alert criterion is a threshold on
        // resampled CIs, so not every seed clears it even for a 5-sigma
        // shift; the peak location below is seed-independent).
        let bags = shifted_bags(24, 12, 5.0);
        let det = Detector::new(small_config()).unwrap();
        let out = det.analyze(&bags, 2).unwrap();
        let peak = out.peak().unwrap();
        assert!(
            (peak.t as i64 - 12).unsigned_abs() <= 2,
            "peak at t={} (expected near 12)",
            peak.t
        );
        assert!(
            !out.alerts().is_empty(),
            "an alert should fire for a 5-sigma shift"
        );
    }

    #[test]
    fn stationary_sequence_raises_no_alert() {
        let bags = shifted_bags(24, 100, 0.0); // no change inside the window
        let det = Detector::new(small_config()).unwrap();
        let out = det.analyze(&bags, 2).unwrap();
        assert!(out.alerts().is_empty(), "alerts: {:?}", out.alerts());
    }

    #[test]
    fn score_series_matches_analyze_scores() {
        let bags = shifted_bags(20, 10, 3.0);
        let det = Detector::new(small_config()).unwrap();
        let series = det.score_series(&bags, 3).unwrap();
        let full = det.analyze(&bags, 3).unwrap();
        assert_eq!(series.len(), full.points.len());
        for (s, p) in series.iter().zip(&full.points) {
            assert_eq!(s.0, p.t);
            assert!((s.1 - p.score).abs() < 1e-12);
        }
    }

    #[test]
    fn analysis_is_deterministic() {
        let bags = shifted_bags(20, 10, 3.0);
        let det = Detector::new(small_config()).unwrap();
        let a = det.analyze(&bags, 5).unwrap();
        let b = det.analyze(&bags, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn too_short_sequence_rejected() {
        let bags = shifted_bags(7, 3, 1.0);
        let det = Detector::new(small_config()).unwrap();
        assert!(matches!(
            det.analyze(&bags, 1),
            Err(DetectError::SequenceTooShort { got: 7, need: 8 })
        ));
    }

    #[test]
    fn ragged_dimensions_rejected() {
        let mut bags = shifted_bags(10, 5, 1.0);
        bags.push(Bag::new(vec![vec![0.0, 0.0]; 5]));
        let det = Detector::new(small_config()).unwrap();
        assert!(matches!(
            det.analyze(&bags, 1),
            Err(DetectError::DimensionMismatch)
        ));
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Detector::new(DetectorConfig {
            tau: 0,
            ..small_config()
        })
        .is_err());
        assert!(Detector::new(DetectorConfig {
            score: ScoreKind::LikelihoodRatio,
            tau_prime: 1,
            ..small_config()
        })
        .is_err());
        assert!(Detector::new(DetectorConfig {
            signature: SignatureMethod::KMeans { k: 0 },
            ..small_config()
        })
        .is_err());
        assert!(Detector::new(DetectorConfig {
            signature: SignatureMethod::Histogram { width: -1.0 },
            ..small_config()
        })
        .is_err());
    }

    #[test]
    fn lr_score_variant_runs() {
        let bags = shifted_bags(20, 10, 4.0);
        let det = Detector::new(DetectorConfig {
            score: ScoreKind::LikelihoodRatio,
            ..small_config()
        })
        .unwrap();
        let out = det.analyze(&bags, 8).unwrap();
        let peak = out.peak().unwrap();
        assert!(
            (peak.t as i64 - 10).unsigned_abs() <= 2,
            "LR peak at {}",
            peak.t
        );
    }

    #[test]
    fn discounted_weighting_runs() {
        let bags = shifted_bags(20, 10, 4.0);
        let det = Detector::new(DetectorConfig {
            weighting: Weighting::Discounted,
            ..small_config()
        })
        .unwrap();
        let out = det.analyze(&bags, 9).unwrap();
        assert!(!out.points.is_empty());
    }

    #[test]
    fn alert_indices_have_prior_interval() {
        // xi is only defined once t - tau' is itself an inspection point.
        let bags = shifted_bags(24, 12, 5.0);
        let det = Detector::new(small_config()).unwrap();
        let out = det.analyze(&bags, 10).unwrap();
        let first = det.layout().first_t();
        for p in &out.points {
            if p.t < first + det.config().tau_prime {
                assert!(p.xi.is_none(), "xi defined too early at t={}", p.t);
                assert!(!p.alert);
            } else {
                assert!(p.xi.is_some());
            }
        }
    }

    #[test]
    fn segments_split_at_alerts() {
        // Seed 2 is the same run as `detects_hard_mean_shift`, which
        // asserts an alert fires.
        let bags = shifted_bags(24, 12, 5.0);
        let det = Detector::new(small_config()).unwrap();
        let out = det.analyze(&bags, 2).unwrap();
        let segs = out.segments(bags.len());
        // Segments tile 0..n without gaps or overlaps.
        assert_eq!(segs[0].start, 0);
        assert_eq!(segs.last().unwrap().end, 24);
        for w in segs.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        // The change at 12 is a segment boundary.
        assert!(
            segs.iter()
                .any(|r| (r.start as i64 - 12).unsigned_abs() <= 2),
            "segments {segs:?}"
        );
    }

    #[test]
    fn segments_with_no_alerts_is_whole_range() {
        let bags = shifted_bags(20, 999, 0.0);
        let det = Detector::new(small_config()).unwrap();
        let out = det.analyze(&bags, 31).unwrap();
        assert_eq!(out.segments(20), vec![0..20]);
    }

    #[test]
    fn sinkhorn_solver_finds_the_same_peak() {
        use emd::SinkhornConfig;
        let bags = shifted_bags(20, 10, 4.0);
        let exact = Detector::new(small_config()).unwrap();
        let approx = Detector::new(DetectorConfig {
            solver: EmdSolver::Sinkhorn(SinkhornConfig {
                epsilon: 0.05,
                ..Default::default()
            }),
            ..small_config()
        })
        .unwrap();
        let pe = exact.score_series(&bags, 21).unwrap();
        let pa = approx.score_series(&bags, 21).unwrap();
        let peak = |s: &[(usize, f64)]| {
            s.iter()
                .cloned()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap()
                .0
        };
        assert_eq!(peak(&pe), peak(&pa), "solvers disagree on the peak");
    }

    #[test]
    fn tiered_exact_mode_analysis_is_bit_identical_to_exact() {
        use crate::score::TieredConfig;
        let bags = shifted_bags(24, 12, 4.0);
        let exact = Detector::new(small_config()).unwrap();
        let tiered = Detector::new(DetectorConfig {
            solver: EmdSolver::Tiered(TieredConfig::default()),
            ..small_config()
        })
        .unwrap();
        let oe = exact.analyze(&bags, 77).unwrap();
        let ot = tiered.analyze(&bags, 77).unwrap();
        assert_eq!(oe.points.len(), ot.points.len());
        for (e, t) in oe.points.iter().zip(&ot.points) {
            assert_eq!(e, t, "tiered exact mode diverged at t = {}", e.t);
        }
    }

    #[test]
    fn tiered_bounded_mode_finds_the_same_peak() {
        use crate::score::TieredConfig;
        let bags = shifted_bags(20, 10, 4.0);
        let exact = Detector::new(small_config()).unwrap();
        let bounded = Detector::new(DetectorConfig {
            solver: EmdSolver::Tiered(TieredConfig {
                epsilon: Some(0.05),
                ..TieredConfig::default()
            }),
            ..small_config()
        })
        .unwrap();
        let pe = exact.score_series(&bags, 21).unwrap();
        let pb = bounded.score_series(&bags, 21).unwrap();
        let peak = |s: &[(usize, f64)]| {
            s.iter()
                .cloned()
                .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .unwrap()
                .0
        };
        assert_eq!(peak(&pe), peak(&pb), "solvers disagree on the peak");
    }

    #[test]
    fn validate_rejects_bad_tiered_epsilon() {
        use crate::score::TieredConfig;
        for eps in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let cfg = DetectorConfig {
                solver: EmdSolver::Tiered(TieredConfig {
                    epsilon: Some(eps),
                    ..TieredConfig::default()
                }),
                ..small_config()
            };
            assert!(cfg.validate().is_err(), "epsilon {eps} accepted");
        }
    }

    #[test]
    fn streaming_matches_batch() {
        let bags = shifted_bags(20, 10, 3.0);
        let det = Detector::new(small_config()).unwrap();
        let batch = det.analyze(&bags, 4).unwrap();

        let mut stream = StreamingDetector::new(det, 4);
        let mut streamed: Vec<ScorePoint> = Vec::new();
        for bag in bags {
            streamed.extend(stream.push(bag).unwrap());
        }
        assert_eq!(batch.points.len(), streamed.len());
        for (a, b) in batch.points.iter().zip(&streamed) {
            assert_eq!(a.t, b.t);
            assert!((a.score - b.score).abs() < 1e-12);
        }
    }

    #[test]
    fn pairwise_emd_is_symmetric_zero_diagonal() {
        let bags = shifted_bags(10, 5, 2.0);
        let det = Detector::new(small_config()).unwrap();
        let sigs = det.signatures(&bags, 6).unwrap();
        let m = det.pairwise_emd(&sigs).unwrap();
        for i in 0..m.rows() {
            assert_eq!(m.get(i, i), 0.0);
            for j in 0..m.cols() {
                assert!((m.get(i, j) - m.get(j, i)).abs() < 1e-12);
            }
        }
    }
}
