//! Change-point detection in a sequence of bags-of-data.
//!
//! This crate is the primary contribution of Koshijima, Hino & Murata,
//! *Change-Point Detection in a Sequence of Bags-of-Data* (IEEE TKDE
//! 27(10):2632–2644, 2015), implemented end to end:
//!
//! 1. each observation is a [`Bag`] of vectors (§2);
//! 2. bags are summarized into EMD signatures by a configurable
//!    quantizer ([`SignatureMethod`], §3.1);
//! 3. signatures are embedded in the EMD metric space (§3.2, the `emd`
//!    crate);
//! 4. fluctuation is scored with the weighted information estimators —
//!    [`score_lr`] (Eq. 16) and [`score_kl`] (Eq. 17) (§3.3, the
//!    `infoest` crate);
//! 5. per-step confidence intervals come from the Bayesian bootstrap
//!    ([`bootstrap_ci`], §4.2), and alerts are raised adaptively when
//!    consecutive intervals stop overlapping (`xi_t > 0`, §4.1).
//!
//! # Quick example
//!
//! ```
//! use bagcpd::{Bag, Detector, DetectorConfig};
//!
//! // Twenty bags of 1-D data; the level jumps at t = 10.
//! let bags: Vec<Bag> = (0..20)
//!     .map(|t| {
//!         let level = if t < 10 { 0.0 } else { 8.0 };
//!         Bag::from_scalars((0..60).map(|i| level + (i % 7) as f64 * 0.1))
//!     })
//!     .collect();
//!
//! let detector = Detector::new(DetectorConfig {
//!     tau: 4,
//!     tau_prime: 4,
//!     ..DetectorConfig::default()
//! }).unwrap();
//! let detection = detector.analyze(&bags, 42).unwrap();
//! assert!(detection.points.iter().any(|p| p.alert), "change at t=10 is detected");
//! ```

pub mod bag;
pub mod bootstrap;
pub mod detector;
pub mod error;
pub mod feature_select;
pub mod parametric;
pub mod score;
pub mod signature_builder;
pub mod window;

pub use bag::Bag;
pub use bootstrap::{
    bootstrap_ci, bootstrap_ci_with, BootstrapConfig, BootstrapScratch, ConfidenceInterval,
};
pub use detector::{
    bootstrap_seed, Detection, Detector, DetectorConfig, EvalScratch, ScorePoint, StreamingDetector,
};
pub use error::DetectError;
pub use feature_select::{per_dimension_scores, OnlineFeatureSelector};
pub use parametric::{parametric_distance_matrix, GaussianFit};
pub use score::{
    score_kl, score_lr, EmdSolver, ScoreKind, SolverScratch, SolverStats, TieredConfig,
    WindowScorer,
};
pub use signature_builder::{
    build_signature, derive_seed, signature_at, signature_at_with, GroundMetric, SignatureMethod,
    SignatureScratch,
};
pub use window::{
    discounted_weights, discounted_weights_into, equal_weights, equal_weights_into, Weighting,
    WindowLayout,
};
