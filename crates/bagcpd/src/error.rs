//! Error type of the detection pipeline.

use emd::EmdError;

/// Failure modes of the detector.
#[derive(Debug, Clone, PartialEq)]
pub enum DetectError {
    /// Configuration rejected (reason attached).
    BadConfig(String),
    /// The bag sequence is shorter than `tau + tau_prime`.
    SequenceTooShort {
        /// Number of bags supplied.
        got: usize,
        /// Minimum required (`tau + tau_prime`).
        need: usize,
    },
    /// Bags have inconsistent dimensions across the sequence.
    DimensionMismatch,
    /// EMD computation failed.
    Emd(EmdError),
}

impl std::fmt::Display for DetectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetectError::BadConfig(msg) => write!(f, "bad detector config: {msg}"),
            DetectError::SequenceTooShort { got, need } => {
                write!(
                    f,
                    "sequence of {got} bags is shorter than tau + tau' = {need}"
                )
            }
            DetectError::DimensionMismatch => write!(f, "bags have inconsistent dimensions"),
            DetectError::Emd(e) => write!(f, "EMD failure: {e}"),
        }
    }
}

impl std::error::Error for DetectError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DetectError::Emd(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EmdError> for DetectError {
    fn from(e: EmdError) -> Self {
        DetectError::Emd(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: DetectError = EmdError::ZeroMass.into();
        assert!(e.to_string().contains("EMD"));
        assert!(DetectError::SequenceTooShort { got: 3, need: 10 }
            .to_string()
            .contains("3"));
    }
}
