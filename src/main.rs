//! `bags-cpd` — command-line change-point detection for bag-structured
//! CSV data.
//!
//! Input format: CSV with a leading integer time column followed by the
//! coordinates of one bag member per row (header optional):
//!
//! ```csv
//! t,x1,x2
//! 0,0.13,1.2
//! 0,0.11,0.9
//! 1,0.09,1.1
//! ```
//!
//! Rows sharing a `t` form one bag.
//!
//! All three modes are thin argument-parsing shims over the library's
//! [`Pipeline`] facade (`stream::Pipeline`): sources feed the engine,
//! every output — score rows, alerts, warnings, quarantine reports,
//! checkpoint commits — leaves through `Sink`s, and the two-phase
//! durable-checkpoint protocol (deliver, flush durably, only then
//! commit) is the library's job, not this file's.
//!
//! # Batch mode
//!
//! ```sh
//! bags-cpd data.csv --tau 5 --tau-prime 5 --k 8 --alpha 0.05
//! ```
//!
//! Reads the whole file, analyzes it, and prints one line per
//! inspection point with the score, confidence interval and alert flag,
//! plus a CSV dump with `--output` (the canonical single-stream schema,
//! `t,score,ci_lo,ci_up,xi,alert`).
//!
//! # Follow mode
//!
//! ```sh
//! tail -f live.csv | bags-cpd follow - --tau 5 --tau-prime 5
//! bags-cpd follow data.csv --state checkpoint.snap
//! ```
//!
//! `follow` tails one file (or stdin with `-`) *incrementally*: rows
//! with the same time value must be contiguous and times nondecreasing;
//! each time the time column advances, the completed bag is pushed into
//! the online engine and any newly completed inspection point is
//! printed immediately — same columns as batch mode, same numbers (the
//! online path is bit-identical to batch analysis), with a latency of
//! τ' bags. The reported `t` is the 0-based bag ordinal, as in batch
//! mode.
//!
//! With `--state <file>`, the session checkpoints: the detector state
//! plus a resume cursor (consumed byte count + content hash + held-back
//! pending rows) is written atomically (temp file + fsync + rename) at
//! EOF — and, with `--checkpoint-bags`/`--checkpoint-ticks`, periodically
//! while running — so a session can be stopped (or killed) and resumed
//! without losing window context. Resume is content-addressed: the
//! same, grown (append-only) file continues exactly at the recorded
//! offset; a rotated or rewritten input is detected by the hash and
//! read from the top with already-pushed times skipped. `--state` files
//! written by the previous single-source format are still read.
//!
//! # Serve mode
//!
//! ```sh
//! bags-cpd serve --dir sensors/ --listen 127.0.0.1:7171 \
//!     --state fleet.snap --checkpoint-bags 256
//! ```
//!
//! `serve` is the multi-tenant front-end: any mix of `--csv` files (one
//! stream per file, named by file stem), a `--dir` of CSVs (one stream
//! per file, re-scanned for new files while running), and a `--listen`
//! TCP socket speaking a `stream,t,x1,…` line protocol (many clients,
//! many streams, non-blocking; hardened by `--max-line-bytes` and
//! `--max-streams`). Output rows are prefixed with the stream name. A
//! malformed row or a backwards timestamp *quarantines that stream*
//! (reported on stderr) instead of tearing the process down. Without
//! `--watch`, the process drains every source and exits; with it, it
//! keeps watching files, directory, and socket until killed. Periodic
//! checkpoints cover every stream and every source cursor — committed
//! only after the covered output was delivered — so `kill -9` loses
//! nothing past the last checkpoint.

use bags_cpd::emd::SinkhornConfig;
use bags_cpd::follow::{decode_checkpoint, FOLLOW_STREAM};
use bags_cpd::stream::ingest::parse_row;
use bags_cpd::stream::ingest::{
    CsvFileSource, DirSource, MemorySource, TcpLimits, TcpSource, ThreadedLineSource,
};
use bags_cpd::stream::testkit::{ChaosSink, DeliverFault, FaultSchedule};
use bags_cpd::stream::{
    CheckpointPolicy, CsvSchema, CsvSink, Event, MemorySink, MetricSample, MetricsRegistry,
    Pipeline, PipelineBuilder, Query, ReplayDiffSink, RetryPolicy, RetryingSink, ScoreLogReader,
    ScoreStore, Sink, StderrAlertSink, Tee,
};
use bags_cpd::{
    Bag, BootstrapConfig, DetectError, Detector, DetectorConfig, EmdSolver, ScoreKind,
    SignatureMethod, TieredConfig, Weighting,
};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// Which front-end drives the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Read everything, analyze once.
    Batch,
    /// Tail one input, emit points as bags complete.
    Follow,
    /// Multi-source ingestion: files, directory, TCP.
    Serve,
    /// Re-emit a recorded score log, or diff a fresh run against one.
    Replay,
    /// Query a recorded score log through its per-stream index.
    Query,
}

/// Parsed command-line options.
struct Options {
    mode: Mode,
    input: String,
    tau: usize,
    tau_prime: usize,
    score: ScoreKind,
    weighting: Weighting,
    signature: SignatureMethod,
    solver: EmdSolver,
    alpha: f64,
    replicates: usize,
    seed: u64,
    /// Whether --seed was given explicitly (a resumed checkpoint keeps
    /// its original seed; warn only about a *real* conflict).
    seed_explicit: bool,
    output: Option<String>,
    state: Option<String>,
    /// serve: explicit CSV files (stream named by file stem).
    csvs: Vec<String>,
    /// serve: directory of CSVs (one stream per file).
    dir: Option<String>,
    /// serve: TCP listen address for the line protocol.
    listen: Option<String>,
    /// serve: keep watching sources instead of draining and exiting.
    watch: bool,
    /// serve: TCP hardening limits (defaults from the library).
    max_line_bytes: Option<usize>,
    max_streams: Option<usize>,
    /// Periodic checkpoint triggers (follow + serve, with --state).
    checkpoint_bags: Option<u64>,
    checkpoint_ticks: Option<u64>,
    /// serve: address for the Prometheus `GET /metrics` endpoint.
    metrics: Option<String>,
    /// Print the final telemetry snapshot to stderr on exit.
    stats: bool,
    /// serve + --listen: required `auth <token>` handshake.
    auth_token: Option<String>,
    /// serve + --listen: idle-stream eviction window (seconds).
    evict_idle: Option<f64>,
    /// serve + --listen: reconnect grace before a draining session
    /// winds down (seconds).
    drain_grace: Option<f64>,
    /// serve: directory for degraded-mode spill logs (enables graceful
    /// degradation instead of aborting on sink failure).
    spill_dir: Option<String>,
    /// serve: wrap the stdout sink in a retry layer with this many
    /// attempts.
    sink_retries: Option<u32>,
    /// serve: inject a deterministic stdout-sink fault
    /// (`<at_event>:<failures>`) — the chaos-testing hook the CI smoke
    /// test drives.
    chaos_sink: Option<(u64, u32)>,
    /// batch/follow/serve: record every event to this binary score log.
    score_log: Option<String>,
    /// replay: diff the live run against this recorded score log.
    diff: Option<String>,
    /// replay --diff: score drift accepted as "within eps" (default 0:
    /// bit-exact or diverged).
    eps: f64,
    /// query: restrict to one stream.
    q_stream: Option<String>,
    /// query: only points with `t >= since`.
    q_since: Option<u64>,
    /// query: only points with `t <= until`.
    q_until: Option<u64>,
    /// query: only alerting points.
    q_alerts_only: bool,
    /// query: top-N points by score.
    q_top: Option<usize>,
}

const USAGE: &str = "\
usage: bags-cpd <input.csv> [options]
       bags-cpd follow <input.csv|-> [options]
       bags-cpd serve [--csv <f.csv>]... [--dir <d>] [--listen <addr>] [options]
       bags-cpd replay <log> | replay --diff <log> [input.csv] [options]
       bags-cpd query <log> [--stream <s>] [--since <t>] [--until <t>] [options]

modes:
  <input.csv>            batch: analyze the whole file at once
  follow <input.csv|->   online: tail the file (or stdin), print each
                         inspection point as soon as its test window
                         completes
  serve                  online, multi-source: ingest many CSV files, a
                         directory of CSVs (one stream per file), and/or
                         a TCP line protocol ('stream,t,x1,...') into
                         one engine; output rows carry the stream name
  replay <log>           re-emit the events recorded in a --score-log
                         file; with --diff <log>, instead re-analyze the
                         original inputs (positional file and/or
                         --csv/--dir, with the recording session's
                         detector flags and --seed) and compare every
                         live score against the record, exiting nonzero
                         on any divergence
  query <log>            summarize a --score-log per stream, or list
                         recorded points filtered by --stream/--since/
                         --until/--alerts-only/--top

options:
  --tau <n>              reference window length (default 5)
  --tau-prime <n>        test window length (default 5)
  --score <kl|lr>        change-point score (default kl)
  --weighting <equal|discounted>
                         window weighting (default equal)
  --k <n>                k-means signature size (default 8)
  --histogram <width>    use histogram signatures with this bin width
  --solver <s>           EMD solver: exact (default), sinkhorn[:eps]
                         (entropic approximation with regularization
                         eps), or tiered[:eps] — a lower-bound ladder
                         that prunes exact solves; without :eps results
                         stay bit-identical to exact, with :eps any
                         distance may be off by at most eps
  --alpha <a>            significance level for the CIs (default 0.05)
  --replicates <T>       bootstrap replicates (default 200)
  --seed <s>             RNG seed (default 42)
  --output <file.csv>    write the score series as CSV (batch mode)
  --state <file>         follow/serve: restore checkpoint if present,
                         save checkpoints while running and at exit
  --checkpoint-bags <n>  with --state: checkpoint every n bags
  --checkpoint-ticks <n> with --state: checkpoint every n poll ticks
  --csv <file.csv>       serve: add a CSV file source (repeatable);
                         the stream is named after the file stem
  --dir <dir>            serve: add every *.csv in dir (re-scanned, so
                         files appearing later join the fleet)
  --listen <addr>        serve: accept the TCP line protocol on addr
  --max-line-bytes <n>   serve: drop TCP lines longer than n bytes and
                         quarantine their stream (default 262144)
  --max-streams <n>      serve: refuse TCP streams beyond the first n
                         (default 4096)
  --watch                serve: keep running at EOF (tail files and the
                         socket) instead of draining and exiting
  --metrics <addr>       serve: answer Prometheus 'GET /metrics' scrapes
                         on addr (port 0 picks a free port; the bound
                         address is printed on stderr)
  --auth-token <tok>     serve: require every TCP connection to open
                         with 'auth <tok>' (answered '!ok'); anything
                         before a successful handshake is refused
                         ('!denied') and counted
  --evict-idle <secs>    serve: retire TCP streams silent for this long
                         (their trailing bag completes; a returning
                         stream starts fresh)
  --drain-grace <secs>   serve: without --watch, keep the TCP listener
                         draining this long after the last client
                         disconnects (reconnect window; default 0.2)
  --spill-dir <dir>      serve: degrade instead of abort when a sink
                         fails — undeliverable events spill to an
                         append-only log in dir and replay, in order,
                         when the sink recovers
  --sink-retries <n>     serve: retry transient stdout-sink failures up
                         to n attempts (bounded exponential backoff)
                         before degrading or aborting
  --chaos-sink <a>:<f>   serve: inject a deterministic stdout-sink fault
                         for testing — the delivery containing event
                         ordinal a fails f times, then heals
  --score-log <file>     batch/follow/serve: record every event to this
                         durable binary log (append-only, checksummed;
                         an existing log is appended to across resumes)
  --diff <log>           replay: compare the live run against this log
  --eps <e>              replay --diff: accept |live - recorded| <= e as
                         'within eps' instead of diverged (default 0)
  --stream <s>           query: only this stream
  --since <t>            query: only points with t >= this
  --until <t>            query: only points with t <= this
  --alerts-only          query: only alerting points
  --top <n>              query: the n highest-scoring points
  --stats                print the final telemetry snapshot (every
                         counter, gauge, and histogram) to stderr
  --help                 show this message
";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        mode: Mode::Batch,
        input: String::new(),
        tau: 5,
        tau_prime: 5,
        score: ScoreKind::SymmetrizedKl,
        weighting: Weighting::Equal,
        signature: SignatureMethod::KMeans { k: 8 },
        solver: EmdSolver::Exact,
        alpha: 0.05,
        replicates: 200,
        seed: 42,
        seed_explicit: false,
        output: None,
        state: None,
        csvs: Vec::new(),
        dir: None,
        listen: None,
        watch: false,
        max_line_bytes: None,
        max_streams: None,
        checkpoint_bags: None,
        checkpoint_ticks: None,
        metrics: None,
        stats: false,
        auth_token: None,
        evict_idle: None,
        drain_grace: None,
        spill_dir: None,
        sink_retries: None,
        chaos_sink: None,
        score_log: None,
        diff: None,
        eps: 0.0,
        q_stream: None,
        q_since: None,
        q_until: None,
        q_alerts_only: false,
        q_top: None,
    };
    let mut it = args.iter();
    let mut positional = Vec::new();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--tau" => opts.tau = take("--tau")?.parse().map_err(|e| format!("--tau: {e}"))?,
            "--tau-prime" => {
                opts.tau_prime = take("--tau-prime")?
                    .parse()
                    .map_err(|e| format!("--tau-prime: {e}"))?;
            }
            "--score" => {
                opts.score = match take("--score")?.as_str() {
                    "kl" => ScoreKind::SymmetrizedKl,
                    "lr" => ScoreKind::LikelihoodRatio,
                    other => return Err(format!("--score: unknown kind '{other}' (kl|lr)")),
                };
            }
            "--weighting" => {
                opts.weighting = match take("--weighting")?.as_str() {
                    "equal" => Weighting::Equal,
                    "discounted" => Weighting::Discounted,
                    other => return Err(format!("--weighting: unknown '{other}'")),
                };
            }
            "--k" => {
                let k = take("--k")?.parse().map_err(|e| format!("--k: {e}"))?;
                opts.signature = SignatureMethod::KMeans { k };
            }
            "--histogram" => {
                let width = take("--histogram")?
                    .parse()
                    .map_err(|e| format!("--histogram: {e}"))?;
                opts.signature = SignatureMethod::Histogram { width };
            }
            "--solver" => {
                let spec = take("--solver")?;
                let (kind, eps) = match spec.split_once(':') {
                    Some((kind, eps)) => (kind, Some(eps)),
                    None => (spec.as_str(), None),
                };
                opts.solver = match kind {
                    "exact" => {
                        if eps.is_some() {
                            return Err("--solver: exact takes no epsilon".to_string());
                        }
                        EmdSolver::Exact
                    }
                    "sinkhorn" => {
                        let mut cfg = SinkhornConfig::default();
                        if let Some(eps) = eps {
                            cfg.epsilon = eps
                                .parse()
                                .map_err(|e| format!("--solver sinkhorn: bad epsilon: {e}"))?;
                        }
                        EmdSolver::Sinkhorn(cfg)
                    }
                    "tiered" => {
                        let epsilon = eps
                            .map(|eps| {
                                eps.parse::<f64>()
                                    .map_err(|e| format!("--solver tiered: bad epsilon: {e}"))
                            })
                            .transpose()?;
                        EmdSolver::Tiered(TieredConfig {
                            epsilon,
                            ..Default::default()
                        })
                    }
                    other => {
                        return Err(format!(
                            "--solver: unknown solver '{other}' (exact|sinkhorn[:eps]|tiered[:eps])"
                        ))
                    }
                };
            }
            "--alpha" => {
                opts.alpha = take("--alpha")?
                    .parse()
                    .map_err(|e| format!("--alpha: {e}"))?;
            }
            "--replicates" => {
                opts.replicates = take("--replicates")?
                    .parse()
                    .map_err(|e| format!("--replicates: {e}"))?;
            }
            "--seed" => {
                opts.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
                opts.seed_explicit = true;
            }
            "--output" => opts.output = Some(take("--output")?),
            "--state" => opts.state = Some(take("--state")?),
            "--csv" => opts.csvs.push(take("--csv")?),
            "--dir" => opts.dir = Some(take("--dir")?),
            "--listen" => opts.listen = Some(take("--listen")?),
            "--metrics" => opts.metrics = Some(take("--metrics")?),
            "--stats" => opts.stats = true,
            "--watch" => opts.watch = true,
            "--max-line-bytes" => {
                opts.max_line_bytes = Some(
                    take("--max-line-bytes")?
                        .parse()
                        .map_err(|e| format!("--max-line-bytes: {e}"))?,
                );
            }
            "--max-streams" => {
                opts.max_streams = Some(
                    take("--max-streams")?
                        .parse()
                        .map_err(|e| format!("--max-streams: {e}"))?,
                );
            }
            "--checkpoint-bags" => {
                opts.checkpoint_bags = Some(
                    take("--checkpoint-bags")?
                        .parse()
                        .map_err(|e| format!("--checkpoint-bags: {e}"))?,
                );
            }
            "--checkpoint-ticks" => {
                opts.checkpoint_ticks = Some(
                    take("--checkpoint-ticks")?
                        .parse()
                        .map_err(|e| format!("--checkpoint-ticks: {e}"))?,
                );
            }
            "--auth-token" => opts.auth_token = Some(take("--auth-token")?),
            "--evict-idle" => {
                let secs: f64 = take("--evict-idle")?
                    .parse()
                    .map_err(|e| format!("--evict-idle: {e}"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--evict-idle: need a positive number of seconds".to_string());
                }
                opts.evict_idle = Some(secs);
            }
            "--drain-grace" => {
                let secs: f64 = take("--drain-grace")?
                    .parse()
                    .map_err(|e| format!("--drain-grace: {e}"))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err("--drain-grace: need a non-negative number of seconds".to_string());
                }
                opts.drain_grace = Some(secs);
            }
            "--spill-dir" => opts.spill_dir = Some(take("--spill-dir")?),
            "--sink-retries" => {
                let n: u32 = take("--sink-retries")?
                    .parse()
                    .map_err(|e| format!("--sink-retries: {e}"))?;
                if n == 0 {
                    return Err("--sink-retries: need at least 1 attempt".to_string());
                }
                opts.sink_retries = Some(n);
            }
            "--score-log" => opts.score_log = Some(take("--score-log")?),
            "--diff" => opts.diff = Some(take("--diff")?),
            "--eps" => {
                let eps: f64 = take("--eps")?.parse().map_err(|e| format!("--eps: {e}"))?;
                if !eps.is_finite() || eps < 0.0 {
                    return Err("--eps: need a finite non-negative number".to_string());
                }
                opts.eps = eps;
            }
            "--stream" => opts.q_stream = Some(take("--stream")?),
            "--since" => {
                opts.q_since = Some(
                    take("--since")?
                        .parse()
                        .map_err(|e| format!("--since: {e}"))?,
                );
            }
            "--until" => {
                opts.q_until = Some(
                    take("--until")?
                        .parse()
                        .map_err(|e| format!("--until: {e}"))?,
                );
            }
            "--alerts-only" => opts.q_alerts_only = true,
            "--top" => {
                opts.q_top = Some(take("--top")?.parse().map_err(|e| format!("--top: {e}"))?);
            }
            "--chaos-sink" => {
                let spec = take("--chaos-sink")?;
                let (at, failures) = spec.split_once(':').ok_or_else(|| {
                    format!("--chaos-sink: '{spec}' is not '<at_event>:<failures>'")
                })?;
                opts.chaos_sink = Some((
                    at.parse()
                        .map_err(|e| format!("--chaos-sink: bad event ordinal '{at}': {e}"))?,
                    failures.parse().map_err(|e| {
                        format!("--chaos-sink: bad failure count '{failures}': {e}")
                    })?,
                ));
            }
            other if other.starts_with('-') && other != "-" => {
                return Err(format!("unknown option {other}\n\n{USAGE}"))
            }
            other => positional.push(other.to_string()),
        }
    }
    match positional.first().map(String::as_str) {
        Some("follow") => {
            opts.mode = Mode::Follow;
            positional.remove(0);
            if positional.is_empty() {
                positional.push("-".to_string()); // follow defaults to stdin
            }
        }
        Some("serve") => {
            opts.mode = Mode::Serve;
            positional.remove(0);
        }
        Some("replay") => {
            opts.mode = Mode::Replay;
            positional.remove(0);
        }
        Some("query") => {
            opts.mode = Mode::Query;
            positional.remove(0);
        }
        _ => {}
    }
    // --csv/--dir also feed replay --diff (the original inputs of the
    // recorded session); everything else stays serve-only.
    if !matches!(opts.mode, Mode::Serve | Mode::Replay)
        && (!opts.csvs.is_empty() || opts.dir.is_some())
    {
        return Err("--csv/--dir are serve/replay-mode options".to_string());
    }
    if opts.mode != Mode::Serve
        && (opts.listen.is_some()
            || opts.watch
            || opts.max_line_bytes.is_some()
            || opts.max_streams.is_some()
            || opts.metrics.is_some()
            || opts.auth_token.is_some()
            || opts.evict_idle.is_some()
            || opts.drain_grace.is_some()
            || opts.spill_dir.is_some()
            || opts.sink_retries.is_some()
            || opts.chaos_sink.is_some())
    {
        return Err("--listen/--watch/--max-line-bytes/--max-streams/--metrics/\
             --auth-token/--evict-idle/--drain-grace/--spill-dir/--sink-retries/--chaos-sink \
             are serve-mode options"
            .to_string());
    }
    if (opts.checkpoint_bags.is_some() || opts.checkpoint_ticks.is_some()) && opts.state.is_none() {
        return Err("--checkpoint-bags/--checkpoint-ticks need --state".to_string());
    }
    if opts.score_log.is_some() && matches!(opts.mode, Mode::Replay | Mode::Query) {
        return Err("--score-log records a live session (batch/follow/serve)".to_string());
    }
    if opts.mode != Mode::Replay && opts.diff.is_some() {
        return Err("--diff is a replay-mode option".to_string());
    }
    if opts.eps != 0.0 && opts.diff.is_none() {
        return Err("--eps needs replay --diff".to_string());
    }
    if opts.mode != Mode::Query
        && (opts.q_stream.is_some()
            || opts.q_since.is_some()
            || opts.q_until.is_some()
            || opts.q_alerts_only
            || opts.q_top.is_some())
    {
        return Err(
            "--stream/--since/--until/--alerts-only/--top are query-mode options".to_string(),
        );
    }
    if opts.mode == Mode::Replay {
        if opts.state.is_some() {
            return Err("replay re-runs from scratch; --state is not available".to_string());
        }
        if opts.output.is_some() {
            return Err("--output is only meaningful in batch mode".to_string());
        }
        match &opts.diff {
            None => {
                // Dump mode: the one positional is the log itself.
                if !opts.csvs.is_empty() || opts.dir.is_some() {
                    return Err("--csv/--dir need replay --diff (they name the inputs \
                                to re-analyze)"
                        .to_string());
                }
                match positional.len() {
                    0 => return Err(format!("replay: missing score log\n\n{USAGE}")),
                    1 => opts.input = positional.remove(0),
                    _ => return Err(format!("too many positional arguments\n\n{USAGE}")),
                }
            }
            Some(_) => {
                // Diff mode: positional (if any) is the original input.
                match positional.len() {
                    0 => {
                        if opts.csvs.is_empty() && opts.dir.is_none() {
                            return Err(format!(
                                "replay --diff needs the original inputs (a positional \
                                 CSV, --csv, or --dir)\n\n{USAGE}"
                            ));
                        }
                    }
                    1 => opts.input = positional.remove(0),
                    _ => return Err(format!("too many positional arguments\n\n{USAGE}")),
                }
            }
        }
        return Ok(opts);
    }
    if opts.mode == Mode::Query {
        if opts.state.is_some() || opts.output.is_some() {
            return Err("query only reads a score log; --state/--output do not apply".to_string());
        }
        match positional.len() {
            0 => return Err(format!("query: missing score log\n\n{USAGE}")),
            1 => opts.input = positional.remove(0),
            _ => return Err(format!("too many positional arguments\n\n{USAGE}")),
        }
        if let (Some(since), Some(until)) = (opts.q_since, opts.q_until) {
            if since > until {
                return Err(format!("--since {since} is after --until {until}"));
            }
        }
        return Ok(opts);
    }
    if opts.mode == Mode::Serve {
        if !positional.is_empty() {
            return Err(format!(
                "serve mode takes sources via --csv/--dir/--listen\n\n{USAGE}"
            ));
        }
        if opts.csvs.is_empty() && opts.dir.is_none() && opts.listen.is_none() {
            return Err(format!(
                "serve mode needs at least one source (--csv, --dir, or --listen)\n\n{USAGE}"
            ));
        }
        if opts.output.is_some() {
            return Err("--output is only meaningful in batch mode".to_string());
        }
        if (opts.max_line_bytes.is_some() || opts.max_streams.is_some()) && opts.listen.is_none() {
            return Err("--max-line-bytes/--max-streams need --listen".to_string());
        }
        if (opts.auth_token.is_some() || opts.evict_idle.is_some() || opts.drain_grace.is_some())
            && opts.listen.is_none()
        {
            return Err("--auth-token/--evict-idle/--drain-grace need --listen".to_string());
        }
        return Ok(opts);
    }
    match positional.len() {
        0 => Err(format!("missing input file\n\n{USAGE}")),
        1 => {
            opts.input = positional.remove(0);
            if opts.mode == Mode::Batch && opts.state.is_some() {
                return Err("--state is only meaningful in follow mode".to_string());
            }
            if opts.mode == Mode::Follow && opts.output.is_some() {
                return Err("--output is only meaningful in batch mode".to_string());
            }
            Ok(opts)
        }
        _ => Err(format!("too many positional arguments\n\n{USAGE}")),
    }
}

fn detector_config(opts: &Options) -> DetectorConfig {
    DetectorConfig {
        tau: opts.tau,
        tau_prime: opts.tau_prime,
        score: opts.score,
        weighting: opts.weighting,
        signature: opts.signature.clone(),
        solver: opts.solver,
        bootstrap: BootstrapConfig {
            alpha: opts.alpha,
            replicates: opts.replicates,
            ..Default::default()
        },
        ..DetectorConfig::default()
    }
}

fn build_detector(opts: &Options) -> Result<Detector, String> {
    Detector::new(detector_config(opts)).map_err(|e| e.to_string())
}

/// The shared pipeline shape: detection parameters, master seed, and
/// the mode's checkpoint policy (when `--state` is set).
fn pipeline_builder(opts: &Options, workers: usize, strict: bool) -> PipelineBuilder {
    let mut builder = Pipeline::builder(detector_config(opts))
        .seed(opts.seed)
        .workers(workers)
        .strict(strict);
    if let Some(state) = &opts.state {
        builder = builder.checkpoint(
            CheckpointPolicy {
                every_bags: opts.checkpoint_bags,
                every_ticks: opts.checkpoint_ticks,
            },
            state,
        );
    }
    if let Some(log) = &opts.score_log {
        builder = builder.score_log(log);
    }
    builder
}

/// Parse the bag CSV: integer time column + coordinates, through the
/// one authoritative row parser in `stream::ingest`. Batch mode sorts
/// by time (the whole file is present), so unordered inputs stay
/// accepted here even though the online sources require nondecreasing
/// times.
fn read_bags(path: &str) -> Result<Vec<Bag>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut by_time: BTreeMap<i64, Vec<Vec<f64>>> = BTreeMap::new();
    let mut dim: Option<usize> = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Some((t, coords)) =
            parse_row(line, lineno, path, lineno == 0).map_err(|e| e.to_string())?
        else {
            continue;
        };
        match dim {
            None => dim = Some(coords.len()),
            Some(d) if d != coords.len() => {
                return Err(format!(
                    "{path}:{}: dimension {} != {}",
                    lineno + 1,
                    coords.len(),
                    d
                ));
            }
            _ => {}
        }
        by_time.entry(t).or_default().push(coords);
    }
    if by_time.is_empty() {
        return Err(format!("{path}: no data rows"));
    }
    Ok(by_time.into_values().map(Bag::new).collect())
}

/// The batch stream's name inside its one-shot engine (never persisted;
/// only its explicitly pinned seed matters).
const BATCH_STREAM: &str = "cli-batch";

fn run_batch(opts: &Options) -> Result<(), String> {
    build_detector(opts)?; // validate the configuration up front
    let bags = read_bags(&opts.input)?;
    eprintln!(
        "read {} bags (sizes {}..{}), dim {}",
        bags.len(),
        bags.iter().map(Bag::len).min().unwrap_or(0),
        bags.iter().map(Bag::len).max().unwrap_or(0),
        bags[0].dim()
    );
    // The online engine reports a too-short sequence as "no points yet";
    // batch mode knows the data is complete, so keep its explicit error.
    let need = opts.tau + opts.tau_prime;
    if bags.len() < need {
        return Err(DetectError::SequenceTooShort {
            got: bags.len(),
            need,
        }
        .to_string());
    }

    let source = MemorySource::bags(
        BATCH_STREAM,
        bags.into_iter()
            .enumerate()
            .map(|(t, bag)| (t as i64, bag.into_points())),
    );

    // Stdout keeps the legacy no-xi layout; --output gets the canonical
    // single-stream schema (with xi, full precision) — both are now the
    // same CsvSink with declared elisions instead of divergent writers.
    let collected = MemorySink::new();
    let mut builder = pipeline_builder(opts, 1, true)
        .stream_seed(BATCH_STREAM, opts.seed)
        .source(source)
        .sink(CsvSink::with_schema(
            std::io::stdout(),
            CsvSchema::legacy_stdout(false),
        ))
        .sink(collected.clone());
    if let Some(out) = &opts.output {
        let file = std::fs::File::create(out).map_err(|e| format!("{out}: {e}"))?;
        builder = builder.sink(CsvSink::with_schema(file, CsvSchema::single_stream()));
    }
    let summary = builder
        .build()
        .map_err(|e| e.to_string())?
        .run()
        .map_err(|e| e.to_string())?;

    let alerts: Vec<usize> = collected
        .events()
        .iter()
        .filter(|e| e.is_alert())
        .filter_map(|e| e.point().map(|p| p.t))
        .collect();
    eprintln!("alerts at: {alerts:?}");
    if let Some(out) = &opts.output {
        eprintln!("wrote {out}");
    }
    if opts.stats {
        print_stats(&summary.metrics);
    }
    Ok(())
}

fn run_follow(opts: &Options) -> Result<(), String> {
    build_detector(opts)?; // validate the configuration up front
    let mut builder = pipeline_builder(opts, 1, true)
        // A fresh follow stream is seeded with --seed *directly* (not
        // the derived multi-stream scheme), keeping follow bit-identical
        // to batch analysis; on resume the established seed wins.
        .stream_seed(FOLLOW_STREAM, opts.seed)
        .sink(CsvSink::with_schema(
            std::io::stdout(),
            CsvSchema::legacy_stdout(false),
        ))
        .sink(StderrAlertSink::new(false));
    builder = if opts.input == "-" {
        // Stdin may be a live pipe: read it on its own thread so the
        // tick loop (and event delivery) never blocks mid-stream.
        builder.source(ThreadedLineSource::spawn(
            std::io::BufReader::new(std::io::stdin()),
            "<stdin>",
            FOLLOW_STREAM,
        ))
    } else {
        builder.source(CsvFileSource::new(&opts.input, FOLLOW_STREAM, false))
    };
    let pipeline = builder.build().map_err(|e| e.to_string())?;

    let mut base_bags = 0u64;
    let mut base_points = 0u64;
    if let Some(bytes) = pipeline.restored_state() {
        // The single-source view of the restored state (the very bytes
        // the pipeline resumed from), for resume diagnostics and the
        // seed-conflict warning.
        let path = opts.state.as_deref().unwrap_or_default();
        if let Ok(view) = decode_checkpoint(bytes, &detector_config(opts)) {
            if opts.seed_explicit && view.master_seed != opts.seed {
                eprintln!(
                    "warning: --seed {} ignored; the checkpoint continues under seed \
                     {} (a stream's seed is fixed at its first session)",
                    opts.seed, view.master_seed
                );
            }
            base_bags = view.state.pushed;
            base_points = view.state.emitted;
            eprintln!(
                "resumed from {path}: {} bags seen, {} points emitted, {} input bytes consumed{}",
                base_bags,
                base_points,
                view.consumed,
                view.pending.as_ref().map_or(String::new(), |(t, rows)| {
                    format!(", {} buffered rows for t = {t}", rows.len())
                })
            );
        }
    }

    let summary = pipeline.run().map_err(|e| e.to_string())?;
    eprintln!(
        "follow done: {} bags, {} inspection points",
        base_bags + summary.bags,
        base_points + summary.points
    );
    if opts.stats {
        print_stats(&summary.metrics);
    }
    Ok(())
}

/// Add one [`CsvFileSource`] per `--csv` path, each stream named by the
/// file stem. Two files feeding one stream would interleave two inputs
/// into one detector: reject up front, not at the first checkpoint (and
/// not silently, without --state).
fn add_csv_sources(
    mut builder: PipelineBuilder,
    csvs: &[String],
    watch: bool,
) -> Result<PipelineBuilder, String> {
    let mut stems = std::collections::HashSet::new();
    for path in csvs {
        let stem = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| format!("--csv {path}: cannot derive a stream name"))?
            .to_string();
        if !stems.insert(stem.clone()) {
            return Err(format!(
                "--csv {path}: stream '{stem}' is already fed by another --csv file"
            ));
        }
        builder = builder.source(CsvFileSource::new(path, stem, watch));
    }
    Ok(builder)
}

fn run_serve(opts: &Options) -> Result<(), String> {
    build_detector(opts)?;
    // Shared registry so host-side sink wrappers (retry layer) and the
    // pipeline's own layers record into one scrape surface.
    let registry = MetricsRegistry::new();

    // Compose the stdout sink inside-out: CSV, then the optional
    // injected fault (below the retry layer, where a real I/O failure
    // would originate), then the optional retry layer.
    let csv = CsvSink::with_schema(std::io::stdout(), CsvSchema::legacy_stdout(true));
    let mut stdout_sink: Box<dyn Sink> = match opts.chaos_sink {
        Some((at_event, failures)) => {
            let schedule = FaultSchedule {
                deliver: vec![DeliverFault {
                    at_event,
                    failures,
                    kind: std::io::ErrorKind::TimedOut,
                    torn: 0,
                }],
                flush: Vec::new(),
            };
            Box::new(ChaosSink::new(csv, schedule))
        }
        None => Box::new(csv),
    };
    if let Some(attempts) = opts.sink_retries {
        let policy = RetryPolicy {
            max_attempts: attempts,
            ..RetryPolicy::default()
        };
        stdout_sink = Box::new(RetryingSink::new(stdout_sink, policy).with_metrics(&registry));
    }

    let mut builder = pipeline_builder(opts, 4, false)
        .metrics(registry)
        .sink_boxed(stdout_sink)
        .sink(StderrAlertSink::new(true));
    if let Some(dir) = &opts.spill_dir {
        builder = builder.spill_dir(dir);
    }

    builder = add_csv_sources(builder, &opts.csvs, opts.watch)?;
    if let Some(dir) = &opts.dir {
        builder = builder.source(DirSource::new(dir, opts.watch));
    }
    if let Some(addr) = &opts.listen {
        let defaults = TcpLimits::default();
        let limits = TcpLimits {
            max_line_bytes: opts.max_line_bytes.unwrap_or(defaults.max_line_bytes),
            max_streams: opts.max_streams.unwrap_or(defaults.max_streams),
        };
        let mut tcp = TcpSource::bind_with(addr, opts.watch, limits).map_err(|e| e.to_string())?;
        if let Some(token) = &opts.auth_token {
            tcp.set_auth_token(token.clone());
        }
        if let Some(secs) = opts.evict_idle {
            tcp.set_evict_idle(std::time::Duration::from_secs_f64(secs));
        }
        if let Some(secs) = opts.drain_grace {
            tcp.set_drain_grace(std::time::Duration::from_secs_f64(secs));
        }
        if let Some(local) = tcp.local_addr() {
            eprintln!("listening on {local} (line protocol: stream,t,x1,...)");
        }
        builder = builder.source(tcp);
    }
    if let Some(addr) = &opts.metrics {
        builder = builder.serve_metrics(addr.clone());
    }

    let mut pipeline = builder.build().map_err(|e| e.to_string())?;
    if let Some(local) = pipeline.metrics_addr() {
        eprintln!("metrics: listening on {local} (GET /metrics)");
    }
    // A restored engine keeps the snapshot's master seed regardless of
    // --seed; surface a real conflict (any checkpoint, not just ones
    // with a follow stream).
    let master_seed = pipeline.engine_mut().master_seed();
    if opts.seed_explicit && master_seed != opts.seed {
        eprintln!(
            "warning: --seed {} ignored; the checkpoint continues under seed {master_seed}",
            opts.seed
        );
    }
    if !pipeline.resume_cursors().is_empty() {
        eprintln!(
            "resumed {} stream cursor(s) from {}",
            pipeline.resume_cursors().len(),
            opts.state.as_deref().unwrap_or_default()
        );
    }

    let summary = pipeline.run().map_err(|e| e.to_string())?;
    eprintln!(
        "serve done: {} bags, {} inspection points, {} checkpoint(s), {} quarantined stream(s)",
        summary.bags, summary.points, summary.checkpoints, summary.quarantined_total
    );
    if summary.spilled_events > 0 {
        eprintln!(
            "warning: exited degraded: {} event(s) remain spilled on disk and will replay \
             when the session resumes",
            summary.spilled_events
        );
    }
    if opts.stats {
        print_stats(&summary.metrics);
    }
    Ok(())
}

/// `replay <log>`: re-emit every recorded event through the stdout
/// sinks — the score table on stdout (canonical schema, full
/// precision), alerts and diagnostics on stderr — without touching the
/// detector at all.
fn run_replay_dump(opts: &Options) -> Result<(), String> {
    let path = std::path::Path::new(&opts.input);
    let mut sink = Tee::new(
        CsvSink::with_schema(std::io::stdout(), CsvSchema::canonical()),
        StderrAlertSink::new(true),
    );
    let mut batch: Vec<Event> = Vec::with_capacity(256);
    let mut total = 0u64;
    ScoreLogReader::for_each(path, &mut |event| {
        total += 1;
        batch.push(event.clone());
        if batch.len() == batch.capacity() {
            let r = sink.deliver(&batch);
            batch.clear();
            return r;
        }
        Ok(())
    })
    .map_err(|e| format!("{}: {e}", opts.input))?;
    sink.deliver(&batch)
        .and_then(|()| sink.flush_durable())
        .map_err(|e| e.to_string())?;
    eprintln!("replayed {total} recorded event(s) from {}", opts.input);
    Ok(())
}

/// `replay --diff <log>`: re-analyze the original inputs with the same
/// detector flags and seed, and compare every live score against the
/// record. Exits nonzero (via `Err`) on any divergence, live point the
/// log never recorded, or recorded point the live run never reproduced.
fn run_replay_diff(opts: &Options, log: &str) -> Result<(), String> {
    build_detector(opts)?;
    let log_path = std::path::Path::new(log);
    let store = ScoreStore::scan(log_path).map_err(|e| format!("{log}: {e}"))?;
    let recorded: Vec<String> = store.streams().map(|(name, _)| name.to_string()).collect();

    let registry = MetricsRegistry::new();
    let inner = Tee::new(
        CsvSink::with_schema(std::io::stdout(), CsvSchema::legacy_stdout(true)),
        StderrAlertSink::new(true),
    );
    let diff = ReplayDiffSink::load(log_path, opts.eps, inner)
        .map_err(|e| format!("{log}: {e}"))?
        .with_metrics(&registry);
    let tracker = diff.tracker();

    // A single positional input mirrors batch/follow (one worker,
    // strict, seed pinned); --csv/--dir mirror serve (worker pool,
    // quarantine isolation, seeds derived from the master --seed).
    let multi = !opts.csvs.is_empty() || opts.dir.is_some();
    let (workers, strict) = if multi { (4, false) } else { (1, true) };
    let mut builder = pipeline_builder(opts, workers, strict)
        .metrics(registry)
        .sink(diff);
    if !opts.input.is_empty() {
        // Batch/follow recordings name their one stream internally
        // ("cli-batch"/"cli-follow"): alias the live stream to the
        // log's single recorded name so the diff lines up, and pin its
        // seed to --seed exactly as batch/follow do.
        let live = match recorded.as_slice() {
            [only] => only.clone(),
            _ => FOLLOW_STREAM.to_string(),
        };
        builder = builder
            .stream_seed(live.clone(), opts.seed)
            .source(CsvFileSource::new(&opts.input, live, false));
    }
    builder = add_csv_sources(builder, &opts.csvs, false)?;
    if let Some(dir) = &opts.dir {
        builder = builder.source(DirSource::new(dir, false));
    }

    let summary = builder
        .build()
        .map_err(|e| e.to_string())?
        .run()
        .map_err(|e| e.to_string())?;
    let d = tracker.summary();
    eprintln!(
        "replay diff vs {log}: {} compared ({} bit-equal, {} within eps {}, {} diverged); \
         {} live point(s) not in the log, {} past the recorded horizon, \
         {} recorded point(s) not reproduced",
        d.compared,
        d.equal,
        d.within_eps,
        opts.eps,
        d.diverged,
        d.unexpected_live,
        d.trailing_live,
        d.missing_live
    );
    if opts.stats {
        print_stats(&summary.metrics);
    }
    if d.is_clean() {
        Ok(())
    } else {
        Err(format!("replay diverged from {log}"))
    }
}

fn run_replay(opts: &Options) -> Result<(), String> {
    match &opts.diff {
        Some(log) => {
            let log = log.clone();
            run_replay_diff(opts, &log)
        }
        None => run_replay_dump(opts),
    }
}

/// `query <log>`: per-stream summary, or filtered point listing when
/// any filter flag is set.
fn run_query(opts: &Options) -> Result<(), String> {
    let path = std::path::Path::new(&opts.input);
    let store = ScoreStore::scan(path).map_err(|e| format!("{}: {e}", opts.input))?;
    let filtered = opts.q_stream.is_some()
        || opts.q_since.is_some()
        || opts.q_until.is_some()
        || opts.q_alerts_only
        || opts.q_top.is_some();
    if !filtered {
        println!("stream,points,alerts,min_t,max_t,max_score,records");
        for (name, s) in store.streams() {
            println!(
                "{name},{},{},{},{},{},{}",
                s.points, s.alerts, s.min_t, s.max_t, s.max_score, s.records
            );
        }
        return Ok(());
    }
    let rows = store
        .query(&Query {
            stream: opts.q_stream.clone(),
            since: opts.q_since,
            until: opts.q_until,
            alerts_only: opts.q_alerts_only,
            top: opts.q_top,
        })
        .map_err(|e| format!("{}: {e}", opts.input))?;
    let events: Vec<Event> = rows
        .into_iter()
        .map(|r| Event::Point {
            stream: r.stream,
            point: r.point,
        })
        .collect();
    let mut sink = CsvSink::with_schema(std::io::stdout(), CsvSchema::canonical());
    // Header first even when nothing matches (flush_durable primes it,
    // exactly as the pipeline does for live sessions).
    sink.flush_durable()
        .and_then(|()| sink.deliver(&events))
        .and_then(|()| sink.flush_durable())
        .map_err(|e| e.to_string())?;
    Ok(())
}

/// The `--stats` report: one `key value` line per sample, in the
/// registry's deterministic (name, then label) order.
fn print_stats(metrics: &[MetricSample]) {
    eprintln!("stats:");
    for sample in metrics {
        if sample.value.fract() == 0.0 && sample.value.abs() < 1e15 {
            eprintln!("  {} {}", sample.key, sample.value as i64);
        } else {
            eprintln!("  {} {}", sample.key, sample.value);
        }
    }
}

fn run(opts: &Options) -> Result<(), String> {
    match opts.mode {
        Mode::Batch => run_batch(opts),
        Mode::Follow => run_follow(opts),
        Mode::Serve => run_serve(opts),
        Mode::Replay => run_replay(opts),
        Mode::Query => run_query(opts),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
        Ok(opts) => match run(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
    }
}
