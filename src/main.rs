//! `bags-cpd` — command-line change-point detection for bag-structured
//! CSV data.
//!
//! Input format: CSV with a leading integer time column followed by the
//! coordinates of one bag member per row (header optional):
//!
//! ```csv
//! t,x1,x2
//! 0,0.13,1.2
//! 0,0.11,0.9
//! 1,0.09,1.1
//! ```
//!
//! Rows sharing a `t` form one bag. Output: one line per inspection
//! point with the score, confidence interval and alert flag, plus a CSV
//! dump with `--output`.
//!
//! ```sh
//! bags-cpd data.csv --tau 5 --tau-prime 5 --k 8 --alpha 0.05
//! ```

use bags_cpd::{
    Bag, BootstrapConfig, Detector, DetectorConfig, ScoreKind, SignatureMethod, Weighting,
};
use std::collections::BTreeMap;
use std::io::Write;
use std::process::ExitCode;

/// Parsed command-line options.
struct Options {
    input: String,
    tau: usize,
    tau_prime: usize,
    score: ScoreKind,
    weighting: Weighting,
    signature: SignatureMethod,
    alpha: f64,
    replicates: usize,
    seed: u64,
    output: Option<String>,
}

const USAGE: &str = "\
usage: bags-cpd <input.csv> [options]

options:
  --tau <n>              reference window length (default 5)
  --tau-prime <n>        test window length (default 5)
  --score <kl|lr>        change-point score (default kl)
  --weighting <equal|discounted>
                         window weighting (default equal)
  --k <n>                k-means signature size (default 8)
  --histogram <width>    use histogram signatures with this bin width
  --alpha <a>            significance level for the CIs (default 0.05)
  --replicates <T>       bootstrap replicates (default 200)
  --seed <s>             RNG seed (default 42)
  --output <file.csv>    write the score series as CSV
  --help                 show this message
";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        input: String::new(),
        tau: 5,
        tau_prime: 5,
        score: ScoreKind::SymmetrizedKl,
        weighting: Weighting::Equal,
        signature: SignatureMethod::KMeans { k: 8 },
        alpha: 0.05,
        replicates: 200,
        seed: 42,
        output: None,
    };
    let mut it = args.iter();
    let mut positional = Vec::new();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--tau" => opts.tau = take("--tau")?.parse().map_err(|e| format!("--tau: {e}"))?,
            "--tau-prime" => {
                opts.tau_prime = take("--tau-prime")?
                    .parse()
                    .map_err(|e| format!("--tau-prime: {e}"))?;
            }
            "--score" => {
                opts.score = match take("--score")?.as_str() {
                    "kl" => ScoreKind::SymmetrizedKl,
                    "lr" => ScoreKind::LikelihoodRatio,
                    other => return Err(format!("--score: unknown kind '{other}' (kl|lr)")),
                };
            }
            "--weighting" => {
                opts.weighting = match take("--weighting")?.as_str() {
                    "equal" => Weighting::Equal,
                    "discounted" => Weighting::Discounted,
                    other => return Err(format!("--weighting: unknown '{other}'")),
                };
            }
            "--k" => {
                let k = take("--k")?.parse().map_err(|e| format!("--k: {e}"))?;
                opts.signature = SignatureMethod::KMeans { k };
            }
            "--histogram" => {
                let width = take("--histogram")?
                    .parse()
                    .map_err(|e| format!("--histogram: {e}"))?;
                opts.signature = SignatureMethod::Histogram { width };
            }
            "--alpha" => {
                opts.alpha = take("--alpha")?.parse().map_err(|e| format!("--alpha: {e}"))?;
            }
            "--replicates" => {
                opts.replicates = take("--replicates")?
                    .parse()
                    .map_err(|e| format!("--replicates: {e}"))?;
            }
            "--seed" => opts.seed = take("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--output" => opts.output = Some(take("--output")?),
            other if other.starts_with('-') => return Err(format!("unknown option {other}\n\n{USAGE}")),
            other => positional.push(other.to_string()),
        }
    }
    match positional.len() {
        0 => Err(format!("missing input file\n\n{USAGE}")),
        1 => {
            opts.input = positional.remove(0);
            Ok(opts)
        }
        _ => Err(format!("too many positional arguments\n\n{USAGE}")),
    }
}

/// Parse the bag CSV: integer time column + coordinates.
fn read_bags(path: &str) -> Result<Vec<Bag>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut by_time: BTreeMap<i64, Vec<Vec<f64>>> = BTreeMap::new();
    let mut dim: Option<usize> = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        if fields.len() < 2 {
            return Err(format!("{path}:{}: need time plus >= 1 coordinate", lineno + 1));
        }
        let t: i64 = match fields[0].parse() {
            Ok(t) => t,
            // Tolerate one header line.
            Err(_) if lineno == 0 => continue,
            Err(e) => return Err(format!("{path}:{}: bad time '{}': {e}", lineno + 1, fields[0])),
        };
        let coords: Result<Vec<f64>, _> = fields[1..].iter().map(|f| f.parse()).collect();
        let coords = coords.map_err(|e| format!("{path}:{}: bad coordinate: {e}", lineno + 1))?;
        match dim {
            None => dim = Some(coords.len()),
            Some(d) if d != coords.len() => {
                return Err(format!(
                    "{path}:{}: dimension {} != {}",
                    lineno + 1,
                    coords.len(),
                    d
                ));
            }
            _ => {}
        }
        by_time.entry(t).or_default().push(coords);
    }
    if by_time.is_empty() {
        return Err(format!("{path}: no data rows"));
    }
    Ok(by_time.into_values().map(Bag::new).collect())
}

fn run(opts: &Options) -> Result<(), String> {
    let bags = read_bags(&opts.input)?;
    eprintln!(
        "read {} bags (sizes {}..{}), dim {}",
        bags.len(),
        bags.iter().map(Bag::len).min().unwrap_or(0),
        bags.iter().map(Bag::len).max().unwrap_or(0),
        bags[0].dim()
    );
    let detector = Detector::new(DetectorConfig {
        tau: opts.tau,
        tau_prime: opts.tau_prime,
        score: opts.score,
        weighting: opts.weighting,
        signature: opts.signature.clone(),
        bootstrap: BootstrapConfig {
            alpha: opts.alpha,
            replicates: opts.replicates,
            ..Default::default()
        },
        ..DetectorConfig::default()
    })
    .map_err(|e| e.to_string())?;
    let detection = detector.analyze(&bags, opts.seed).map_err(|e| e.to_string())?;

    println!("t,score,ci_lo,ci_up,alert");
    for p in &detection.points {
        println!(
            "{},{:.6},{:.6},{:.6},{}",
            p.t,
            p.score,
            p.ci.lo,
            p.ci.up,
            u8::from(p.alert)
        );
    }
    let alerts = detection.alerts();
    eprintln!("alerts at: {alerts:?}");

    if let Some(out) = &opts.output {
        let mut f = std::fs::File::create(out).map_err(|e| format!("{out}: {e}"))?;
        writeln!(f, "t,score,ci_lo,ci_up,xi,alert").map_err(|e| e.to_string())?;
        for p in &detection.points {
            writeln!(
                f,
                "{},{},{},{},{},{}",
                p.t,
                p.score,
                p.ci.lo,
                p.ci.up,
                p.xi.map_or(String::new(), |x| x.to_string()),
                u8::from(p.alert)
            )
            .map_err(|e| e.to_string())?;
        }
        eprintln!("wrote {out}");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
        Ok(opts) => match run(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
    }
}
