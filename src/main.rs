//! `bags-cpd` — command-line change-point detection for bag-structured
//! CSV data.
//!
//! Input format: CSV with a leading integer time column followed by the
//! coordinates of one bag member per row (header optional):
//!
//! ```csv
//! t,x1,x2
//! 0,0.13,1.2
//! 0,0.11,0.9
//! 1,0.09,1.1
//! ```
//!
//! Rows sharing a `t` form one bag.
//!
//! # Batch mode
//!
//! ```sh
//! bags-cpd data.csv --tau 5 --tau-prime 5 --k 8 --alpha 0.05
//! ```
//!
//! Reads the whole file, analyzes it, and prints one line per
//! inspection point with the score, confidence interval and alert flag,
//! plus a CSV dump with `--output`.
//!
//! # Follow mode
//!
//! ```sh
//! tail -f live.csv | bags-cpd follow - --tau 5 --tau-prime 5
//! bags-cpd follow data.csv --state checkpoint.snap
//! ```
//!
//! `follow` tails a file (or stdin with `-`) *incrementally*: rows with
//! the same time value must be contiguous and times strictly
//! increasing; each time the time column advances, the completed bag is
//! pushed into an online detector (`stream::OnlineDetector`) and any
//! newly completed inspection point is printed immediately — same
//! columns as batch mode, same numbers (the online path is bit-identical
//! to batch analysis), with a latency of τ' bags. The reported `t` is
//! the 0-based bag ordinal, as in batch mode.
//!
//! With `--state <file>`, the detector state is restored from that file
//! if it exists and checkpointed back to it on EOF (a small header plus
//! the binary snapshot format of `stream::snapshot`), so a follow
//! session can be stopped and resumed without losing window context.
//! Because EOF cannot prove the producer finished writing the last bag,
//! a checkpointing session holds the trailing bag back as *pending*
//! rows inside the checkpoint instead of pushing it; the next session
//! completes it when the time column advances. The checkpoint records
//! the consumed byte count and a hash of those bytes, so resume is
//! content-addressed: re-feeding the *same, grown (append-only)* file
//! continues exactly at the recorded offset (nothing is re-parsed),
//! while a rotated or rewritten input is detected by the hash and read
//! from the top — already-pushed times are skipped and rows for the
//! pending time are treated as its continuation. The checkpoint is
//! written atomically (temp file + fsync + rename), so an interrupted
//! write never destroys the previous checkpoint.

use bags_cpd::follow::{decode_checkpoint, encode_checkpoint, FollowCheckpoint};
use bags_cpd::stream::hash::Fnv1a;
use bags_cpd::stream::{EmdScratch, OnlineDetector};
use bags_cpd::{
    Bag, BootstrapConfig, Detector, DetectorConfig, EvalScratch, ScoreKind, SignatureMethod,
    Weighting,
};
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::process::ExitCode;

/// Which front-end drives the detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Read everything, analyze once.
    Batch,
    /// Tail the input, emit points as bags complete.
    Follow,
}

/// Parsed command-line options.
struct Options {
    mode: Mode,
    input: String,
    tau: usize,
    tau_prime: usize,
    score: ScoreKind,
    weighting: Weighting,
    signature: SignatureMethod,
    alpha: f64,
    replicates: usize,
    seed: u64,
    /// Whether --seed was given explicitly (a resumed checkpoint keeps
    /// its original seed; warn only about a *real* conflict).
    seed_explicit: bool,
    output: Option<String>,
    state: Option<String>,
}

const USAGE: &str = "\
usage: bags-cpd <input.csv> [options]
       bags-cpd follow <input.csv|-> [options]

modes:
  <input.csv>            batch: analyze the whole file at once
  follow <input.csv|->   online: tail the file (or stdin), print each
                         inspection point as soon as its test window
                         completes

options:
  --tau <n>              reference window length (default 5)
  --tau-prime <n>        test window length (default 5)
  --score <kl|lr>        change-point score (default kl)
  --weighting <equal|discounted>
                         window weighting (default equal)
  --k <n>                k-means signature size (default 8)
  --histogram <width>    use histogram signatures with this bin width
  --alpha <a>            significance level for the CIs (default 0.05)
  --replicates <T>       bootstrap replicates (default 200)
  --seed <s>             RNG seed (default 42)
  --output <file.csv>    write the score series as CSV (batch mode)
  --state <file>         follow mode: restore checkpoint if present,
                         save checkpoint on EOF
  --help                 show this message
";

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        mode: Mode::Batch,
        input: String::new(),
        tau: 5,
        tau_prime: 5,
        score: ScoreKind::SymmetrizedKl,
        weighting: Weighting::Equal,
        signature: SignatureMethod::KMeans { k: 8 },
        alpha: 0.05,
        replicates: 200,
        seed: 42,
        seed_explicit: false,
        output: None,
        state: None,
    };
    let mut it = args.iter();
    let mut positional = Vec::new();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--help" | "-h" => return Err(USAGE.to_string()),
            "--tau" => opts.tau = take("--tau")?.parse().map_err(|e| format!("--tau: {e}"))?,
            "--tau-prime" => {
                opts.tau_prime = take("--tau-prime")?
                    .parse()
                    .map_err(|e| format!("--tau-prime: {e}"))?;
            }
            "--score" => {
                opts.score = match take("--score")?.as_str() {
                    "kl" => ScoreKind::SymmetrizedKl,
                    "lr" => ScoreKind::LikelihoodRatio,
                    other => return Err(format!("--score: unknown kind '{other}' (kl|lr)")),
                };
            }
            "--weighting" => {
                opts.weighting = match take("--weighting")?.as_str() {
                    "equal" => Weighting::Equal,
                    "discounted" => Weighting::Discounted,
                    other => return Err(format!("--weighting: unknown '{other}'")),
                };
            }
            "--k" => {
                let k = take("--k")?.parse().map_err(|e| format!("--k: {e}"))?;
                opts.signature = SignatureMethod::KMeans { k };
            }
            "--histogram" => {
                let width = take("--histogram")?
                    .parse()
                    .map_err(|e| format!("--histogram: {e}"))?;
                opts.signature = SignatureMethod::Histogram { width };
            }
            "--alpha" => {
                opts.alpha = take("--alpha")?
                    .parse()
                    .map_err(|e| format!("--alpha: {e}"))?;
            }
            "--replicates" => {
                opts.replicates = take("--replicates")?
                    .parse()
                    .map_err(|e| format!("--replicates: {e}"))?;
            }
            "--seed" => {
                opts.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
                opts.seed_explicit = true;
            }
            "--output" => opts.output = Some(take("--output")?),
            "--state" => opts.state = Some(take("--state")?),
            other if other.starts_with('-') && other != "-" => {
                return Err(format!("unknown option {other}\n\n{USAGE}"))
            }
            other => positional.push(other.to_string()),
        }
    }
    if positional.first().map(String::as_str) == Some("follow") {
        opts.mode = Mode::Follow;
        positional.remove(0);
        if positional.is_empty() {
            positional.push("-".to_string()); // follow defaults to stdin
        }
    }
    match positional.len() {
        0 => Err(format!("missing input file\n\n{USAGE}")),
        1 => {
            opts.input = positional.remove(0);
            if opts.mode == Mode::Batch && opts.state.is_some() {
                return Err("--state is only meaningful in follow mode".to_string());
            }
            if opts.mode == Mode::Follow && opts.output.is_some() {
                return Err("--output is only meaningful in batch mode".to_string());
            }
            Ok(opts)
        }
        _ => Err(format!("too many positional arguments\n\n{USAGE}")),
    }
}

fn build_detector(opts: &Options) -> Result<Detector, String> {
    Detector::new(DetectorConfig {
        tau: opts.tau,
        tau_prime: opts.tau_prime,
        score: opts.score,
        weighting: opts.weighting,
        signature: opts.signature.clone(),
        bootstrap: BootstrapConfig {
            alpha: opts.alpha,
            replicates: opts.replicates,
            ..Default::default()
        },
        ..DetectorConfig::default()
    })
    .map_err(|e| e.to_string())
}

/// Parse one CSV row into `(t, coords)`. With `allow_header`, an
/// unparseable time column is treated as a (skipped) header line —
/// only ever correct for the true first line of an input, not for the
/// first line read after a mid-file resume.
fn parse_row(
    line: &str,
    lineno: usize,
    origin: &str,
    allow_header: bool,
) -> Result<Option<(i64, Vec<f64>)>, String> {
    let fields: Vec<&str> = line.split(',').map(str::trim).collect();
    if fields.len() < 2 {
        return Err(format!(
            "{origin}:{}: need time plus >= 1 coordinate",
            lineno + 1
        ));
    }
    let t: i64 = match fields[0].parse() {
        Ok(t) => t,
        Err(_) if allow_header => return Ok(None),
        Err(e) => {
            return Err(format!(
                "{origin}:{}: bad time '{}': {e}",
                lineno + 1,
                fields[0]
            ))
        }
    };
    let coords: Result<Vec<f64>, _> = fields[1..].iter().map(|f| f.parse()).collect();
    let coords = coords.map_err(|e| format!("{origin}:{}: bad coordinate: {e}", lineno + 1))?;
    Ok(Some((t, coords)))
}

/// Parse the bag CSV: integer time column + coordinates.
fn read_bags(path: &str) -> Result<Vec<Bag>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let mut by_time: BTreeMap<i64, Vec<Vec<f64>>> = BTreeMap::new();
    let mut dim: Option<usize> = None;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Some((t, coords)) = parse_row(line, lineno, path, lineno == 0)? else {
            continue;
        };
        match dim {
            None => dim = Some(coords.len()),
            Some(d) if d != coords.len() => {
                return Err(format!(
                    "{path}:{}: dimension {} != {}",
                    lineno + 1,
                    coords.len(),
                    d
                ));
            }
            _ => {}
        }
        by_time.entry(t).or_default().push(coords);
    }
    if by_time.is_empty() {
        return Err(format!("{path}: no data rows"));
    }
    Ok(by_time.into_values().map(Bag::new).collect())
}

fn run_batch(opts: &Options) -> Result<(), String> {
    let bags = read_bags(&opts.input)?;
    eprintln!(
        "read {} bags (sizes {}..{}), dim {}",
        bags.len(),
        bags.iter().map(Bag::len).min().unwrap_or(0),
        bags.iter().map(Bag::len).max().unwrap_or(0),
        bags[0].dim()
    );
    let detector = build_detector(opts)?;
    let detection = detector
        .analyze(&bags, opts.seed)
        .map_err(|e| e.to_string())?;

    println!("t,score,ci_lo,ci_up,alert");
    for p in &detection.points {
        println!(
            "{},{:.6},{:.6},{:.6},{}",
            p.t,
            p.score,
            p.ci.lo,
            p.ci.up,
            u8::from(p.alert)
        );
    }
    let alerts = detection.alerts();
    eprintln!("alerts at: {alerts:?}");

    if let Some(out) = &opts.output {
        let mut f = std::fs::File::create(out).map_err(|e| format!("{out}: {e}"))?;
        writeln!(f, "t,score,ci_lo,ci_up,xi,alert").map_err(|e| e.to_string())?;
        for p in &detection.points {
            writeln!(
                f,
                "{},{},{},{},{},{}",
                p.t,
                p.score,
                p.ci.lo,
                p.ci.up,
                p.xi.map_or(String::new(), |x| x.to_string()),
                u8::from(p.alert)
            )
            .map_err(|e| e.to_string())?;
        }
        eprintln!("wrote {out}");
    }
    Ok(())
}

/// What a `--state` checkpoint restores: the detector mid-stream, the
/// time of the last *completed* (pushed) bag, and the rows of the bag
/// that was still accumulating at EOF.
///
/// The pending bag is held back rather than pushed because EOF cannot
/// distinguish "this bag is complete" from "the producer was cut off
/// mid-bag" — pushing a partial bag and then skipping its remaining
/// rows on resume would silently corrupt the stream. Whether a resume
/// input re-feeds already-consumed data is decided by content
/// addressing (`consumed` bytes + their hash), never by comparing row
/// values — on the same-file path, repeated data values can never be
/// misclassified. A rotated input is assumed to carry only post-cut
/// data (the meaning of rotation); if it demonstrably re-presents
/// history (rows of already-pushed times appear), the pending bag is
/// rebuilt from the input alone instead of appended to.
struct FollowResume {
    online: OnlineDetector,
    /// The session's master seed: the checkpoint's original seed on
    /// resume (a changed `--seed` cannot rewrite history mid-stream),
    /// `--seed` on a fresh start.
    master_seed: u64,
    /// On rotated input, skip rows with `t <=` this.
    completed_time: Option<i64>,
    /// `(time, rows)` of the bag accumulating at checkpoint time.
    pending: Option<(i64, Vec<Vec<f64>>)>,
    /// Input bytes consumed so far (0 for stdin sessions).
    consumed: u64,
    /// FNV-1a hash of those consumed bytes.
    prefix_hash: u64,
}

fn load_or_new_online(opts: &Options, detector: &Detector) -> Result<FollowResume, String> {
    if let Some(path) = &opts.state {
        if std::path::Path::new(path).exists() {
            let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
            let FollowCheckpoint {
                master_seed,
                completed_time,
                pending,
                consumed,
                prefix_hash,
                state,
            } = decode_checkpoint(&bytes, detector.config()).map_err(|e| format!("{path}: {e}"))?;
            if opts.seed_explicit && master_seed != opts.seed {
                eprintln!(
                    "warning: --seed {} ignored; the checkpoint continues under seed \
                     {master_seed} (a stream's seed is fixed at its first session)",
                    opts.seed
                );
            }
            let online = OnlineDetector::from_state(detector.clone(), state)
                .map_err(|e| format!("{path}: {e}"))?;
            eprintln!(
                "resumed from {path}: {} bags seen, {} points emitted, {consumed} input bytes \
                 consumed{}",
                online.bags_seen(),
                online.points_emitted(),
                pending.as_ref().map_or(String::new(), |(t, rows)| format!(
                    ", {} buffered rows for t = {t}",
                    rows.len()
                ))
            );
            return Ok(FollowResume {
                online,
                master_seed,
                completed_time,
                pending,
                consumed,
                prefix_hash,
            });
        }
    }
    Ok(FollowResume {
        online: OnlineDetector::new(detector.clone(), opts.seed),
        master_seed: opts.seed,
        completed_time: None,
        pending: None,
        consumed: 0,
        prefix_hash: 0,
    })
}

/// Atomically persist the checkpoint: write a sibling temp file, then
/// rename over the target, so an interrupted write never truncates the
/// previous checkpoint.
fn save_state(
    path: &str,
    detector: &Detector,
    checkpoint: &FollowCheckpoint,
) -> Result<usize, String> {
    let bytes = encode_checkpoint(detector.config(), checkpoint);
    let tmp = format!("{path}.tmp");
    {
        let mut f = std::fs::File::create(&tmp).map_err(|e| format!("{tmp}: {e}"))?;
        f.write_all(&bytes).map_err(|e| format!("{tmp}: {e}"))?;
        // Durability, not just process-crash atomicity: the data must be
        // on disk before the rename commits, or a power loss can leave a
        // zero-length checkpoint behind the new name.
        f.sync_all().map_err(|e| format!("{tmp}: {e}"))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| format!("{path}: {e}"))?;
    // Best-effort directory fsync so the rename itself is durable.
    if let Some(dir) = std::path::Path::new(path).parent() {
        let dir = if dir.as_os_str().is_empty() {
            std::path::Path::new(".")
        } else {
            dir
        };
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(bytes.len())
}

fn run_follow(opts: &Options) -> Result<(), String> {
    let detector = build_detector(opts)?;
    let FollowResume {
        mut online,
        master_seed,
        completed_time,
        pending,
        consumed: resume_consumed,
        prefix_hash: resume_hash,
    } = load_or_new_online(opts, &detector)?;

    let is_file = opts.input != "-";
    let stdin = std::io::stdin();
    let mut reader: Box<dyn BufRead> = if is_file {
        let f = std::fs::File::open(&opts.input).map_err(|e| format!("{}: {e}", opts.input))?;
        Box::new(std::io::BufReader::new(f))
    } else {
        Box::new(stdin.lock())
    };
    let origin: &str = if is_file { &opts.input } else { "<stdin>" };

    // Content-addressed resume: if the input begins with exactly the
    // bytes consumed last session, continue right after them (nothing
    // is re-parsed, and repeated data values cannot confuse anything).
    // Otherwise the input was rotated or rewritten: read it from the
    // top, skipping already-pushed times.
    let mut hasher = Fnv1a::new();
    let mut same_file = false;
    let mut prefix_lines = 0usize;
    if is_file && resume_consumed > 0 {
        use std::io::Read as _;
        let mut left = resume_consumed;
        let mut buf = [0u8; 8192];
        while left > 0 {
            let want = left.min(buf.len() as u64) as usize;
            let n = reader
                .read(&mut buf[..want])
                .map_err(|e| format!("{origin}: {e}"))?;
            if n == 0 {
                break;
            }
            hasher.update(&buf[..n]);
            prefix_lines += buf[..n].iter().filter(|&&b| b == b'\n').count();
            left -= n as u64;
        }
        same_file = left == 0 && hasher.finish() == resume_hash;
        if !same_file {
            // Rotated/rewritten: restart from byte 0 with a fresh hash.
            let f = std::fs::File::open(&opts.input).map_err(|e| format!("{}: {e}", opts.input))?;
            reader = Box::new(std::io::BufReader::new(f));
            hasher = Fnv1a::new();
            eprintln!(
                "note: {origin} is not the checkpointed input (rotated or rewritten?); reading \
                 from the top — already-pushed times are skipped and rows for the pending bag \
                 are treated as its continuation"
            );
        }
    }
    let mut consumed_total: u64 = if same_file { resume_consumed } else { 0 };

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    writeln!(out, "t,score,ci_lo,ci_up,alert").map_err(|e| e.to_string())?;
    out.flush().map_err(|e| e.to_string())?;

    // Session-lived scratches: every push of the tail loop reuses one
    // set of solver/bootstrap buffers instead of re-growing them.
    let mut eval_scratch = EvalScratch::new();
    let mut emd_scratch = EmdScratch::new();
    let mut emit = |online: &mut OnlineDetector, rows: Vec<Vec<f64>>| -> Result<(), String> {
        let point = online
            .push_with(Bag::new(rows), &mut eval_scratch, &mut emd_scratch)
            .map_err(|e| e.to_string())?;
        if let Some(p) = point {
            writeln!(
                out,
                "{},{:.6},{:.6},{:.6},{}",
                p.t,
                p.score,
                p.ci.lo,
                p.ci.up,
                u8::from(p.alert)
            )
            .map_err(|e| e.to_string())?;
            out.flush().map_err(|e| e.to_string())?;
            if p.alert {
                eprintln!("ALERT at inspection point {}", p.t);
            }
        }
        Ok(())
    };

    let (mut cur_time, mut cur_rows) = match pending {
        Some((t, rows)) => (Some(t), rows),
        None => (None, Vec::new()),
    };
    let mut pending_buffered = cur_rows.len();
    let mut saw_old_rows = false;
    let mut dim: Option<usize> = cur_rows.first().map(Vec::len);
    let mut last_completed = completed_time;
    // Line numbers in diagnostics are absolute file lines: a same-file
    // resume starts counting after the consumed prefix.
    let mut lineno = if same_file { prefix_lines } else { 0 };
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("{origin}: {e}"))?;
        if n == 0 {
            break;
        }
        // A checkpointing file session holds back a final line with no
        // newline — the producer may still be writing it; it is neither
        // parsed nor counted as consumed, so the next session re-reads
        // it. (Stdin close and one-shot runs mean the data is final.)
        if !line.ends_with('\n') && is_file && opts.state.is_some() {
            break;
        }
        hasher.update(line.as_bytes());
        consumed_total += n as u64;
        let row_lineno = lineno;
        lineno += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        // A same-file resume starts mid-file: its first line is data,
        // and a corrupt one must error, not pass as a "header".
        let Some((t, coords)) =
            parse_row(trimmed, row_lineno, origin, row_lineno == 0 && !same_file)?
        else {
            continue;
        };
        // Rotated input may re-present history: drop rows of bags that
        // were already pushed. (In same-file mode the offset skipped
        // them.)
        if !same_file && completed_time.is_some_and(|last| t <= last) {
            saw_old_rows = true;
            continue;
        }
        // A true rotation carries only post-cut data, so pending-time
        // rows are a continuation of the buffered bag. But an input
        // that re-presented already-pushed times re-presents the
        // pending rows too — appending would double-count them, so
        // rebuild the pending bag from this input alone.
        if !same_file && saw_old_rows && pending_buffered > 0 && Some(t) == cur_time {
            eprintln!(
                "note: {origin} re-presents already-processed times; rebuilding the pending bag \
                 for t = {t} from this input instead of appending to the buffered rows"
            );
            cur_rows.clear();
            pending_buffered = 0;
        }
        match dim {
            None => dim = Some(coords.len()),
            Some(d) if d != coords.len() => {
                return Err(format!(
                    "{origin}:{}: dimension {} != {d}",
                    row_lineno + 1,
                    coords.len()
                ));
            }
            _ => {}
        }
        match cur_time {
            Some(prev) if t == prev => cur_rows.push(coords),
            Some(prev) if t < prev => {
                return Err(format!(
                    "{origin}:{}: time went backwards ({t} after {prev}); follow mode needs \
                     nondecreasing times with equal times contiguous",
                    row_lineno + 1
                ));
            }
            Some(prev) => {
                emit(&mut online, std::mem::take(&mut cur_rows))?;
                last_completed = Some(prev);
                cur_time = Some(t);
                cur_rows.push(coords);
            }
            None => {
                cur_time = Some(t);
                cur_rows.push(coords);
            }
        }
    }
    // EOF. With --state the trailing bag is held back as pending (EOF
    // cannot prove the producer finished writing it — a partial bag
    // pushed now could never be amended); the next session completes
    // it. Without --state this is a one-shot run and the trailing bag
    // is final by definition.
    let pending_out: Option<(i64, Vec<Vec<f64>>)> = if opts.state.is_some() {
        cur_time.map(|t| (t, std::mem::take(&mut cur_rows)))
    } else {
        if !cur_rows.is_empty() {
            emit(&mut online, cur_rows)?;
        }
        None
    };
    eprintln!(
        "follow done: {} bags, {} inspection points{}",
        online.bags_seen(),
        online.points_emitted(),
        pending_out.as_ref().map_or(String::new(), |(t, rows)| {
            format!(
                " ({} rows for t = {t} held for the next session)",
                rows.len()
            )
        })
    );

    if let Some(path) = &opts.state {
        let (consumed, prefix_hash) = if is_file {
            (consumed_total, hasher.finish())
        } else {
            (0, 0)
        };
        let checkpoint = FollowCheckpoint {
            master_seed,
            completed_time: last_completed,
            pending: pending_out,
            consumed,
            prefix_hash,
            state: online.state(),
        };
        let written = save_state(path, &detector, &checkpoint)?;
        eprintln!("checkpointed {written} bytes to {path}");
    }
    Ok(())
}

fn run(opts: &Options) -> Result<(), String> {
    match opts.mode {
        Mode::Batch => run_batch(opts),
        Mode::Follow => run_follow(opts),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
        Ok(opts) => match run(&opts) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
    }
}
