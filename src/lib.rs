//! # bags-cpd
//!
//! A complete Rust reproduction of Koshijima, Hino & Murata,
//! *Change-Point Detection in a Sequence of Bags-of-Data* (IEEE TKDE
//! 27(10):2632–2644, 2015).
//!
//! At each time step the observation is a **bag** — a collection of
//! vectors whose size varies over time. The method estimates the
//! distribution behind each bag as an EMD **signature**, embeds the
//! signatures in the Earth-Mover's-Distance metric space, scores the
//! fluctuation of the reference window against the test window with
//! distance-based information estimators, and raises alerts adaptively
//! by comparing Bayesian-bootstrap confidence intervals of consecutive
//! scores.
//!
//! This façade crate re-exports the whole workspace:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | `bagcpd` | bags, signatures, scores, bootstrap, detector |
//! | [`stream`] | online engine: incremental detector, sharded multi-stream workers, snapshot/restore |
//! | [`emd`] | signatures, ground distances, transportation simplex, 1-D solver |
//! | [`infoest`] | weighted information estimators |
//! | [`quantize`] | k-means, k-medoids, LVQ, histograms |
//! | [`stats`] | distributions, quantiles, descriptive statistics |
//! | [`linalg`] | matrices, Cholesky, Jacobi eigen, classical MDS |
//! | [`baselines`] | ChangeFinder (SDAR), kernel change detection |
//! | [`bipartite`] | bipartite graphs, the 7 features of §5.3, generators |
//! | [`datasets`] | every experiment workload (Figs. 1, 6, 7, 10, 11) |
//!
//! ## Quickstart
//!
//! ```
//! use bags_cpd::{Bag, Detector, DetectorConfig};
//!
//! // Bags of scalars whose distribution changes shape at t = 12: the
//! // mean stays 0 but mass splits into two modes.
//! let bags: Vec<Bag> = (0..24)
//!     .map(|t| {
//!         Bag::from_scalars((0..80).map(move |i| {
//!             let u = (i as f64 + 0.5) / 80.0 - 0.5; // spread in [-.5, .5]
//!             if t < 12 { u } else { 6.0 * u.signum() + u }
//!         }))
//!     })
//!     .collect();
//!
//! let detector = Detector::new(DetectorConfig {
//!     tau: 5,
//!     tau_prime: 5,
//!     ..DetectorConfig::default()
//! }).unwrap();
//! let result = detector.analyze(&bags, 7).unwrap();
//! let peak = result.peak().unwrap();
//! assert!((peak.t as i64 - 12).abs() <= 1);
//! ```

pub mod follow;

pub use bagcpd::*;

pub use baselines;
pub use bipartite;
pub use datasets;
pub use emd;
pub use infoest;
pub use linalg;
pub use quantize;
pub use stats;
pub use stream;

/// Re-export of the core crate under its own name for explicit paths.
pub use bagcpd as detector;
