//! The CLI `follow --state` checkpoint view, now a thin wrapper over
//! the shared multi-source format in [`stream::ingest::checkpoint`].
//!
//! A checkpoint file is a cursor table (one resume cursor per stream)
//! in front of a regular engine snapshot. `follow` is simply the
//! single-source special case: one cursor named [`FOLLOW_STREAM`] plus
//! a one-stream engine snapshot. [`FollowCheckpoint`] keeps the
//! original flat view of that case — and [`decode_checkpoint`] still
//! reads both the current `BCPDFLW2` layout and the legacy single-
//! source `BCPDFLW1` files written by earlier builds (migrated on
//! load; the next checkpoint is written in the current format).
//!
//! The error taxonomy is unchanged: short files are
//! [`StateError::Truncated`] (never "not a follow checkpoint"), and
//! pending rows without a pending time are refused rather than
//! silently dropped.

use bagcpd::DetectorConfig;
use stream::ingest::checkpoint as ck;
use stream::ingest::StreamCursor;
use stream::snapshot::{decode_engine, encode_engine};
use stream::OnlineState;

pub use stream::ingest::checkpoint::{StateError, FOLLOW_STREAM, NO_TIME, STATE_MAGIC};

/// Everything a single-source `--state` checkpoint restores: the follow
/// stream's detector state, the time of the last completed (pushed)
/// bag, the rows of the bag still accumulating at EOF, and the content
/// address (consumed byte count + hash) of the input prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct FollowCheckpoint {
    /// The session's master seed (fixed at the stream's first session).
    pub master_seed: u64,
    /// Time of the last completed bag, if any.
    pub completed_time: Option<i64>,
    /// `(time, rows)` of the bag accumulating at checkpoint time; the
    /// row list is never empty when present.
    pub pending: Option<(i64, Vec<Vec<f64>>)>,
    /// Input bytes consumed so far (0 for stdin sessions).
    pub consumed: u64,
    /// FNV-1a hash of those consumed bytes.
    pub prefix_hash: u64,
    /// The follow stream's resumable detector state.
    pub state: OnlineState,
}

/// The cursor + engine-snapshot pair behind both framings of a
/// single-source checkpoint.
fn cursor_and_snapshot(
    cfg: &DetectorConfig,
    checkpoint: &FollowCheckpoint,
) -> (StreamCursor, Vec<u8>) {
    let cursor = StreamCursor {
        completed_time: checkpoint.completed_time,
        pending: checkpoint
            .pending
            .clone()
            .filter(|(_, rows)| !rows.is_empty()),
        consumed: checkpoint.consumed,
        prefix_hash: checkpoint.prefix_hash,
        quarantined: false,
    };
    let snapshot = encode_engine(
        cfg,
        checkpoint.master_seed,
        &[FOLLOW_STREAM],
        vec![(0, checkpoint.state.clone())],
    );
    (cursor, snapshot)
}

/// Serialize a single-source checkpoint (cursor table of one + embedded
/// engine snapshot, current format).
pub fn encode_checkpoint(cfg: &DetectorConfig, checkpoint: &FollowCheckpoint) -> Vec<u8> {
    let (cursor, snapshot) = cursor_and_snapshot(cfg, checkpoint);
    ck::encode_checkpoint(&[(FOLLOW_STREAM, cursor)], &snapshot)
}

/// Parse and validate a checkpoint against the session's detector
/// configuration, accepting both the current and the legacy layout.
///
/// # Errors
/// [`StateError::Truncated`] for a short file, [`StateError::BadMagic`]
/// for a foreign file, [`StateError::Corrupt`] for inconsistent content
/// (including pending rows without a pending time, or a checkpoint with
/// no [`FOLLOW_STREAM`] cursor), or [`StateError::Snapshot`] for an
/// invalid embedded engine snapshot.
pub fn decode_checkpoint(
    bytes: &[u8],
    cfg: &DetectorConfig,
) -> Result<FollowCheckpoint, StateError> {
    let (cursors, snapshot) = ck::decode_checkpoint(bytes)?;
    let cursor = cursors
        .into_iter()
        .find_map(|(name, c)| (name == FOLLOW_STREAM).then_some(c))
        .ok_or_else(|| {
            StateError::Corrupt(format!("no '{FOLLOW_STREAM}' cursor in the checkpoint"))
        })?;
    let snap = decode_engine(snapshot, cfg)?;
    let id = snap
        .names
        .iter()
        .position(|n| n == FOLLOW_STREAM)
        .ok_or_else(|| {
            StateError::Corrupt(format!("no '{FOLLOW_STREAM}' stream in the checkpoint"))
        })?;
    let state = snap
        .streams
        .into_iter()
        .find(|(i, _)| *i as usize == id)
        .map(|(_, s)| s)
        .ok_or_else(|| {
            StateError::Corrupt(format!("'{FOLLOW_STREAM}' has no state in the checkpoint"))
        })?;
    Ok(FollowCheckpoint {
        master_seed: snap.master_seed,
        completed_time: cursor.completed_time,
        pending: cursor.pending,
        consumed: cursor.consumed,
        prefix_hash: cursor.prefix_hash,
        state,
    })
}

/// Serialize a checkpoint in the legacy `BCPDFLW1` single-source
/// framing; test support only (nothing in production writes it).
#[doc(hidden)]
pub fn encode_checkpoint_v1(cfg: &DetectorConfig, checkpoint: &FollowCheckpoint) -> Vec<u8> {
    let (cursor, snapshot) = cursor_and_snapshot(cfg, checkpoint);
    ck::encode_checkpoint_v1(&cursor, &snapshot)
}
