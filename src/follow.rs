//! The CLI `follow --state` checkpoint format, built on the shared
//! [`stream::snapshot`] primitives.
//!
//! A checkpoint is a small header in front of a regular engine snapshot:
//!
//! ```text
//! magic           8 bytes  b"BCPDFLW1"
//! completed_time  i64      time of the last pushed bag (NO_TIME if none)
//! pending_time    i64      time of the held-back bag (NO_TIME if none)
//! consumed        u64      input bytes consumed (0 for stdin sessions)
//! prefix_hash     u64      FNV-1a of those consumed bytes
//! dim             u32      pending-row dimension
//! count           u32      pending-row count, then count * dim f64s
//! snapshot        …        stream::snapshot engine checkpoint
//! ```
//!
//! Historically this header was hand-parsed in `main.rs` with its own
//! (divergent) error handling; it now reads through
//! [`stream::snapshot::Reader`] and writes through
//! [`stream::snapshot::Writer`], inheriting the snapshot module's
//! truncation-safe, allocation-guarded discipline. Two classes of bad
//! input that used to be misreported are now explicit:
//!
//! - a file shorter than the header is [`StateError::Truncated`], not
//!   "not a follow checkpoint" — operators should not mistake a torn
//!   write for the wrong file;
//! - pending rows without a pending time (`count > 0` with
//!   `pending_time == NO_TIME`) are [`StateError::Corrupt`] — the old
//!   loader silently dropped the rows, losing data on resume.

use bagcpd::DetectorConfig;
use stream::snapshot::{decode_engine, encode_engine, Reader, SnapshotError, Writer};
use stream::OnlineState;

/// Magic bytes of the CLI checkpoint wrapper (header + engine snapshot).
pub const STATE_MAGIC: &[u8; 8] = b"BCPDFLW1";

/// Sentinel for "no time" in the checkpoint header.
pub const NO_TIME: i64 = i64::MIN;

/// Name under which the follow stream is stored in the embedded engine
/// snapshot.
pub const FOLLOW_STREAM: &str = "cli-follow";

/// Checkpoint parse/validation failures, with truncation, wrong file
/// type, and structural corruption kept distinct.
#[derive(Debug, Clone, PartialEq)]
pub enum StateError {
    /// The file ended before the checkpoint structure did — a short or
    /// torn write, *not* a foreign file.
    Truncated,
    /// The magic bytes are wrong: this is not a follow checkpoint.
    BadMagic,
    /// Structurally invalid header content (reason attached).
    Corrupt(String),
    /// The embedded engine snapshot failed to parse or validate.
    Snapshot(SnapshotError),
}

impl std::fmt::Display for StateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StateError::Truncated => {
                write!(f, "truncated checkpoint (file ends before its structure)")
            }
            StateError::BadMagic => write!(f, "not a bags-cpd follow checkpoint"),
            StateError::Corrupt(why) => write!(f, "corrupt checkpoint: {why}"),
            StateError::Snapshot(e) => write!(f, "checkpoint snapshot: {e}"),
        }
    }
}

impl std::error::Error for StateError {}

impl From<SnapshotError> for StateError {
    fn from(e: SnapshotError) -> Self {
        match e {
            // A truncated embedded snapshot is still a truncated file.
            SnapshotError::Truncated => StateError::Truncated,
            other => StateError::Snapshot(other),
        }
    }
}

/// Everything a `--state` checkpoint restores: the follow stream's
/// detector state, the time of the last completed (pushed) bag, the
/// rows of the bag still accumulating at EOF, and the content address
/// (consumed byte count + hash) of the input prefix.
#[derive(Debug, Clone, PartialEq)]
pub struct FollowCheckpoint {
    /// The session's master seed (fixed at the stream's first session).
    pub master_seed: u64,
    /// Time of the last completed bag, if any.
    pub completed_time: Option<i64>,
    /// `(time, rows)` of the bag accumulating at checkpoint time; the
    /// row list is never empty when present.
    pub pending: Option<(i64, Vec<Vec<f64>>)>,
    /// Input bytes consumed so far (0 for stdin sessions).
    pub consumed: u64,
    /// FNV-1a hash of those consumed bytes.
    pub prefix_hash: u64,
    /// The follow stream's resumable detector state.
    pub state: OnlineState,
}

/// Serialize a checkpoint (header + embedded engine snapshot).
pub fn encode_checkpoint(cfg: &DetectorConfig, ck: &FollowCheckpoint) -> Vec<u8> {
    let mut w = Writer::with_capacity(256);
    w.bytes(STATE_MAGIC);
    w.i64(ck.completed_time.unwrap_or(NO_TIME));
    match &ck.pending {
        Some((t, rows)) if !rows.is_empty() => {
            w.i64(*t);
            w.u64(ck.consumed);
            w.u64(ck.prefix_hash);
            w.u32(rows[0].len() as u32);
            w.u32(rows.len() as u32);
            for row in rows {
                for &x in row {
                    w.f64(x);
                }
            }
        }
        _ => {
            w.i64(NO_TIME);
            w.u64(ck.consumed);
            w.u64(ck.prefix_hash);
            w.u32(0);
            w.u32(0);
        }
    }
    w.bytes(&encode_engine(
        cfg,
        ck.master_seed,
        &[FOLLOW_STREAM],
        vec![(0, ck.state.clone())],
    ));
    w.into_bytes()
}

/// Parse and validate a checkpoint against the session's detector
/// configuration.
///
/// # Errors
/// [`StateError::Truncated`] for a short file, [`StateError::BadMagic`]
/// for a foreign file, [`StateError::Corrupt`] for inconsistent header
/// content (including pending rows without a pending time, which the
/// old loader silently discarded), or [`StateError::Snapshot`] for an
/// invalid embedded engine snapshot.
pub fn decode_checkpoint(
    bytes: &[u8],
    cfg: &DetectorConfig,
) -> Result<FollowCheckpoint, StateError> {
    let mut r = Reader::new(bytes);
    if r.take(8).map_err(|_| StateError::Truncated)? != STATE_MAGIC {
        return Err(StateError::BadMagic);
    }
    let completed_time = r.i64()?;
    let completed_time = (completed_time != NO_TIME).then_some(completed_time);
    let pending_time = r.i64()?;
    let consumed = r.u64()?;
    let prefix_hash = r.u64()?;
    let dim = r.u32()? as usize;
    let count = r.u32()? as usize;
    if pending_time == NO_TIME && count > 0 {
        return Err(StateError::Corrupt(format!(
            "{count} pending rows but no pending time — refusing to drop buffered data"
        )));
    }
    if pending_time != NO_TIME && count == 0 {
        return Err(StateError::Corrupt("a pending time with no rows".into()));
    }
    if count > 0 && dim == 0 {
        return Err(StateError::Corrupt("pending rows of dimension 0".into()));
    }
    let mut rows = Vec::with_capacity(r.bounded_capacity(count, dim.saturating_mul(8)));
    for _ in 0..count {
        let mut row = Vec::with_capacity(r.bounded_capacity(dim, 8));
        for _ in 0..dim {
            row.push(r.f64()?);
        }
        rows.push(row);
    }
    let pending = (pending_time != NO_TIME).then_some((pending_time, rows));
    let snap = decode_engine(r.rest(), cfg)?;
    let id = snap
        .names
        .iter()
        .position(|n| n == FOLLOW_STREAM)
        .ok_or_else(|| {
            StateError::Corrupt(format!("no '{FOLLOW_STREAM}' stream in the checkpoint"))
        })?;
    let state = snap
        .streams
        .into_iter()
        .find(|(i, _)| *i as usize == id)
        .map(|(_, s)| s)
        .ok_or_else(|| {
            StateError::Corrupt(format!("'{FOLLOW_STREAM}' has no state in the checkpoint"))
        })?;
    Ok(FollowCheckpoint {
        master_seed: snap.master_seed,
        completed_time,
        pending,
        consumed,
        prefix_hash,
        state,
    })
}
